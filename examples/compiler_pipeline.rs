//! The full compiler pipeline of the paper's Figure 2: source text →
//! optimized tuples → list schedule → optimal pipeline schedule →
//! register allocation → target code, with a cycle-by-cycle trace.
//!
//! ```sh
//! cargo run --example compiler_pipeline
//! ```

use std::collections::HashMap;

use pipesched::core::Scheduler;
use pipesched::frontend::{compile, compile_unoptimized, interpret};
use pipesched::ir::DepDag;
use pipesched::machine::presets;
use pipesched::regalloc::{allocate, emit, max_pressure};
use pipesched::sim::{TimingModel, Trace};

const SOURCE: &str = "\
// dot-product step with a redundant subexpression
scale = 3;
t = a * x + b * y;
u = a * x - b * y;   // a*x and b*y are CSE'd with the line above
r = (t + u) * scale;
";

fn main() {
    println!("source:\n{SOURCE}");

    // Front end: parse, lower, optimize (§3.1).
    let unopt = compile_unoptimized("example", SOURCE).expect("parses");
    let block = compile("example", SOURCE).expect("parses");
    println!(
        "lowered to {} tuples; optimizer reduced that to {}:",
        unopt.len(),
        block.len()
    );
    println!("{block}");

    // Pipeline scheduling (§3.2–3.3).
    let machine = presets::paper_simulation();
    let scheduler = Scheduler::new(machine.clone());
    let scheduled = scheduler.schedule(&block);
    println!(
        "schedule: {} -> {} NOPs ({} Ω calls, optimal: {})",
        scheduled.initial_nops, scheduled.nops, scheduled.stats.omega_calls, scheduled.optimal
    );

    // Register allocation (§3.4) — after scheduling, never before.
    let pressure = max_pressure(&block, &scheduled.order);
    let regs = allocate(&block, &scheduled.order, pressure).expect("enough registers");
    println!("register pressure: {pressure} registers suffice");

    // Code generation with NOP padding.
    let program = emit(&block, &scheduled.order, &scheduled.etas, &regs).expect("codegen");
    println!("target code:\n{program}");

    // Execute both representations on the same inputs and cross-check.
    let inputs: HashMap<String, i64> = [
        ("a".to_string(), 2),
        ("x".to_string(), 5),
        ("b".to_string(), 3),
        ("y".to_string(), 7),
    ]
    .into();
    let tuple_result = interpret(&block, &inputs);
    let asm_result = program.execute(&inputs);
    assert_eq!(tuple_result.memory["r"], asm_result["r"]);
    println!(
        "executed: r = {} (tuple IR and generated code agree)",
        asm_result["r"]
    );

    // And show what interlock hardware would do with the same order.
    let dag = DepDag::build(&block);
    let tm = TimingModel::new(&block, &dag, &machine);
    let trace = Trace::capture(&tm, &scheduled.order);
    println!(
        "interlock-hardware trace ({} cycles, {} bubbles):",
        trace.cycles(),
        trace.bubbles()
    );
    print!("{}", trace.render(&block));
}
