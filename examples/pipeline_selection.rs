//! Pipeline *selection* — the extension §4.1 footnote 3 excludes from the
//! paper's algorithm: on a machine with duplicated units (the paper's
//! Table 2 example has two loaders and two adders) the search also decides
//! which unit executes each instruction.
//!
//! ```sh
//! cargo run --example pipeline_selection
//! ```

use pipesched::core::{search, SchedContext, SearchConfig};
use pipesched::ir::{BlockBuilder, DepDag};
use pipesched::machine::presets;

fn main() {
    let machine = presets::table2_example();
    println!("{machine}");

    // Four *independent* adds: on one adder (enqueue 3) they serialize —
    // each issue must wait 3 cycles after the previous one — while two
    // adders let pairs overlap. Loads likewise compete for the loaders.
    let mut b = BlockBuilder::new("adds");
    let x = b.load("x");
    let y = b.load("y");
    for i in 0..4 {
        let s = b.add(x, y);
        b.store(&format!("r{i}"), s);
    }
    let block = b.finish().expect("valid");
    let dag = DepDag::build(&block);

    let base = {
        let ctx = SchedContext::new(&block, &dag, &machine);
        search(&ctx, &SearchConfig::default())
    };
    let selecting = {
        let ctx = SchedContext::new(&block, &dag, &machine);
        let cfg = SearchConfig {
            pipeline_selection: true,
            ..SearchConfig::default()
        };
        search(&ctx, &cfg)
    };

    println!(
        "fixed first-unit assignment: {} NOPs\nwith unit selection:         {} NOPs",
        base.nops, selecting.nops
    );
    println!("\nper-instruction unit assignment with selection:");
    for &t in &selecting.order {
        let unit = selecting.assignment[t.index()]
            .map(|p| format!("pipeline {p}"))
            .unwrap_or_else(|| "no pipeline".to_string());
        println!("  {:<24} -> {}", block.tuple(t).to_string(), unit);
    }
    assert!(selecting.nops <= base.nops);
}
