//! Schedule the same program for every machine preset — the point of the
//! paper's table-driven machine model is that "changing the pipeline
//! structure changes only the entries in these tables, not the structure of
//! the scheduling algorithm" (§4.1).
//!
//! ```sh
//! cargo run --example machine_comparison
//! ```

use pipesched::core::Scheduler;
use pipesched::frontend::compile;
use pipesched::machine::presets;

const SOURCE: &str = "\
p = a * b;
q = c * d;
s = p + q;
t = e * f;
r = s + t;
m = a + c;
n = m * r;
out = n - q;
";

fn main() {
    let block = compile("kernel", SOURCE).expect("parses");
    println!("kernel block ({} tuples):\n{block}", block.len());

    println!(
        "{:<18} {:>9} {:>11} {:>9} {:>7} {:>9}",
        "machine", "init NOPs", "final NOPs", "removed", "cycles", "Ω calls"
    );
    for machine in presets::all_presets() {
        let scheduler = Scheduler::new(machine.clone());
        let s = scheduler.schedule(&block);
        println!(
            "{:<18} {:>9} {:>11} {:>9} {:>7} {:>9}{}",
            machine.name,
            s.initial_nops,
            s.nops,
            s.nops_removed(),
            s.total_cycles(),
            s.stats.omega_calls,
            if s.optimal { "" } else { "  (truncated)" }
        );
    }

    println!(
        "\nDeeper pipelines leave more latency to hide; the unpipelined \
         machine needs no NOPs for any order."
    );
}
