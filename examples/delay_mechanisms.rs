//! The three §2.2 architectural delay mechanisms — and what the practical
//! encodings cost. One optimally scheduled block is executed under:
//! implicit interlock hardware, compiler NOP padding, exact wait tags,
//! Tera-style lookahead fields of several widths, and CARP-style pipeline
//! masks.
//!
//! ```sh
//! cargo run --example delay_mechanisms
//! ```

use pipesched::core::Scheduler;
use pipesched::frontend::compile;
use pipesched::ir::DepDag;
use pipesched::machine::presets;
use pipesched::sim::{
    pad_schedule, simulate_interlock, tag_carp, tag_lookahead, tag_schedule, TimingModel,
};

const SOURCE: &str = "\
p = a * b;
q = c * d;
s = p + q;
t = p - q;
r1 = s * t;
r2 = s + t;
";

fn main() {
    let machine = presets::deep_pipeline();
    let block = compile("kernel", SOURCE).expect("compiles");
    let scheduled = Scheduler::new(machine.clone()).schedule(&block);
    println!(
        "block of {} instructions on `{}`: optimal schedule needs {} NOPs\n",
        block.len(),
        machine.name,
        scheduled.nops
    );

    let dag = DepDag::build(&block);
    let tm = TimingModel::new(&block, &dag, &machine);
    let order = &scheduled.order;

    println!("{:<38} {:>8} {:>8}", "mechanism", "cycles", "stalls");
    let interlock = simulate_interlock(&tm, order);
    println!(
        "{:<38} {:>8} {:>8}",
        "implicit interlock (hardware)", interlock.total_cycles, interlock.total_stalls
    );

    let padded = pad_schedule(order, &scheduled.etas);
    println!(
        "{:<38} {:>8} {:>8}",
        "NOP insertion (MIPS-style)",
        padded.execute(&tm).expect("hazard-free"),
        padded.nop_count()
    );

    let explicit = tag_schedule(&tm, order);
    println!(
        "{:<38} {:>8} {:>8}",
        "exact wait counts",
        explicit.execute(&tm).expect("hazard-free"),
        explicit.total_waits()
    );

    for bits in [3u32, 2, 1] {
        let max = (1u32 << bits) - 1;
        let tera = tag_lookahead(&tm, order, max).execute(&tm);
        println!(
            "{:<38} {:>8} {:>8}",
            format!("Tera lookahead ({bits}-bit field)"),
            tera.total_cycles,
            tera.total_stalls
        );
    }

    let carp = tag_carp(&tm, order).execute(&tm);
    println!(
        "{:<38} {:>8} {:>8}",
        "CARP pipeline masks", carp.total_cycles, carp.total_stalls
    );

    println!(
        "\nThe first three always agree (the paper's §2.2 orthogonality\n\
         claim); clamped lookahead fields and coarse masks pay for their\n\
         simpler hardware with extra stall cycles."
    );
}
