//! Cross-block scheduling (the paper's footnote 1): a straight-line
//! sequence of labeled basic blocks is scheduled block by block with the
//! pipeline state carried across each boundary, so conflicts with a
//! predecessor block's in-flight operations are priced into the next
//! block's first NOPs.
//!
//! ```sh
//! cargo run --example block_sequence
//! ```

use pipesched::core::{schedule_sequence, SearchConfig};
use pipesched::frontend::compile_sequence;
use pipesched::machine::presets;

const SOURCE: &str = "\
// entry: feed the multiplier right at the block's end
a = x * y;

square:
// this block starts with multiplier work of its own
b = a * a;
c = b * 2;

finish:
r = c - a;
";

fn main() {
    let blocks = compile_sequence(SOURCE).expect("compiles");
    println!("{} blocks:", blocks.len());
    for b in &blocks {
        println!("-- {} ({} tuples)\n{b}", b.name, b.len());
    }

    // The recovery-unit machine (multiplier: result in 2 cycles but the
    // unit needs 6 before the next multiply) makes boundary conflicts
    // expensive and visible.
    let machine = presets::recovery_unit();
    let seq = schedule_sequence(&blocks, &machine, &SearchConfig::default());

    println!("machine `{}`:", machine.name);
    let mut total = 0;
    for r in &seq.regions {
        println!(
            "  block {:<8} {} instructions, {} NOPs{} (first instruction stalls {})",
            r.name,
            r.order.len(),
            r.nops,
            if r.optimal { "" } else { " (truncated)" },
            r.etas.first().copied().unwrap_or(0),
        );
        total += r.nops;
    }
    assert_eq!(total, seq.total_nops);
    println!("  total: {} NOPs", seq.total_nops);

    // Compare with scheduling each block cold (ignoring boundaries): the
    // carried state can only add constraints, never remove them.
    let cold_total: u32 = blocks
        .iter()
        .map(|b| {
            schedule_sequence(std::slice::from_ref(b), &machine, &SearchConfig::default())
                .total_nops
        })
        .sum();
    println!(
        "  scheduling each block cold would claim {cold_total} NOPs — an \
         underestimate the boundary state corrects."
    );
}
