//! The curtail point λ (§2.3): sweep λ on a hard block and watch schedule
//! quality converge long before the search can prove optimality — the
//! paper's observation that truncated searches "still generally result in
//! very good schedules".
//!
//! ```sh
//! cargo run --example curtail_tradeoff
//! ```

use pipesched::core::{search, SchedContext, SearchConfig};
use pipesched::ir::DepDag;
use pipesched::machine::presets;
use pipesched::synth::{generate_block, GeneratorConfig};

fn main() {
    // A large multiplication-heavy block: the worst case for the search.
    let mut cfg = GeneratorConfig::new(26, 10, 4, 0xbad5eed);
    cfg.frequencies = pipesched::synth::FrequencyTable::mul_heavy();
    let block = generate_block(&cfg);
    let dag = DepDag::build(&block);
    let machine = presets::paper_simulation();

    println!(
        "block of {} instructions on `{}`\n",
        block.len(),
        machine.name
    );
    println!(
        "{:>12} {:>11} {:>9} {:>10}",
        "lambda", "final NOPs", "Ω used", "status"
    );

    // Use the paper-exact configuration so λ is the only safety net — the
    // default config's lower-bound termination would end the sweep early.
    for lambda in [
        10u64, 50, 100, 500, 1_000, 5_000, 50_000, 500_000, 5_000_000,
    ] {
        let search_cfg = SearchConfig {
            lambda,
            ..SearchConfig::paper_exact()
        };
        let ctx = SchedContext::new(&block, &dag, &machine);
        let out = search(&ctx, &search_cfg);
        println!(
            "{:>12} {:>11} {:>9} {:>10}",
            lambda,
            out.nops,
            out.stats.omega_calls,
            if out.optimal { "optimal" } else { "truncated" }
        );
    }

    let ctx = SchedContext::new(&block, &dag, &machine);
    let smart = search(&ctx, &SearchConfig::default());
    println!(
        "\nwith the default critical-path bound: {} NOPs in {} Ω calls ({})",
        smart.nops,
        smart.stats.omega_calls,
        if smart.optimal {
            "optimal"
        } else {
            "truncated"
        }
    );
}
