//! Quickstart: build a basic block, schedule it optimally, inspect the
//! result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pipesched::core::Scheduler;
use pipesched::ir::{BlockBuilder, DepDag};
use pipesched::machine::presets;
use pipesched::sim::{pad_schedule, TimingModel};

fn main() {
    // The paper's running example machine: loader (latency 2, enqueue 1),
    // adder (3, 1), multiplier (4, 2); Const/Store use no pipeline.
    let machine = presets::paper_simulation();
    println!("{machine}");

    // r = (a * b) + (c * d), written naively: every consumer right after
    // its producer.
    let mut b = BlockBuilder::new("quickstart");
    let a = b.load("a");
    let bb = b.load("b");
    let ab = b.mul(a, bb);
    let c = b.load("c");
    let d = b.load("d");
    let cd = b.mul(c, d);
    let sum = b.add(ab, cd);
    b.store("r", sum);
    let block = b.finish().expect("valid block");

    println!("tuple form:\n{block}");

    let scheduler = Scheduler::new(machine.clone());
    let scheduled = scheduler.schedule(&block);

    println!(
        "list schedule needs {} NOPs; optimal schedule needs {} ({}).",
        scheduled.initial_nops,
        scheduled.nops,
        if scheduled.optimal {
            "provably optimal"
        } else {
            "search truncated"
        }
    );

    // Emit the padded program the MIPS-style hardware would run.
    let padded = pad_schedule(&scheduled.order, &scheduled.etas);
    println!("padded program ({} cycles):", padded.total_cycles());
    print!("{}", padded.listing(&block));

    // Prove the padding is exactly the hardware minimum.
    let dag = DepDag::build(&block);
    let tm = TimingModel::new(&block, &dag, &machine);
    padded.execute(&tm).expect("hazard-free");
    assert!(padded.is_minimally_padded(&tm));
    println!("verified: hazard-free and minimally padded.");

    // Show what the pipelines are doing each cycle.
    let labels: Vec<String> = machine
        .pipelines()
        .iter()
        .map(|p| p.function.clone())
        .collect();
    let gantt = pipesched::sim::chart(&tm, &scheduled.order, &labels);
    println!(
        "\npipeline occupancy ({}% utilized):\n{}",
        (gantt.utilization() * 100.0).round(),
        gantt.render()
    );
}
