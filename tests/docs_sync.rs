//! The README's diagnostic-code table is a contract: every code the
//! analyzer can emit must be documented, with the right severity and
//! summary, and the table must not advertise codes that no longer exist.
//! This test parses the table out of README.md and diffs it against
//! [`DiagCode::ALL`].

use std::collections::BTreeMap;

use pipesched::analyze::DiagCode;

/// Extract `(code, severity, meaning)` rows from the README's
/// diagnostic-code table (rows shaped `| `A0101` | error | ... |`).
fn readme_rows() -> BTreeMap<String, (String, String)> {
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md"))
        .expect("README.md is readable");
    let mut rows = BTreeMap::new();
    for line in readme.lines() {
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        // A table row splits into ["", code, severity, meaning, ""].
        if cells.len() != 5 || !cells[1].starts_with("`A0") {
            continue;
        }
        let code = cells[1].trim_matches('`').to_string();
        let dup = rows.insert(code.clone(), (cells[2].to_string(), cells[3].to_string()));
        assert!(dup.is_none(), "README documents {code} twice");
    }
    rows
}

#[test]
fn readme_diagnostic_table_matches_the_analyzer() {
    let rows = readme_rows();
    assert!(
        !rows.is_empty(),
        "no diagnostic-code table rows found in README.md"
    );

    let mut missing = Vec::new();
    let mut wrong = Vec::new();
    for &code in DiagCode::ALL {
        match rows.get(code.as_str()) {
            None => missing.push(code.as_str()),
            Some((severity, meaning)) => {
                if severity != &code.severity().to_string() || meaning != code.summary() {
                    wrong.push(format!(
                        "{}: README says `{severity}` / \"{meaning}\", analyzer says `{}` / \"{}\"",
                        code.as_str(),
                        code.severity(),
                        code.summary()
                    ));
                }
            }
        }
    }
    let stale: Vec<&String> = rows
        .keys()
        .filter(|code| code.parse::<DiagCode>().is_err())
        .collect();

    assert!(
        missing.is_empty() && wrong.is_empty() && stale.is_empty(),
        "README diagnostic table out of sync with crates/analyze/src/diag.rs\n\
         undocumented codes: {missing:?}\n\
         mismatched rows: {wrong:#?}\n\
         stale rows (no such code): {stale:?}"
    );

    // The table and the registry are the same size, so the checks above
    // were exhaustive in both directions.
    assert_eq!(rows.len(), DiagCode::ALL.len());
}

/// Extract the backtick-quoted field names from the README's wide-event
/// table — the rows following the `| wide-event field | meaning |`
/// header, until the first non-table line.
fn readme_wide_event_fields() -> Vec<String> {
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md"))
        .expect("README.md is readable");
    let mut fields = Vec::new();
    let mut in_table = false;
    for line in readme.lines() {
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        if cells.len() == 4 && cells[1] == "wide-event field" && cells[2] == "meaning" {
            in_table = true;
            continue;
        }
        if !in_table {
            continue;
        }
        if cells.len() != 4 {
            break; // table ended
        }
        if cells[1].starts_with("---") {
            continue; // separator row
        }
        let field = cells[1].trim_matches('`').to_string();
        assert!(
            !fields.contains(&field),
            "README wide-event table documents `{field}` twice"
        );
        fields.push(field);
    }
    fields
}

/// The README's wide-event field table is a contract with the flight
/// recorder: it must list exactly [`WideEvent::FIELDS`], in order, so a
/// reader of a dumped NDJSON line can look every column up.
#[test]
fn readme_wide_event_table_matches_the_flight_recorder() {
    use pipesched::trace::flight::WideEvent;

    let documented = readme_wide_event_fields();
    assert!(
        !documented.is_empty(),
        "no `| wide-event field | meaning |` table found in README.md"
    );

    let registered: Vec<&str> = WideEvent::FIELDS.to_vec();
    let missing: Vec<&&str> = registered
        .iter()
        .filter(|f| !documented.iter().any(|d| d == **f))
        .collect();
    let stale: Vec<&String> = documented
        .iter()
        .filter(|d| !registered.contains(&d.as_str()))
        .collect();
    assert!(
        missing.is_empty() && stale.is_empty(),
        "README wide-event table out of sync with crates/trace/src/flight.rs\n\
         undocumented fields: {missing:?}\n\
         stale rows (no such field): {stale:?}"
    );
    // Same set both ways — now pin the order to emission order, so the
    // table reads in the same order as a dumped NDJSON line.
    assert_eq!(
        documented, registered,
        "README wide-event rows must follow WideEvent::FIELDS emission order"
    );
}

/// The dataflow/translation-validation family (`A05xx`) specifically:
/// every code the analyzer registers is documented, and every documented
/// `A05` row names a registered code — in both directions, independently
/// of the full-table check above.
#[test]
fn a05xx_table_complete_both_directions() {
    let rows = readme_rows();
    let registered: Vec<&str> = DiagCode::ALL
        .iter()
        .map(|c| c.as_str())
        .filter(|s| s.starts_with("A05"))
        .collect();
    assert!(
        !registered.is_empty(),
        "analyzer registers no A05xx codes — dataflow lints missing"
    );
    let documented: Vec<&String> = rows.keys().filter(|c| c.starts_with("A05")).collect();
    for code in &registered {
        assert!(
            rows.contains_key(*code),
            "A05xx code {code} is not documented in README.md"
        );
    }
    assert_eq!(
        documented.len(),
        registered.len(),
        "README documents A05xx rows for codes the analyzer does not register:\n\
         documented {documented:?}\nregistered {registered:?}"
    );
}

/// The SAT-backend audit family (`A06xx`) specifically: every code the
/// analyzer registers is documented, and every documented `A06` row
/// names a registered code — in both directions, independently of the
/// full-table check above.
#[test]
fn a06xx_table_complete_both_directions() {
    let rows = readme_rows();
    let registered: Vec<&str> = DiagCode::ALL
        .iter()
        .map(|c| c.as_str())
        .filter(|s| s.starts_with("A06"))
        .collect();
    assert!(
        !registered.is_empty(),
        "analyzer registers no A06xx codes — SAT-backend audit codes missing"
    );
    let documented: Vec<&String> = rows.keys().filter(|c| c.starts_with("A06")).collect();
    for code in &registered {
        assert!(
            rows.contains_key(*code),
            "A06xx code {code} is not documented in README.md"
        );
    }
    assert_eq!(
        documented.len(),
        registered.len(),
        "README documents A06xx rows for codes the analyzer does not register:\n\
         documented {documented:?}\nregistered {registered:?}"
    );
}

/// The concurrency family (`A07xx`) specifically: every code the
/// analyzer registers is documented, and every documented `A07` row
/// names a registered code — in both directions, independently of the
/// full-table check above. The model checker's own `ViolationCode`
/// strings must also resolve to registered analyzer codes, so a
/// violation surfaced through the CLI always has a documented code.
#[test]
fn a07xx_table_complete_both_directions() {
    let rows = readme_rows();
    let registered: Vec<&str> = DiagCode::ALL
        .iter()
        .map(|c| c.as_str())
        .filter(|s| s.starts_with("A07"))
        .collect();
    assert!(
        !registered.is_empty(),
        "analyzer registers no A07xx codes — concurrency codes missing"
    );
    let documented: Vec<&String> = rows.keys().filter(|c| c.starts_with("A07")).collect();
    for code in &registered {
        assert!(
            rows.contains_key(*code),
            "A07xx code {code} is not documented in README.md"
        );
    }
    assert_eq!(
        documented.len(),
        registered.len(),
        "README documents A07xx rows for codes the analyzer does not register:\n\
         documented {documented:?}\nregistered {registered:?}"
    );
    // Cross-registry coherence: every model-checker violation code is a
    // registered (and therefore documented) analyzer code.
    for v in [
        pipesched::check::ViolationCode::DataRace,
        pipesched::check::ViolationCode::LockOrderCycle,
        pipesched::check::ViolationCode::Deadlock,
        pipesched::check::ViolationCode::AcquireMisuse,
        pipesched::check::ViolationCode::InvariantViolated,
        pipesched::check::ViolationCode::LockLeaked,
    ] {
        assert!(
            v.as_str().parse::<DiagCode>().is_ok(),
            "model-checker code {} has no analyzer registration",
            v.as_str()
        );
    }
}
