//! Integration tests for the `pipesched` command-line tool.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pipesched"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("pipesched-cli-{name}-{}", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path
}

const SOURCE: &str = "p = a * b;\nq = c * d;\nr = p + q;\n";

#[test]
fn emits_asm_with_registers() {
    let src = write_temp("asm.src", SOURCE);
    let out = bin().arg(&src).args(["--emit", "asm"]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Load  R0,a"), "{text}");
    assert!(text.contains("Nop"), "{text}");
    assert!(text.contains("Store r,"), "{text}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("optimal"), "{stderr}");
}

#[test]
fn stats_report_optimality() {
    let src = write_temp("stats.src", SOURCE);
    let out = bin().arg(&src).args(["--emit", "stats"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("provably optimal:   true"), "{text}");
    assert!(text.contains("final NOPs"), "{text}");
}

#[test]
fn tuple_round_trip_through_stdin() {
    let src = write_temp("rt.src", SOURCE);
    let tuples = bin().arg(&src).args(["--emit", "tuples"]).output().unwrap();
    assert!(tuples.status.success());
    let tuple_text = String::from_utf8(tuples.stdout).unwrap();
    assert!(tuple_text.starts_with(";; tuples"));

    let mut child = bin()
        .args(["-", "--emit", "padded", "--machine", "deep-pipeline"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(tuple_text.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Load #a"), "{text}");
}

#[test]
fn dot_output_is_a_digraph() {
    let src = write_temp("dot.src", SOURCE);
    let out = bin().arg(&src).args(["--emit", "dot"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.starts_with("digraph"), "{text}");
    assert!(text.contains("->"), "{text}");
}

#[test]
fn windowed_and_parallel_modes_run() {
    let src = write_temp("wp.src", SOURCE);
    for extra in [vec!["--window", "4"], vec!["--parallel"]] {
        let out = bin()
            .arg(&src)
            .args(["--emit", "padded"])
            .args(&extra)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{extra:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn machine_json_file_is_accepted() {
    let machine = pipesched::machine::presets::deep_pipeline();
    let json = pipesched::machine::config::to_json(&machine).unwrap();
    let path =
        std::env::temp_dir().join(format!("pipesched-cli-machine-{}.json", std::process::id()));
    std::fs::write(&path, json).unwrap();
    let src = write_temp("mj.src", SOURCE);
    let out = bin()
        .arg(&src)
        .args(["--emit", "stats", "--machine"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("deep-pipeline"), "{text}");
}

#[test]
fn bad_inputs_fail_cleanly() {
    let src = write_temp("bad.src", "x = ;\n");
    let out = bin().arg(&src).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("expected"), "{err}");

    let src2 = write_temp("ok.src", SOURCE);
    let out = bin()
        .arg(&src2)
        .args(["--machine", "nonexistent"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = bin()
        .arg(&src2)
        .args(["--emit", "nonsense"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn mach_text_machine_file_is_accepted() {
    let mach = "\
machine tiny
pipeline loader latency=3 enqueue=1
map Load -> loader
";
    let path = std::env::temp_dir().join(format!("pipesched-cli-{}.mach", std::process::id()));
    std::fs::write(&path, mach).unwrap();
    let src = write_temp("mach.src", SOURCE);
    let out = bin()
        .arg(&src)
        .args(["--emit", "stats", "--machine"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("tiny"), "{text}");
}

#[test]
fn gantt_emitter_renders_lanes() {
    let src = write_temp("gantt.src", SOURCE);
    let out = bin().arg(&src).args(["--emit", "gantt"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("loader"), "{text}");
    assert!(text.contains("multiplier"), "{text}");
    assert!(text.starts_with("cycle"), "{text}");
}

#[test]
fn prove_certifies_and_streams_a_checkable_certificate() {
    let src = write_temp("prove.src", SOURCE);
    let out = bin().arg("prove").arg(&src).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("optimal-certified"), "{text}");
    assert!(text.contains("digest"), "{text}");

    // Stream the certificate to a file and re-check it independently.
    let cert_path =
        std::env::temp_dir().join(format!("pipesched-cli-prove-{}.ndjson", std::process::id()));
    let out = bin()
        .arg("prove")
        .arg(&src)
        .arg("--proof")
        .arg(&cert_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let ndjson = std::fs::read_to_string(&cert_path).unwrap();
    let cert = pipesched::core::proof::Certificate::from_ndjson(&ndjson).unwrap();
    // `prove` compiles through the optimizing sequence path; mirror it.
    let blocks = pipesched::frontend::compile_sequence(SOURCE).unwrap();
    let block = &blocks[0];
    let machine = pipesched::machine::presets::paper_simulation();
    let check = pipesched::proof::check_certificate(block, &machine, &cert);
    assert!(check.is_certified(), "{:?}", check.report);
}
