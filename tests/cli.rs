//! Integration tests for the `pipesched` command-line tool.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pipesched"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("pipesched-cli-{name}-{}", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path
}

const SOURCE: &str = "p = a * b;\nq = c * d;\nr = p + q;\n";

#[test]
fn emits_asm_with_registers() {
    let src = write_temp("asm.src", SOURCE);
    let out = bin().arg(&src).args(["--emit", "asm"]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Load  R0,a"), "{text}");
    assert!(text.contains("Nop"), "{text}");
    assert!(text.contains("Store r,"), "{text}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("optimal"), "{stderr}");
}

#[test]
fn stats_report_optimality() {
    let src = write_temp("stats.src", SOURCE);
    let out = bin().arg(&src).args(["--emit", "stats"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("provably optimal:   true"), "{text}");
    assert!(text.contains("final NOPs"), "{text}");
}

#[test]
fn tuple_round_trip_through_stdin() {
    let src = write_temp("rt.src", SOURCE);
    let tuples = bin().arg(&src).args(["--emit", "tuples"]).output().unwrap();
    assert!(tuples.status.success());
    let tuple_text = String::from_utf8(tuples.stdout).unwrap();
    assert!(tuple_text.starts_with(";; tuples"));

    let mut child = bin()
        .args(["-", "--emit", "padded", "--machine", "deep-pipeline"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(tuple_text.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Load #a"), "{text}");
}

#[test]
fn dot_output_is_a_digraph() {
    let src = write_temp("dot.src", SOURCE);
    let out = bin().arg(&src).args(["--emit", "dot"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.starts_with("digraph"), "{text}");
    assert!(text.contains("->"), "{text}");
}

#[test]
fn windowed_and_parallel_modes_run() {
    let src = write_temp("wp.src", SOURCE);
    for extra in [vec!["--window", "4"], vec!["--parallel"]] {
        let out = bin()
            .arg(&src)
            .args(["--emit", "padded"])
            .args(&extra)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{extra:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn machine_json_file_is_accepted() {
    let machine = pipesched::machine::presets::deep_pipeline();
    let json = pipesched::machine::config::to_json(&machine).unwrap();
    let path =
        std::env::temp_dir().join(format!("pipesched-cli-machine-{}.json", std::process::id()));
    std::fs::write(&path, json).unwrap();
    let src = write_temp("mj.src", SOURCE);
    let out = bin()
        .arg(&src)
        .args(["--emit", "stats", "--machine"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("deep-pipeline"), "{text}");
}

#[test]
fn bad_inputs_fail_cleanly() {
    let src = write_temp("bad.src", "x = ;\n");
    let out = bin().arg(&src).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("expected"), "{err}");

    let src2 = write_temp("ok.src", SOURCE);
    let out = bin()
        .arg(&src2)
        .args(["--machine", "nonexistent"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = bin()
        .arg(&src2)
        .args(["--emit", "nonsense"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn mach_text_machine_file_is_accepted() {
    let mach = "\
machine tiny
pipeline loader latency=3 enqueue=1
map Load -> loader
";
    let path = std::env::temp_dir().join(format!("pipesched-cli-{}.mach", std::process::id()));
    std::fs::write(&path, mach).unwrap();
    let src = write_temp("mach.src", SOURCE);
    let out = bin()
        .arg(&src)
        .args(["--emit", "stats", "--machine"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("tiny"), "{text}");
}

#[test]
fn gantt_emitter_renders_lanes() {
    let src = write_temp("gantt.src", SOURCE);
    let out = bin().arg(&src).args(["--emit", "gantt"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("loader"), "{text}");
    assert!(text.contains("multiplier"), "{text}");
    assert!(text.starts_with("cycle"), "{text}");
}

#[test]
fn prove_certifies_and_streams_a_checkable_certificate() {
    let src = write_temp("prove.src", SOURCE);
    let out = bin().arg("prove").arg(&src).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("optimal-certified"), "{text}");
    assert!(text.contains("digest"), "{text}");

    // Stream the certificate to a file and re-check it independently.
    let cert_path =
        std::env::temp_dir().join(format!("pipesched-cli-prove-{}.ndjson", std::process::id()));
    let out = bin()
        .arg("prove")
        .arg(&src)
        .arg("--proof")
        .arg(&cert_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let ndjson = std::fs::read_to_string(&cert_path).unwrap();
    let cert = pipesched::core::proof::Certificate::from_ndjson(&ndjson).unwrap();
    // `prove` compiles through the optimizing sequence path; mirror it.
    let blocks = pipesched::frontend::compile_sequence(SOURCE).unwrap();
    let block = &blocks[0];
    let machine = pipesched::machine::presets::paper_simulation();
    let check = pipesched::proof::check_certificate(block, &machine, &cert);
    assert!(check.is_certified(), "{:?}", check.report);
}

#[test]
fn trace_depth_counts_sum_to_schedule_nodes() {
    // Acceptance gate: the per-depth B&B node counts `pipesched trace`
    // emits must sum to exactly the `nodes_visited` that `schedule --json`
    // reports for the same input — same λ, same search, no sampling.
    let src = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/data/dotproduct.src");

    let traced = bin().args(["trace", src, "--ndjson"]).output().unwrap();
    assert!(
        traced.status.success(),
        "{}",
        String::from_utf8_lossy(&traced.stderr)
    );
    let mut depth_nodes = 0i64;
    for line in String::from_utf8(traced.stdout).unwrap().lines() {
        let doc = pipesched::json::parse(line).unwrap();
        if doc.get("name").and_then(pipesched::json::Json::as_str) == Some("bnb_depth_nodes") {
            depth_nodes += doc
                .get("value")
                .and_then(pipesched::json::Json::as_i64)
                .unwrap();
        }
    }
    assert!(depth_nodes > 0, "trace emitted no per-depth node counts");

    let scheduled = bin().args(["schedule", src, "--json"]).output().unwrap();
    assert!(scheduled.status.success());
    let doc = pipesched::json::parse(&String::from_utf8(scheduled.stdout).unwrap()).unwrap();
    let nodes_visited = doc
        .get("nodes_visited")
        .and_then(pipesched::json::Json::as_i64)
        .unwrap();
    assert_eq!(
        depth_nodes, nodes_visited,
        "per-depth counts must sum to the search's nodes_visited"
    );
}

#[test]
fn trace_flame_breaks_search_into_depth_frames() {
    let src = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/data/dotproduct.src");
    let out = bin().args(["trace", src, "--flame"]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("pipesched;search;depth_00 "), "{text}");
    assert!(text.contains("pipesched;frontend.parse "), "{text}");
    // Folded format: every line is `semicolon;separated;path <count>`.
    for line in text.lines() {
        let (path, count) = line.rsplit_once(' ').expect(line);
        assert!(!path.is_empty());
        count.parse::<u64>().expect(line);
    }
}

/// A small NDJSON workload: two shapes, six requests, isomorphic repeats.
fn cli_requests() -> String {
    let shapes = [
        "1: Load #x\n2: Mul @1, @1\n3: Store #y, @2",
        "1: Load #a\n2: Load #b\n3: Add @1, @2\n4: Store #c, @3",
    ];
    (0..6)
        .map(|i| {
            let block = shapes[i % 2].replace('#', &format!("#q{i}_"));
            format!(
                "{}\n",
                pipesched::json::json_object![
                    ("id", i as i64),
                    ("block", block.as_str()),
                    ("machine", "paper-simulation"),
                ]
                .to_compact()
            )
        })
        .collect()
}

#[test]
fn stats_reports_fleet_search_effort() {
    let reqs = write_temp("stats.ndjson", &cli_requests());
    let out = bin()
        .arg("stats")
        .arg(&reqs)
        .args(["--workers", "1", "--json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = pipesched::json::parse(&String::from_utf8(out.stdout).unwrap()).unwrap();
    let metrics = doc.get("metrics").unwrap();
    assert_eq!(
        metrics
            .get("requests")
            .and_then(pipesched::json::Json::as_i64),
        Some(6)
    );
    let search = metrics.get("search").unwrap();
    assert!(
        search
            .get("nodes_visited")
            .and_then(pipesched::json::Json::as_i64)
            .unwrap()
            > 0
    );
    assert_eq!(
        search
            .get("identity_holds")
            .and_then(pipesched::json::Json::as_bool),
        Some(true)
    );
    // 2 distinct shapes -> 2 cache entries, 4 isomorphic hits.
    let cache = doc.get("cache").unwrap();
    assert_eq!(
        cache.get("entries").and_then(pipesched::json::Json::as_i64),
        Some(2)
    );
    assert_eq!(
        cache.get("hits").and_then(pipesched::json::Json::as_i64),
        Some(4)
    );

    // The Prometheus rendering of the same replay must validate.
    let out = bin()
        .arg("stats")
        .arg(&reqs)
        .args(["--workers", "1", "--prom"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    pipesched::trace::prom::validate(&text).unwrap();
    assert!(text.contains("pipesched_requests_total 6"), "{text}");
}

#[test]
fn tcp_serve_answers_batch_and_metrics_scrapes() {
    // End-to-end over a real socket: a traced server, an NDJSON batch
    // replay through `batch --tcp`, then a `/metrics` scrape through
    // `stats --tcp --prom`. `--conns 2` makes the server exit on its own.
    let port = 40_000 + std::process::id() % 20_000;
    let addr = format!("127.0.0.1:{port}");
    let mut server = bin()
        .args([
            "serve",
            "--tcp",
            &addr,
            "--conns",
            "2",
            "--workers",
            "1",
            "--trace",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();

    // Wait for the listener; probe connections are not counted.
    let mut up = false;
    for _ in 0..100 {
        if std::net::TcpStream::connect(&addr).is_ok() {
            up = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(up, "server never opened {addr}");

    let reqs = write_temp("tcp.ndjson", &cli_requests());
    let out = bin()
        .arg("batch")
        .arg(&reqs)
        .args(["--tcp", &addr, "--check", "--json", "--quiet"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // `--quiet` suppresses the response lines on stdout; the `--json`
    // summary goes to stderr so responses stay pipeable.
    let doc = pipesched::json::parse(&String::from_utf8(out.stderr).unwrap()).unwrap();
    assert_eq!(
        doc.get("requests").and_then(pipesched::json::Json::as_i64),
        Some(6)
    );
    assert_eq!(
        doc.get("errors").and_then(pipesched::json::Json::as_i64),
        Some(0)
    );
    assert_eq!(
        doc.get("cache_hits")
            .and_then(pipesched::json::Json::as_i64),
        Some(4)
    );

    let out = bin()
        .args(["stats", "--tcp", &addr, "--prom"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    pipesched::trace::prom::validate(&text).unwrap();
    assert!(text.contains("pipesched_requests_total 6"), "{text}");
    assert!(text.contains("pipesched_search_identity_ok 1"), "{text}");

    assert!(server.wait().unwrap().success());
}
