//! The paper's specific numeric claims and worked examples, as tests.

use pipesched::core::{search, SchedContext, Scheduler, SearchConfig};
use pipesched::frontend::compile_unoptimized;
use pipesched::ir::{DepDag, Op, TupleId};
use pipesched::machine::presets;
use pipesched::synth::{CorpusSpec, CorpusStats};

/// §2.1: a latency-4 load followed by a dependent add needs 3 delay ticks.
#[test]
fn section21_dependence_example() {
    let machine = presets::section2_example();
    let block = compile_unoptimized("dep", "r = x + 0;\n").unwrap();
    // Lowered: Load x, Const 0, Add, Store — the Add depends on the Load.
    let dag = DepDag::build(&block);
    let ctx = SchedContext::new(&block, &dag, &machine);
    let order: Vec<_> = block.ids().collect();
    let (etas, _) = pipesched::core::timing::evaluate_schedule(&ctx, &order);
    // Const fills one slot after the load; the add still waits 2 more.
    let add_pos = order
        .iter()
        .position(|&t| block.tuple(t).op == Op::Add)
        .unwrap();
    assert_eq!(
        etas[add_pos], 2,
        "load@0, const@1, add must wait to cycle 4"
    );
}

/// §2.1: two loads through a MAR held for 2 cycles need 1 delay tick.
#[test]
fn section21_conflict_example() {
    let machine = presets::section2_example();
    let block = compile_unoptimized("conf", "p = x;\nq = y;\n").unwrap();
    let dag = DepDag::build(&block);
    let ctx = SchedContext::new(&block, &dag, &machine);
    // Loads are tuples 1 and 3 in `p = x; q = y;` lowering? Find them.
    let loads: Vec<TupleId> = block
        .tuples()
        .iter()
        .filter(|t| t.op == Op::Load)
        .map(|t| t.id)
        .collect();
    assert_eq!(loads.len(), 2);
    let mut engine = pipesched::core::TimingEngine::new(&ctx);
    assert_eq!(engine.push_default(loads[0]), 0);
    assert_eq!(
        engine.push_default(loads[1]),
        1,
        "MAR conflict inserts 1 NOP"
    );
}

/// Figure 3: `b = 15; a = b * a;` lowers to exactly the paper's 5 tuples.
#[test]
fn figure3_tuples() {
    let block = compile_unoptimized("fig3", "b = 15;\na = b * a;\n").unwrap();
    let ops: Vec<Op> = block.tuples().iter().map(|t| t.op).collect();
    assert_eq!(
        ops,
        vec![Op::Const, Op::Store, Op::Load, Op::Mul, Op::Store]
    );
}

/// §5.3: the corpus averages ~20.6 instructions per block, and blocks past
/// 40 instructions exist but are rare.
#[test]
fn corpus_statistics_match_section53() {
    let spec = CorpusSpec::paper_default();
    let stats = CorpusStats::measure(&spec, 600);
    assert!(
        (stats.mean_size - 20.6).abs() < 3.0,
        "mean {}",
        stats.mean_size
    );
    let past_40: usize = stats.histogram.iter().skip(41).sum();
    assert!(past_40 > 0, "no blocks past 40 instructions");
    assert!(
        (past_40 as f64) < 0.1 * stats.blocks as f64,
        "blocks past 40 should be rare"
    );
}

/// §2.3/Table 7 shape: with a generous curtail point, the vast majority of
/// corpus blocks are scheduled provably optimally, and for most blocks
/// under 20 instructions a λ of ~1000 suffices (the paper says ~50 for the
/// weaker Ω accounting; our per-placement counting is denser).
#[test]
fn most_blocks_schedule_optimally() {
    let spec = CorpusSpec::paper_default().with_runs(150);
    let machine = presets::paper_simulation();
    let mut optimal = 0;
    let mut small_blocks = 0;
    let mut small_cheap = 0;
    for k in 0..150 {
        let block = spec.block(k);
        let dag = DepDag::build(&block);
        let ctx = SchedContext::new(&block, &dag, &machine);
        let out = search(&ctx, &SearchConfig::default());
        optimal += usize::from(out.optimal);
        if block.len() < 20 {
            small_blocks += 1;
            small_cheap += usize::from(out.optimal && out.stats.omega_calls <= 1_000);
        }
    }
    assert!(optimal >= 140, "only {optimal}/150 optimal");
    assert!(
        small_cheap * 10 >= small_blocks * 9,
        "small blocks should be cheap: {small_cheap}/{small_blocks}"
    );
}

/// The paper's headline: the search never returns a worse schedule than
/// the list scheduler, and "the final number of NOPs remains nearly
/// constant" (small) for completed searches while initial NOPs grow.
#[test]
fn final_nops_small_for_completed_runs() {
    let spec = CorpusSpec::paper_default().with_runs(80);
    let machine = presets::paper_simulation();
    let mut init_sum = 0u64;
    let mut final_sum = 0u64;
    for k in 0..80 {
        let block = spec.block(k);
        let s = Scheduler::new(machine.clone()).schedule(&block);
        if s.optimal {
            init_sum += u64::from(s.initial_nops);
            final_sum += u64::from(s.nops);
        }
    }
    // Our list scheduler seeds the search with better schedules than the
    // paper's (their initial averaged 9.50 NOPs, ours ~4.5 on comparable
    // blocks), so the removal *ratio* is smaller, but the shape holds: the
    // optimal schedules need well under half the initial NOPs, and few
    // NOPs per block in absolute terms.
    assert!(
        final_sum * 2 <= init_sum,
        "optimal scheduling should remove most NOPs: {final_sum} vs {init_sum}"
    );
    assert!(
        final_sum <= 80 * 3,
        "final NOPs should stay small per block: {final_sum}"
    );
}
