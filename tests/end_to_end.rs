//! End-to-end integration: source text → optimizer → optimal schedule →
//! register allocation → target code, with semantics and timing validated
//! at every boundary.

use std::collections::HashMap;

use pipesched::core::Scheduler;
use pipesched::frontend::{compile, compile_unoptimized, interpret};
use pipesched::ir::DepDag;
use pipesched::machine::presets;
use pipesched::regalloc::{allocate, emit, max_pressure};
use pipesched::sim::{pad_schedule, validate_schedule, TimingModel};

const PROGRAMS: [&str; 4] = [
    "b = 15;\na = b * a;\n",
    "t = a * x + b * y;\nu = a * x - b * y;\nr = (t + u) * 3;\n",
    "s = 0;\ns = s + a;\ns = s + b;\ns = s + c;\ns = s + d;\navg = s / 4;\n",
    "x = -a;\ny = x * x;\nz = y - -a * a;\nout = z + 1;\n",
];

fn inputs() -> HashMap<String, i64> {
    [
        ("a".to_string(), 3),
        ("b".to_string(), -4),
        ("c".to_string(), 11),
        ("d".to_string(), 2),
        ("x".to_string(), 5),
        ("y".to_string(), 6),
    ]
    .into()
}

#[test]
fn full_pipeline_preserves_semantics_and_timing() {
    let machine = presets::paper_simulation();
    for (i, source) in PROGRAMS.iter().enumerate() {
        let block = compile(&format!("p{i}"), source).expect("compiles");
        let dag = DepDag::build(&block);

        // Schedule optimally.
        let scheduled = Scheduler::new(machine.clone()).schedule(&block);
        assert!(scheduled.optimal, "program {i} truncated");
        assert!(scheduled.nops <= scheduled.initial_nops);

        // The simulator agrees with the scheduler's η arithmetic.
        validate_schedule(&block, &dag, &machine, &scheduled.order, &scheduled.etas)
            .unwrap_or_else(|e| panic!("program {i}: {e}"));

        // NOP padding is minimal.
        let tm = TimingModel::new(&block, &dag, &machine);
        let padded = pad_schedule(&scheduled.order, &scheduled.etas);
        padded.execute(&tm).expect("hazard-free");
        assert!(padded.is_minimally_padded(&tm), "program {i} overpadded");

        // Register allocation and code generation preserve semantics.
        let pressure = max_pressure(&block, &scheduled.order);
        let regs = allocate(&block, &scheduled.order, pressure).expect("enough registers");
        let program = emit(&block, &scheduled.order, &scheduled.etas, &regs).expect("codegen");
        let reference = interpret(&block, &inputs());
        let executed = program.execute(&inputs());
        for (var, &v) in &reference.memory {
            assert_eq!(
                executed.get(var).copied().unwrap_or(0),
                v,
                "program {i}, variable {var}"
            );
        }
    }
}

#[test]
fn optimization_reduces_or_preserves_schedule_quality() {
    // §3.1: optimized code is smaller but *harder* to schedule well —
    // after optimization the total padded cycle count must still not
    // exceed the unoptimized one (fewer instructions, same semantics).
    let machine = presets::paper_simulation();
    for (i, source) in PROGRAMS.iter().enumerate() {
        let unopt = compile_unoptimized(&format!("u{i}"), source).unwrap();
        let opt = compile(&format!("o{i}"), source).unwrap();
        let su = Scheduler::new(machine.clone()).schedule(&unopt);
        let so = Scheduler::new(machine.clone()).schedule(&opt);
        assert!(
            so.total_cycles() <= su.total_cycles(),
            "program {i}: optimized code runs longer ({} vs {})",
            so.total_cycles(),
            su.total_cycles()
        );
    }
}

#[test]
fn scheduling_beats_source_order_on_naive_code() {
    // The motivating claim: naive code generation leaves pipeline bubbles
    // that scheduling removes.
    let machine = presets::deep_pipeline();
    let source = "p = a * b;\nq = c * d;\nr = e * f;\ns = p + q;\nt = s + r;\n";
    let block = compile_unoptimized("naive", source).unwrap();
    let dag = DepDag::build(&block);
    let tm = TimingModel::new(&block, &dag, &machine);

    // Source order cost.
    let source_order: Vec<_> = block.ids().collect();
    let source_times = pipesched::sim::issue_times(&tm, &source_order);
    let source_nops = pipesched::sim::issue::total_nops(&source_times);

    let scheduled = Scheduler::new(machine).schedule(&block);
    assert!(u64::from(scheduled.nops) < source_nops);
}
