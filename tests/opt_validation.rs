//! Translation validation of the front-end optimizer, end to end:
//!
//! * honest optimizer runs — any config, any random program — always
//!   produce a transcript the independent validator accepts;
//! * a single tampered witness (dropped deletion, forged merge target,
//!   corrupted fold constant, bogus identity, witness in the wrong pass)
//!   is rejected with the expected stable `A05xx` code;
//! * the optimized block is interpreter-equivalent to the original on
//!   random inputs (differential check through `optimize_verified`);
//! * every checked-in example program passes the verified pipeline.

use std::collections::HashMap;

use proptest::prelude::*;

use pipesched::analyze::{optimize_verified, validate_transcript, DiagCode};
use pipesched::frontend::ast::{Assign, BinOp, Expr, Program};
use pipesched::frontend::{
    interpret, lower, optimize_with_transcript, parse_labeled_program, OptConfig, PassKind,
    RewriteWitness,
};
use pipesched::ir::{BasicBlock, TupleId};

const VARS: [&str; 5] = ["a", "b", "c", "d", "e"];

fn arb_expr(depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(Expr::Literal),
        (0usize..VARS.len()).prop_map(|i| Expr::Var(VARS[i].to_string())),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            (
                inner.clone(),
                inner,
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div)
                ]
            )
                .prop_map(|(lhs, rhs, op)| Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                }),
        ]
    })
}

fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(
        ((0usize..VARS.len()), arb_expr(3)).prop_map(|(t, value)| Assign {
            line: 0,
            target: VARS[t].to_string(),
            value,
        }),
        1..10,
    )
    .prop_map(|statements| Program { statements })
}

fn configs() -> Vec<OptConfig> {
    let full = OptConfig::default();
    vec![
        full,
        OptConfig { cse: false, ..full },
        OptConfig {
            constant_fold: false,
            ..full
        },
        OptConfig {
            peephole: false,
            ..full
        },
        OptConfig { dce: false, ..full },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Honest runs always validate: whatever the optimizer did, the
    /// transcript justifies it and the verified entry point accepts.
    #[test]
    fn honest_optimizer_runs_always_validate(program in arb_program()) {
        let block = lower("prop", &program);
        for cfg in configs() {
            let (optimized, _, transcript) = optimize_with_transcript(&block, &cfg);
            let report = validate_transcript(&block, &optimized, &transcript);
            prop_assert!(
                !report.has_errors(),
                "honest transcript rejected under {cfg:?}:\n{report}\nblock:\n{block}"
            );
            prop_assert!(optimize_verified(&block, &cfg).is_ok());
        }
    }

    /// Differential check: the verified-optimized block computes the same
    /// final memory as the original on random inputs.
    #[test]
    fn verified_optimization_preserves_semantics(
        program in arb_program(),
        inputs in proptest::collection::vec(-100i64..100, VARS.len()),
    ) {
        let initial: HashMap<String, i64> = VARS
            .iter()
            .zip(&inputs)
            .map(|(k, &v)| (k.to_string(), v))
            .collect();
        let block = lower("prop", &program);
        let reference = interpret(&block, &initial);
        let (optimized, _) = optimize_verified(&block, &OptConfig::default())
            .expect("honest optimization must verify");
        let got = interpret(&optimized, &initial);
        for (var, &v) in &reference.memory {
            let opt_v = got
                .memory
                .get(var)
                .copied()
                .unwrap_or_else(|| initial.get(var).copied().unwrap_or(0));
            prop_assert_eq!(opt_v, v, "`{}` diverged:\n{}\nvs\n{}", var, block, optimized);
        }
    }
}

/// Lower + optimize a source snippet, returning everything the tampering
/// tests need.
fn transcript_of(src: &str) -> (BasicBlock, BasicBlock, pipesched::frontend::OptTranscript) {
    let block = lower(
        "tamper",
        &pipesched::frontend::parse_program(src).expect("test source parses"),
    );
    let (optimized, _, transcript) = optimize_with_transcript(&block, &OptConfig::default());
    (block, optimized, transcript)
}

#[test]
fn dropping_a_dce_witness_is_rejected_as_replay_mismatch() {
    // `y` is stored then overwritten unread, so DCE must delete tuples.
    let (block, optimized, mut transcript) = transcript_of("y = a;\nz = a;\ny = b;\n");
    let pass = transcript
        .passes
        .iter_mut()
        .find(|p| p.pass == PassKind::Dce && !p.rewrites.is_empty())
        .expect("optimizer ran DCE");
    pass.rewrites.pop();
    let report = validate_transcript(&block, &optimized, &transcript);
    assert!(report.has_code(DiagCode::ReplayMismatch), "{report}");
}

#[test]
fn forging_a_cse_merge_target_is_rejected() {
    let (block, optimized, mut transcript) = transcript_of("x = a + b;\ny = a + b;\nz = x - y;\n");
    let mut forged = false;
    for pass in &mut transcript.passes {
        for w in &mut pass.rewrites {
            if let RewriteWitness::Merge { into, .. } = w {
                // Tuple 1 is the Load of `a` — not congruent to the Add.
                *into = TupleId(0);
                forged = true;
            }
        }
    }
    assert!(forged, "optimizer must have merged the duplicate add");
    let report = validate_transcript(&block, &optimized, &transcript);
    assert!(report.has_code(DiagCode::CseWitnessInvalid), "{report}");
}

#[test]
fn corrupting_a_fold_constant_is_rejected() {
    let (block, optimized, mut transcript) = transcript_of("x = 6 * 7;\n");
    let mut corrupted = false;
    for pass in &mut transcript.passes {
        for w in &mut pass.rewrites {
            if let RewriteWitness::Fold { value, .. } = w {
                *value += 1;
                corrupted = true;
            }
        }
    }
    assert!(corrupted, "optimizer must have folded 6 * 7");
    let report = validate_transcript(&block, &optimized, &transcript);
    assert!(report.has_code(DiagCode::FoldWitnessInvalid), "{report}");
}

#[test]
fn claiming_a_live_tuple_dead_is_rejected() {
    let block = lower(
        "live",
        &pipesched::frontend::parse_program("r = a + b;\n").unwrap(),
    );
    let transcript = pipesched::frontend::OptTranscript {
        passes: vec![pipesched::frontend::PassWitness {
            pass: PassKind::Dce,
            rewrites: vec![RewriteWitness::Delete { tuple: TupleId(2) }],
        }],
    };
    let report = validate_transcript(&block, &block, &transcript);
    assert!(report.has_code(DiagCode::DceWitnessInvalid), "{report}");
}

#[test]
fn bogus_peephole_identity_is_rejected() {
    let block = lower(
        "peep",
        &pipesched::frontend::parse_program("r = a + b;\n").unwrap(),
    );
    let transcript = pipesched::frontend::OptTranscript {
        passes: vec![pipesched::frontend::PassWitness {
            pass: PassKind::Peephole,
            rewrites: vec![RewriteWitness::Identity {
                tuple: TupleId(2),
                target: TupleId(0),
                rule: pipesched::frontend::PeepholeRule::AddZero,
            }],
        }],
    };
    let report = validate_transcript(&block, &block, &transcript);
    assert!(
        report.has_code(DiagCode::PeepholeWitnessInvalid),
        "{report}"
    );
}

#[test]
fn witness_in_the_wrong_pass_is_rejected_as_malformed() {
    let block = lower(
        "wrong",
        &pipesched::frontend::parse_program("y = a;\nz = a;\ny = b;\n").unwrap(),
    );
    // A deletion claimed by the CSE pass: structurally impossible.
    let transcript = pipesched::frontend::OptTranscript {
        passes: vec![pipesched::frontend::PassWitness {
            pass: PassKind::Cse,
            rewrites: vec![RewriteWitness::Delete { tuple: TupleId(0) }],
        }],
    };
    let report = validate_transcript(&block, &block, &transcript);
    assert!(report.has_code(DiagCode::WitnessMalformed), "{report}");
}

/// Every checked-in example program must pass the verified pipeline:
/// the optimizer's transcript validates on each labeled region.
#[test]
fn all_example_programs_optimize_verified() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/data");
    let mut checked = 0usize;
    for entry in std::fs::read_dir(dir).expect("examples/data exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("src") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("example is readable");
        for (name, program) in parse_labeled_program(&text).expect("example parses") {
            let block = lower(&name, &program);
            let result = optimize_verified(&block, &OptConfig::default());
            assert!(
                result.is_ok(),
                "{}:{name} rejected:\n{}",
                path.display(),
                result.unwrap_err()
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "no example programs found under {dir}");
}
