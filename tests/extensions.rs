//! Integration tests for the beyond-the-paper features working together:
//! windowed scheduling, block sequences, pipeline selection, explicit
//! encodings, and the Gantt view — all cross-validated against the
//! independent simulator.

use pipesched::core::{schedule_sequence, search, windowed_schedule, SchedContext, SearchConfig};
use pipesched::frontend::compile_sequence;
use pipesched::ir::{analysis::verify_schedule, DepDag};
use pipesched::machine::presets;
use pipesched::sim::{
    conservatism, lookahead_penalty, simulate_interlock, simulate_sequence, validate_schedule,
    TimingModel,
};
use pipesched::synth::{CorpusSpec, FrequencyTable, GeneratorConfig};

#[test]
fn windowed_schedules_validate_against_the_simulator() {
    let machine = presets::paper_simulation();
    let corpus = CorpusSpec::paper_default().with_runs(12);
    for k in 0..12 {
        let block = corpus.block(k);
        let dag = DepDag::build(&block);
        let ctx = SchedContext::new(&block, &dag, &machine);
        let w = windowed_schedule(&ctx, 10, 50_000);
        validate_schedule(&block, &dag, &machine, &w.order, &w.etas)
            .unwrap_or_else(|e| panic!("block {k}: {e}"));
        let full = search(&ctx, &SearchConfig::with_lambda(u64::MAX));
        assert!(w.nops >= full.nops, "block {k}: windowed beat optimal");
        assert!(w.nops <= w.initial_nops, "block {k}: worse than list");
    }
}

#[test]
fn labeled_source_schedules_as_a_sequence() {
    let source = "\
a = x * y;
stage2:
b = a * a;
stage3:
r = b - a;
";
    let blocks = compile_sequence(source).expect("compiles");
    assert_eq!(blocks.len(), 3);
    assert_eq!(blocks[0].name, "entry");
    assert_eq!(blocks[1].name, "stage2");

    let machine = presets::recovery_unit();
    let seq = schedule_sequence(&blocks, &machine, &SearchConfig::default());
    assert_eq!(seq.regions.len(), 3);
    // Each region is a legal schedule of its block.
    for (block, region) in blocks.iter().zip(&seq.regions) {
        let dag = DepDag::build(block);
        verify_schedule(block, &dag, &region.order).unwrap();
        assert_eq!(region.etas.iter().sum::<u32>(), region.nops);
    }
    assert_eq!(
        seq.total_nops,
        seq.regions.iter().map(|r| r.nops).sum::<u32>()
    );
}

#[test]
fn selection_schedules_validate_under_their_assignment() {
    // With pipeline selection the η values reflect the chosen units; the
    // default-assignment simulator would disagree, so check internal
    // consistency instead: etas sum to nops and the order is legal.
    let machine = presets::table2_example();
    let mut cfg = GeneratorConfig::new(10, 5, 2, 77);
    cfg.frequencies = FrequencyTable::default_paper();
    let block = pipesched::synth::generate_block(&cfg);
    let dag = DepDag::build(&block);
    let ctx = SchedContext::new(&block, &dag, &machine);
    let out = search(
        &ctx,
        &SearchConfig {
            pipeline_selection: true,
            ..SearchConfig::default()
        },
    );
    verify_schedule(&block, &dag, &out.order).unwrap();
    assert_eq!(out.etas.iter().sum::<u32>(), out.nops);
    let fixed = search(&ctx, &SearchConfig::default());
    assert!(out.nops <= fixed.nops);
}

#[test]
fn encodings_are_safe_on_scheduled_corpus_blocks() {
    let machine = presets::deep_pipeline();
    let corpus = CorpusSpec::paper_default().with_runs(8);
    for k in 0..8 {
        let block = corpus.block(k);
        let dag = DepDag::build(&block);
        let ctx = SchedContext::new(&block, &dag, &machine);
        let out = search(&ctx, &SearchConfig::default());
        let tm = TimingModel::new(&block, &dag, &machine);

        // The scheduler's NOP count equals the simulator's stall count.
        let precise = simulate_interlock(&tm, &out.order);
        assert_eq!(precise.total_stalls, u64::from(out.nops), "block {k}");

        // All encodings are hazard-free (asserted internally) and the
        // conservative ones never beat precise interlocking.
        assert_eq!(lookahead_penalty(&tm, &out.order, 32), 0, "block {k}");
        let _ = conservatism(&tm, &out.order);
    }
}

#[test]
fn gantt_is_consistent_with_the_schedule() {
    let machine = presets::paper_simulation();
    let block = CorpusSpec::paper_default().block(3);
    let dag = DepDag::build(&block);
    let ctx = SchedContext::new(&block, &dag, &machine);
    let out = search(&ctx, &SearchConfig::default());
    let tm = TimingModel::new(&block, &dag, &machine);
    let labels: Vec<String> = machine
        .pipelines()
        .iter()
        .map(|p| p.function.clone())
        .collect();
    let gantt = pipesched::sim::chart(&tm, &out.order, &labels);
    assert_eq!(
        gantt.cycles as u64,
        block.len() as u64 + u64::from(out.nops)
    );
    // Every instruction appears exactly once in the issue row.
    let issued = gantt.issue_row.iter().filter(|c| c.is_some()).count();
    assert_eq!(issued, block.len());
}

/// The sequence scheduler's per-region NOP accounting must agree with the
/// independent global-clock sequence simulator, block for block.
#[test]
fn sequence_scheduler_agrees_with_sequence_simulator() {
    let machine = presets::recovery_unit();
    let corpus = CorpusSpec::paper_default().with_runs(9);
    // Three sequences of three corpus blocks each.
    for group in 0..3 {
        let blocks: Vec<_> = (0..3).map(|i| corpus.block(group * 3 + i)).collect();
        let seq = schedule_sequence(&blocks, &machine, &SearchConfig::default());

        let dags: Vec<_> = blocks.iter().map(DepDag::build).collect();
        let tms: Vec<_> = blocks
            .iter()
            .zip(&dags)
            .map(|(b, d)| TimingModel::new(b, d, &machine))
            .collect();
        let pairs: Vec<(&TimingModel, &[pipesched::ir::TupleId])> = tms
            .iter()
            .zip(&seq.regions)
            .map(|(tm, r)| (tm, r.order.as_slice()))
            .collect();
        let report = simulate_sequence(&pairs);

        for (i, region) in seq.regions.iter().enumerate() {
            assert_eq!(
                report.stalls_per_block[i],
                u64::from(region.nops),
                "group {group}, block {i}: scheduler and simulator disagree"
            );
        }
        let total_instructions: usize = blocks.iter().map(|b| b.len()).sum();
        assert_eq!(
            report.total_cycles,
            total_instructions as u64 + u64::from(seq.total_nops)
        );
    }
}
