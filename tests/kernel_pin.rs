//! Pin the serial search wrappers bit-identical across refactors.
//!
//! The three public entry points (`search`, `search_with_proof`,
//! `search_with_profile`) were unified into one policy-generic kernel;
//! these tests hold their observable outputs — schedule, statistics, and
//! certificate digest — fixed to the values the pre-refactor copies
//! produced on the checked-in example corpus, so any behavioural drift in
//! the kernel shows up as a failed pin, not a silent change.
//!
//! Regenerate the table by running with `PIPESCHED_PIN_PRINT=1` and
//! `--nocapture` — but only after convincing yourself the change in
//! behaviour is intended.

use pipesched::core::proof::ProofLogger;
use pipesched::core::{
    search, search_with_profile, search_with_proof, SchedContext, SearchConfig, SearchProfile,
};
use pipesched::frontend::{lower, parse_labeled_program};
use pipesched::ir::{BasicBlock, DepDag};
use pipesched::machine::{presets, Machine};

/// One pinned row: wrapper outputs for (block, machine) under the default
/// `SearchConfig`.
struct Pin {
    block: &'static str,
    machine: &'static str,
    initial_nops: u32,
    nops: u32,
    nodes_visited: u64,
    omega_calls: u64,
    pruned_bound: u64,
    digest: u64,
}

/// Golden values captured from the pre-refactor wrappers (PR 7 base).
const PINS: &[Pin] = &[
    Pin {
        block: "dotproduct",
        machine: "paper-simulation",
        initial_nops: 8,
        nops: 8,
        nodes_visited: 502,
        omega_calls: 1105,
        pruned_bound: 604,
        digest: 0xe1f8c32a79b980e5,
    },
    Pin {
        block: "dotproduct",
        machine: "paper-table2",
        initial_nops: 12,
        nops: 12,
        nodes_visited: 1738,
        omega_calls: 3017,
        pruned_bound: 1280,
        digest: 0x2a25354a87065b03,
    },
    Pin {
        block: "dotproduct",
        machine: "deep-pipeline",
        initial_nops: 20,
        nops: 20,
        nodes_visited: 270,
        omega_calls: 629,
        pruned_bound: 360,
        digest: 0x22f04d3b00ff84a9,
    },
    Pin {
        block: "dotproduct",
        machine: "functional-units",
        initial_nops: 21,
        nops: 18,
        nodes_visited: 793,
        omega_calls: 1449,
        pruned_bound: 657,
        digest: 0xc4890562e5e908b0,
    },
    Pin {
        block: "dotproduct",
        machine: "section2-example",
        initial_nops: 5,
        nops: 4,
        nodes_visited: 566,
        omega_calls: 1029,
        pruned_bound: 464,
        digest: 0xe5a771cfa1324f23,
    },
    Pin {
        block: "dotproduct",
        machine: "unpipelined",
        initial_nops: 0,
        nops: 0,
        nodes_visited: 0,
        omega_calls: 0,
        pruned_bound: 0,
        digest: 0x43f5f36b0f16947b,
    },
    Pin {
        block: "stages:entry",
        machine: "paper-simulation",
        initial_nops: 4,
        nops: 4,
        nodes_visited: 1,
        omega_calls: 2,
        pruned_bound: 2,
        digest: 0xd910304b18472a89,
    },
    Pin {
        block: "stages:square",
        machine: "paper-simulation",
        initial_nops: 4,
        nops: 4,
        nodes_visited: 0,
        omega_calls: 0,
        pruned_bound: 0,
        digest: 0x18a9aacd0c1d2457,
    },
    Pin {
        block: "stages:finish",
        machine: "paper-simulation",
        initial_nops: 3,
        nops: 3,
        nodes_visited: 1,
        omega_calls: 2,
        pruned_bound: 2,
        digest: 0x8ca8f99aef320ec7,
    },
];

fn load_machine(name: &str) -> Machine {
    match name {
        "paper-simulation" => presets::paper_simulation(),
        "paper-table2" => presets::table2_example(),
        "deep-pipeline" => presets::deep_pipeline(),
        "functional-units" => presets::functional_units(),
        "section2-example" => presets::section2_example(),
        "unpipelined" => presets::unpipelined(),
        other => panic!("unknown pinned machine {other}"),
    }
}

/// The example corpus, exactly as the CLI compiles it (optimizer on, under
/// translation validation).
fn corpus() -> Vec<(String, BasicBlock)> {
    let mut blocks = Vec::new();
    for file in ["dotproduct", "stages"] {
        let text = std::fs::read_to_string(format!("examples/data/{file}.src"))
            .expect("read example source");
        let regions = parse_labeled_program(&text).expect("parse");
        let multi = regions.len() > 1;
        for (name, program) in regions {
            let lowered = lower(&name, &program);
            let (optimized, _) =
                pipesched::analyze::optimize_verified(&lowered, &Default::default())
                    .expect("optimizer validates");
            let label = if multi {
                format!("{file}:{name}")
            } else {
                file.to_string()
            };
            blocks.push((label, optimized));
        }
    }
    blocks
}

fn find_block(blocks: &[(String, BasicBlock)], label: &str) -> BasicBlock {
    blocks
        .iter()
        .find(|(name, _)| name == label)
        .unwrap_or_else(|| panic!("pinned block {label} not in corpus"))
        .1
        .clone()
}

#[test]
fn wrappers_match_pre_refactor_outputs_on_example_corpus() {
    let blocks = corpus();
    let print = std::env::var_os("PIPESCHED_PIN_PRINT").is_some();
    for pin in PINS {
        let block = find_block(&blocks, pin.block);
        let machine = load_machine(pin.machine);
        let dag = DepDag::build(&block);
        let ctx = SchedContext::new(&block, &dag, &machine);
        let cfg = SearchConfig::default();

        let plain = search(&ctx, &cfg);
        let (proved, proof) = search_with_proof(&ctx, &cfg, ProofLogger::in_memory());
        let mut profile = SearchProfile::new();
        let profiled = search_with_profile(&ctx, &cfg, &mut profile);

        if print {
            println!(
                "Pin {{ block: {:?}, machine: {:?}, initial_nops: {}, nops: {}, \
                 nodes_visited: {}, omega_calls: {}, pruned_bound: {}, digest: {:#018x} }},",
                pin.block,
                pin.machine,
                plain.initial_nops,
                plain.nops,
                plain.stats.nodes_visited,
                plain.stats.omega_calls,
                plain.stats.pruned_bound,
                proof.digest,
            );
            continue;
        }

        let tag = format!("{} on {}", pin.block, pin.machine);
        // The three wrappers agree with each other bit for bit.
        assert_eq!(proved.order, plain.order, "{tag}: proof order");
        assert_eq!(proved.stats, plain.stats, "{tag}: proof stats");
        assert_eq!(profiled.order, plain.order, "{tag}: profile order");
        assert_eq!(profiled.stats, plain.stats, "{tag}: profile stats");
        assert_eq!(profiled.etas, plain.etas, "{tag}: profile etas");

        // And with the pre-refactor kernel.
        assert_eq!(plain.initial_nops, pin.initial_nops, "{tag}: initial μ");
        assert_eq!(plain.nops, pin.nops, "{tag}: final μ");
        assert_eq!(plain.stats.nodes_visited, pin.nodes_visited, "{tag}: nodes");
        assert_eq!(plain.stats.omega_calls, pin.omega_calls, "{tag}: Ω calls");
        assert_eq!(
            plain.stats.pruned_bound, pin.pruned_bound,
            "{tag}: bound prunes"
        );
        assert_eq!(proof.digest, pin.digest, "{tag}: certificate digest");
        assert!(plain.optimal, "{tag}: pinned runs all complete");

        // The structural search identity holds on every pinned path.
        if !plain.stats.proved_by_bound && plain.stats.nodes_visited > 0 {
            assert_eq!(
                plain.stats.nodes_visited,
                1 + plain.stats.omega_calls - plain.stats.pruned_bound,
                "{tag}: 1 + Ω − bound-pruned == nodes"
            );
        }

        // Per-depth profile totals decompose the same statistics.
        assert_eq!(
            profile.total_nodes(),
            plain.stats.nodes_visited,
            "{tag}: profile node total"
        );
    }
}
