//! Trace rendering: span trees, NDJSON dumps, and folded flamegraph stacks.

use pipesched_json::{json_object, Json};

use crate::{EventKind, Trace, NO_PARENT};

/// One reconstructed span: its timing, nested children, and point events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Span name.
    pub name: &'static str,
    /// Span id within the trace.
    pub span: u32,
    /// Argument recorded at enter (0 when none was given).
    pub arg: i64,
    /// Enter timestamp, ns since the trace epoch.
    pub start_ns: u64,
    /// Exit timestamp, ns since the trace epoch.
    pub end_ns: u64,
    /// Nested child spans in open order.
    pub children: Vec<Node>,
    /// Points recorded directly on this span: (name, arg, value).
    pub points: Vec<(&'static str, i64, i64)>,
}

impl Node {
    /// Inclusive wall time of the span, nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Inclusive time minus the inclusive time of the direct children —
    /// the span's own share, the quantity folded stacks attribute to it.
    pub fn self_ns(&self) -> u64 {
        let children: u64 = self.children.iter().map(Node::duration_ns).sum();
        self.duration_ns().saturating_sub(children)
    }
}

/// Rebuild the span forest of a trace by replaying its event list. The
/// recorder guarantees matched enter/exit, so the replay stack empties by
/// the final event; stray events from force-exits are tolerated anyway.
pub fn tree(trace: &Trace) -> Vec<Node> {
    let mut roots: Vec<Node> = Vec::new();
    let mut stack: Vec<Node> = Vec::new();
    for ev in &trace.events {
        match ev.kind {
            EventKind::Enter => stack.push(Node {
                name: ev.name,
                span: ev.span,
                arg: ev.arg,
                start_ns: ev.t_ns,
                end_ns: ev.t_ns,
                children: Vec::new(),
                points: Vec::new(),
            }),
            EventKind::Exit => {
                let Some(pos) = stack.iter().rposition(|n| n.span == ev.span) else {
                    continue;
                };
                while stack.len() > pos {
                    let mut done = stack.pop().expect("pos < len");
                    done.end_ns = ev.t_ns;
                    attach(&mut stack, &mut roots, done);
                }
            }
            EventKind::Point => {
                if let Some(n) = stack.iter_mut().rev().find(|n| n.span == ev.span) {
                    n.points.push((ev.name, ev.arg, ev.value));
                }
            }
        }
    }
    while let Some(done) = stack.pop() {
        attach(&mut stack, &mut roots, done);
    }
    roots
}

fn attach(stack: &mut [Node], roots: &mut Vec<Node>, node: Node) {
    match stack.last_mut() {
        Some(parent) => parent.children.push(node),
        None => roots.push(node),
    }
}

/// Render a trace as an indented span tree with µs timings, the default
/// output of `pipesched trace`.
pub fn render_text(trace: &Trace) -> String {
    let mut out = format!(
        "trace {} \"{}\": {} events, {} dropped\n",
        trace.id,
        trace.label,
        trace.events.len(),
        trace.dropped
    );
    for root in tree(trace) {
        render_node(&root, 0, &mut out);
    }
    out
}

fn render_node(node: &Node, depth: usize, out: &mut String) {
    let label = if node.arg != 0 {
        format!("{}({})", node.name, node.arg)
    } else {
        node.name.to_string()
    };
    out.push_str(&format!(
        "{:indent$}{label:<width$} {:>10.1} µs\n",
        "",
        node.duration_ns() as f64 / 1e3,
        indent = depth * 2,
        width = 32usize.saturating_sub(depth * 2),
    ));
    for &(name, arg, value) in &node.points {
        out.push_str(&format!(
            "{:indent$}· {name}[{arg}] = {value}\n",
            "",
            indent = depth * 2 + 2,
        ));
    }
    for child in &node.children {
        render_node(child, depth + 1, out);
    }
}

/// Serialize a trace as NDJSON: one header line (`trace`, `label`,
/// `events`, `dropped`) followed by one line per event. This is the
/// payload of `GET /trace/<id>` and `pipesched trace --ndjson`.
pub fn to_ndjson(trace: &Trace) -> String {
    let mut out = json_object![
        ("trace", trace.id as i64),
        ("label", trace.label.as_str()),
        ("events", trace.events.len() as i64),
        ("dropped", trace.dropped as i64),
    ]
    .to_compact();
    out.push('\n');
    for ev in &trace.events {
        let kind = match ev.kind {
            EventKind::Enter => "enter",
            EventKind::Exit => "exit",
            EventKind::Point => "point",
        };
        let mut doc = json_object![("k", kind), ("name", ev.name), ("t_ns", ev.t_ns as i64)];
        if let Json::Object(pairs) = &mut doc {
            match ev.kind {
                EventKind::Enter | EventKind::Exit => {
                    pairs.push(("span".into(), Json::Int(i64::from(ev.span))));
                    if ev.parent != NO_PARENT {
                        pairs.push(("parent".into(), Json::Int(i64::from(ev.parent))));
                    }
                    if ev.kind == EventKind::Enter && ev.arg != 0 {
                        pairs.push(("arg".into(), Json::Int(ev.arg)));
                    }
                }
                EventKind::Point => {
                    if ev.span != NO_PARENT {
                        pairs.push(("span".into(), Json::Int(i64::from(ev.span))));
                    }
                    pairs.push(("arg".into(), Json::Int(ev.arg)));
                    pairs.push(("value".into(), Json::Int(ev.value)));
                }
            }
        }
        out.push_str(&doc.to_compact());
        out.push('\n');
    }
    out
}

/// Collapse a trace into folded flamegraph stacks: semicolon-joined span
/// paths mapped to *self* time in microseconds, mergeable by standard
/// flamegraph tooling. Paths appear in first-visit order.
pub fn folded(trace: &Trace) -> Vec<(String, u64)> {
    fn walk(node: &Node, prefix: &str, out: &mut Vec<(String, u64)>) {
        let path = if prefix.is_empty() {
            node.name.to_string()
        } else {
            format!("{prefix};{}", node.name)
        };
        let self_us = node.self_ns() / 1_000;
        match out.iter_mut().find(|(p, _)| *p == path) {
            Some(entry) => entry.1 += self_us,
            None => out.push((path.clone(), self_us)),
        }
        for child in &node.children {
            walk(child, &path, out);
        }
    }
    let mut out = Vec::new();
    for root in tree(trace) {
        walk(&root, "", &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, EventKind};

    /// Hand-built trace: root(0..1000) { a(100..400) { b(200..300) },
    /// a(500..900) } with a point on the first `a`.
    fn sample() -> Trace {
        let ev = |kind, name, span, parent, t_ns, arg, value| Event {
            kind,
            name,
            span,
            parent,
            t_ns,
            arg,
            value,
        };
        Trace {
            id: 7,
            label: "sample".into(),
            events: vec![
                ev(EventKind::Enter, "root", 0, NO_PARENT, 0, 0, 0),
                ev(EventKind::Enter, "a", 1, 0, 100, 3, 0),
                ev(EventKind::Point, "n", 1, NO_PARENT, 150, 2, 17),
                ev(EventKind::Enter, "b", 2, 1, 200, 0, 0),
                ev(EventKind::Exit, "b", 2, 1, 300, 0, 0),
                ev(EventKind::Exit, "a", 1, 0, 400, 0, 0),
                ev(EventKind::Enter, "a", 3, 0, 500, 0, 0),
                ev(EventKind::Exit, "a", 3, 0, 900, 0, 0),
                ev(EventKind::Exit, "root", 0, NO_PARENT, 1000, 0, 0),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn tree_rebuilds_nesting_and_points() {
        let roots = tree(&sample());
        assert_eq!(roots.len(), 1);
        let root = &roots[0];
        assert_eq!(root.name, "root");
        assert_eq!(root.duration_ns(), 1000);
        assert_eq!(root.children.len(), 2);
        let a = &root.children[0];
        assert_eq!((a.name, a.arg, a.duration_ns()), ("a", 3, 300));
        assert_eq!(a.points, vec![("n", 2, 17)]);
        assert_eq!(a.children[0].name, "b");
        // root self = 1000 - (300 + 400); a self = 300 - 100
        assert_eq!(root.self_ns(), 300);
        assert_eq!(a.self_ns(), 200);
    }

    #[test]
    fn folded_merges_equal_paths_on_self_time() {
        // Times are ns; folded reports µs, so scale the sample up.
        let mut t = sample();
        for ev in &mut t.events {
            ev.t_ns *= 1000;
        }
        let stacks = folded(&t);
        assert_eq!(
            stacks,
            vec![
                ("root".to_string(), 300),
                ("root;a".to_string(), 200 + 400), // both `a` spans merge
                ("root;a;b".to_string(), 100),
            ]
        );
    }

    #[test]
    fn text_render_shows_spans_and_points() {
        let text = render_text(&sample());
        assert!(text.starts_with("trace 7 \"sample\": 9 events, 0 dropped"));
        assert!(text.contains("root"));
        assert!(text.contains("a(3)"));
        assert!(text.contains("· n[2] = 17"));
    }

    #[test]
    fn ndjson_round_trips_through_the_json_parser() {
        let dump = to_ndjson(&sample());
        let mut lines = dump.lines();
        let header = pipesched_json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(header.get("trace").and_then(Json::as_i64), Some(7));
        assert_eq!(header.get("events").and_then(Json::as_i64), Some(9));
        let mut points = 0;
        for line in lines {
            let doc = pipesched_json::parse(line).unwrap();
            let kind = doc.get("k").and_then(Json::as_str).unwrap();
            assert!(["enter", "exit", "point"].contains(&kind));
            if kind == "point" {
                points += 1;
                assert_eq!(doc.get("value").and_then(Json::as_i64), Some(17));
            }
        }
        assert_eq!(points, 1);
    }

    #[test]
    fn unmatched_events_from_force_exits_do_not_derail_the_tree() {
        let mut t = sample();
        // An exit for a span never entered, then a trailing unclosed span.
        t.events.push(Event {
            kind: EventKind::Exit,
            name: "ghost",
            span: 99,
            parent: NO_PARENT,
            t_ns: 1100,
            arg: 0,
            value: 0,
        });
        t.events.push(Event {
            kind: EventKind::Enter,
            name: "open",
            span: 100,
            parent: NO_PARENT,
            t_ns: 1200,
            arg: 0,
            value: 0,
        });
        let roots = tree(&t);
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[1].name, "open");
    }
}
