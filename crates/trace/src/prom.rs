//! Minimal Prometheus text-format (version 0.0.4) writer and validator.
//!
//! The service's `/metrics` endpoint builds its exposition through
//! [`PromWriter`]; [`validate`] is the independent parser tests and the CI
//! smoke use to assert the exposition stays machine-readable.

/// Incremental Prometheus text-format writer.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append `# HELP` / `# TYPE` headers for a metric family.
    pub fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str(&format!("# HELP {name} {help}\n"));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    /// Append one unlabeled sample.
    pub fn sample(&mut self, name: &str, value: f64) {
        self.out.push_str(&format!("{name} {}\n", fmt_value(value)));
    }

    /// Append one sample with `{key="value",...}` labels.
    pub fn sample_labeled(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let body: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        self.out.push_str(&format!(
            "{name}{{{}}} {}\n",
            body.join(","),
            fmt_value(value)
        ));
    }

    /// A counter family with a single unlabeled sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.sample(name, value as f64);
    }

    /// A gauge family with a single unlabeled sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.sample(name, value);
    }

    /// Finish and return the exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Label values escape `\`, `"`, and newlines.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Integers render without a fraction; everything else as plain decimal.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Check that `text` parses as Prometheus exposition: every line is blank,
/// a comment, or `name[{labels}] value` with a well-formed metric name,
/// label syntax, and numeric value. Returns the first offence.
pub fn validate(text: &str) -> Result<(), String> {
    for (lineno, line) in text.lines().enumerate() {
        let at = |msg: &str| format!("line {}: {msg}: {line}", lineno + 1);
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let name_end = line
            .find(|c: char| c == '{' || c.is_whitespace())
            .ok_or_else(|| at("sample has no value"))?;
        let name = &line[..name_end];
        if !is_metric_name(name) {
            return Err(at("bad metric name"));
        }
        let rest = &line[name_end..];
        let rest = if let Some(body) = rest.strip_prefix('{') {
            let close = body.find('}').ok_or_else(|| at("unclosed label set"))?;
            validate_labels(&body[..close]).map_err(|m| at(&m))?;
            &body[close + 1..]
        } else {
            rest
        };
        let value = rest.trim();
        let numeric = value.parse::<f64>().is_ok() || ["+Inf", "-Inf", "NaN"].contains(&value);
        if !numeric {
            return Err(at("unparseable sample value"));
        }
    }
    Ok(())
}

fn is_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn validate_labels(body: &str) -> Result<(), String> {
    if body.is_empty() {
        return Ok(());
    }
    for pair in body.split(',') {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("label without `=`: {pair}"))?;
        if !is_metric_name(key) {
            return Err(format!("bad label name: {key}"));
        }
        if !(value.len() >= 2 && value.starts_with('"') && value.ends_with('"')) {
            return Err(format!("unquoted label value: {value}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_output_validates() {
        let mut w = PromWriter::new();
        w.counter("pipesched_requests_total", "Requests received.", 42);
        w.gauge("pipesched_cache_entries", "Cached schedules.", 17.0);
        w.header(
            "pipesched_tier_answers_total",
            "Answers by tier.",
            "counter",
        );
        w.sample_labeled("pipesched_tier_answers_total", &[("tier", "bnb")], 3.0);
        w.sample_labeled(
            "pipesched_request_latency_micros",
            &[("quantile", "0.99")],
            812.5,
        );
        let text = w.finish();
        assert!(text.contains("# TYPE pipesched_requests_total counter"));
        assert!(text.contains("pipesched_requests_total 42\n"));
        assert!(text.contains("pipesched_tier_answers_total{tier=\"bnb\"} 3\n"));
        assert!(text.contains("{quantile=\"0.99\"} 812.5\n"));
        validate(&text).expect("writer output must validate");
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate("ok_metric 1\n").is_ok());
        assert!(validate("9starts_with_digit 1\n").is_err());
        assert!(validate("no_value\n").is_err());
        assert!(validate("bad_value one\n").is_err());
        assert!(validate("unclosed{label=\"x\" 1\n").is_err());
        assert!(validate("unquoted{label=x} 1\n").is_err());
        assert!(validate("# any comment line\nm{a=\"b\",c=\"d\"} +Inf\n").is_ok());
    }

    #[test]
    fn label_values_escape_quotes_and_backslashes() {
        let mut w = PromWriter::new();
        w.sample_labeled("m", &[("k", "a\"b\\c\nd")], 1.0);
        let text = w.finish();
        assert_eq!(text, "m{k=\"a\\\"b\\\\c\\nd\"} 1\n");
        validate(&text).expect("escaped output must validate");
    }
}
