//! First-party structured tracing for the pipesched stack.
//!
//! The workspace builds offline, so this crate vendors the small slice of
//! observability machinery the service and CLI need instead of pulling in
//! `tracing`: spans and point events with nanosecond timestamps, parent
//! links, and per-request trace ids, buffered in a thread-local ring so the
//! hot path takes no locks.
//!
//! The design follows the proof logger's `Option`-gated hook (PR 3): when
//! tracing is globally disabled — the default — every entry point is a
//! single relaxed atomic load and an early return, keeping the disabled
//! path within the measured <2% budget (`repro observe` gates this).
//!
//! ```
//! pipesched_trace::set_enabled(true);
//! let id = pipesched_trace::begin("request");
//! {
//!     let _outer = pipesched_trace::span("parse");
//!     pipesched_trace::point("bytes", 117);
//! }
//! let trace = pipesched_trace::end().unwrap();
//! assert_eq!(trace.id, id);
//! assert_eq!(trace.events.len(), 3); // enter, point, exit
//! pipesched_trace::set_enabled(false);
//! ```
//!
//! A trace is recorded by exactly one thread; completed traces land in the
//! process-wide [`store`] where `GET /trace/<id>` and the CLI read them
//! back. [`render`] reconstructs span trees, NDJSON dumps, and folded
//! flamegraph stacks; [`prom`] writes Prometheus text exposition.

#![warn(missing_docs)]

pub mod flight;
pub mod prom;
pub mod render;
pub mod store;

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Sentinel parent id carried by root spans and span-less points.
pub const NO_PARENT: u32 = u32::MAX;

/// Hard cap on buffered enter/point events per trace. Exits are always
/// recorded so enter/exit stay matched; a full buffer drops new spans and
/// points and counts them in [`Trace::dropped`] instead of reallocating
/// without bound.
pub const MAX_EVENTS: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process trace epoch (anchored on first use).
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Globally switch tracing on or off. Off is the default; when off,
/// [`begin`] / [`span`] / [`point`] are single-atomic-load no-ops.
pub fn set_enabled(on: bool) {
    // relaxed-ok: a pure on/off toggle with no dependent data — readers
    // act only on the flag value itself, so no ordering is needed.
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether tracing is globally enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether the current thread is actively recording: tracing is enabled
/// *and* a trace opened by [`begin`] is still collecting on this thread.
/// Instrumented code uses this to decide whether computing expensive
/// trace-only values (per-depth search profiles) is worth it.
pub fn active() -> bool {
    enabled() && ACTIVE.with(|a| a.borrow().is_some())
}

/// What a buffered [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Enter,
    /// A span closed.
    Exit,
    /// An instantaneous measurement inside the innermost open span.
    Point,
}

/// One buffered trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Event class.
    pub kind: EventKind,
    /// Static name; `&'static str` keeps recording allocation-free.
    pub name: &'static str,
    /// Span id: its own id for enter/exit, the enclosing span for points.
    pub span: u32,
    /// Parent span id, or [`NO_PARENT`] for roots and points.
    pub parent: u32,
    /// Nanoseconds since the process trace epoch.
    pub t_ns: u64,
    /// Caller-supplied argument ([`span_with`] / [`point2`]), else 0.
    pub arg: i64,
    /// Point value; 0 on enter/exit events.
    pub value: i64,
}

/// A completed trace: the events one [`begin`]..[`end`] window recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Process-unique trace id, counting from 1 (0 means "not traced").
    pub id: u64,
    /// Caller-supplied label, e.g. `"request"`.
    pub label: String,
    /// Buffered events in record order; timestamps are nondecreasing.
    pub events: Vec<Event>,
    /// Enter/point events discarded after the buffer filled.
    pub dropped: u64,
}

struct ActiveTrace {
    id: u64,
    label: String,
    events: Vec<Event>,
    next_span: u32,
    /// Open spans, innermost last: (span id, name, parent id).
    stack: Vec<(u32, &'static str, u32)>,
    dropped: u64,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Open a new trace on this thread and return its id (0 when tracing is
/// disabled). Any trace already open on the thread is discarded — the
/// serve path opens one trace per request, so a leftover trace means the
/// previous request errored out before [`end`].
pub fn begin(label: &str) -> u64 {
    if !enabled() {
        return 0;
    }
    let id = NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed);
    ACTIVE.with(|a| {
        *a.borrow_mut() = Some(ActiveTrace {
            id,
            label: label.to_string(),
            events: Vec::with_capacity(64),
            next_span: 0,
            stack: Vec::new(),
            dropped: 0,
        });
    });
    id
}

/// Close this thread's trace, publish it to the [`store`], and return it.
/// Spans still open (guards alive across the `end` call) are force-exited
/// so the recorded trace always has matched enter/exit events.
pub fn end() -> Option<Trace> {
    let mut active = ACTIVE.with(|a| a.borrow_mut().take())?;
    let t = now_ns();
    while let Some((span, name, parent)) = active.stack.pop() {
        active.events.push(Event {
            kind: EventKind::Exit,
            name,
            span,
            parent,
            t_ns: t,
            arg: 0,
            value: 0,
        });
    }
    let trace = Trace {
        id: active.id,
        label: active.label,
        events: active.events,
        dropped: active.dropped,
    };
    store::put(trace.clone());
    Some(trace)
}

/// RAII handle for an open span; the span closes when the guard drops.
/// `!Send` by construction — a span's enter and exit must land in the same
/// thread-local buffer.
#[must_use = "a span closes when its guard drops"]
#[derive(Debug)]
pub struct SpanGuard {
    trace: u64,
    span: u32,
    armed: bool,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    fn disarmed() -> Self {
        SpanGuard {
            trace: 0,
            span: 0,
            armed: false,
            _not_send: PhantomData,
        }
    }
}

/// Open a span. The guard is a disarmed no-op when tracing is disabled, no
/// trace is open on this thread, or the trace's event buffer is full.
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, 0)
}

/// Like [`span`], with an integer argument recorded on the enter event
/// (e.g. a window index or block length).
pub fn span_with(name: &'static str, arg: i64) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disarmed();
    }
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        let Some(active) = slot.as_mut() else {
            return SpanGuard::disarmed();
        };
        if active.events.len() >= MAX_EVENTS {
            active.dropped += 1;
            return SpanGuard::disarmed();
        }
        let span = active.next_span;
        active.next_span += 1;
        let parent = active.stack.last().map_or(NO_PARENT, |&(s, _, _)| s);
        active.events.push(Event {
            kind: EventKind::Enter,
            name,
            span,
            parent,
            t_ns: now_ns(),
            arg,
            value: 0,
        });
        active.stack.push((span, name, parent));
        SpanGuard {
            trace: active.id,
            span,
            armed: true,
            _not_send: PhantomData,
        }
    })
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            let Some(active) = slot.as_mut() else {
                return; // trace already ended; end() force-exited us
            };
            if active.id != self.trace {
                return; // a new trace replaced ours while the guard lived
            }
            let t = now_ns();
            // Pop to (and including) this guard's span, force-exiting any
            // child span whose guard escaped its scope. Exits bypass the
            // MAX_EVENTS cap so enter/exit always stay matched.
            while let Some((span, name, parent)) = active.stack.pop() {
                active.events.push(Event {
                    kind: EventKind::Exit,
                    name,
                    span,
                    parent,
                    t_ns: t,
                    arg: 0,
                    value: 0,
                });
                if span == self.span {
                    break;
                }
            }
        });
    }
}

/// Record an instantaneous value on the innermost open span.
pub fn point(name: &'static str, value: i64) {
    point2(name, 0, value);
}

/// Like [`point`], with an extra integer argument — the B&B profile uses
/// it as the depth index of per-depth node/prune counts.
pub fn point2(name: &'static str, arg: i64, value: i64) {
    if !enabled() {
        return;
    }
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        let Some(active) = slot.as_mut() else {
            return;
        };
        if active.events.len() >= MAX_EVENTS {
            active.dropped += 1;
            return;
        }
        let span = active.stack.last().map_or(NO_PARENT, |&(s, _, _)| s);
        active.events.push(Event {
            kind: EventKind::Point,
            name,
            span,
            parent: NO_PARENT,
            t_ns: now_ns(),
            arg,
            value,
        });
    });
}

/// Tests in this binary share the global `ENABLED` flag and trace store;
/// serialize the ones that touch either.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        test_lock()
    }

    #[test]
    fn disabled_path_records_nothing() {
        let _l = locked();
        set_enabled(false);
        assert_eq!(begin("off"), 0);
        let _g = span("ignored");
        point("ignored", 1);
        assert!(!active());
        assert!(end().is_none());
    }

    #[test]
    fn spans_nest_and_points_attach() {
        let _l = locked();
        set_enabled(true);
        let id = begin("t");
        assert!(id > 0);
        assert!(active());
        {
            let _a = span("outer");
            point("p", 42);
            {
                let _b = span_with("inner", 7);
            }
        }
        let trace = end().expect("trace was open");
        set_enabled(false);
        assert_eq!(trace.id, id);
        assert_eq!(trace.dropped, 0);
        let kinds: Vec<EventKind> = trace.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            [
                EventKind::Enter, // outer
                EventKind::Point, // p
                EventKind::Enter, // inner
                EventKind::Exit,  // inner
                EventKind::Exit,  // outer
            ]
        );
        let inner = &trace.events[2];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.arg, 7);
        assert_eq!(inner.parent, 0); // outer's span id
        assert_eq!(trace.events[1].span, 0); // point inside outer
        assert!(trace.events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    }

    #[test]
    fn end_force_exits_open_spans() {
        let _l = locked();
        set_enabled(true);
        begin("t");
        let guard = span("leaky");
        let trace = end().expect("trace was open");
        set_enabled(false);
        drop(guard); // trace ended first; the late drop must be a no-op
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[1].kind, EventKind::Exit);
        assert_eq!(trace.events[1].name, "leaky");
    }

    #[test]
    fn full_buffer_drops_spans_but_keeps_exits_matched() {
        let _l = locked();
        set_enabled(true);
        begin("t");
        let mut guards = Vec::new();
        // Overfill: each span is one enter event.
        for _ in 0..MAX_EVENTS + 10 {
            guards.push(span("s"));
        }
        drop(guards);
        let trace = end().expect("trace was open");
        set_enabled(false);
        assert_eq!(trace.dropped, 10);
        let enters = trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Enter)
            .count();
        let exits = trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Exit)
            .count();
        assert_eq!(enters, MAX_EVENTS);
        assert_eq!(enters, exits);
    }

    #[test]
    fn begin_replaces_an_open_trace() {
        let _l = locked();
        set_enabled(true);
        let first = begin("first");
        let stale = span("stale");
        let second = begin("second");
        assert!(second > first);
        drop(stale); // belongs to the discarded trace; must not pollute
        let _s = span("fresh");
        drop(_s);
        let trace = end().expect("trace was open");
        set_enabled(false);
        assert_eq!(trace.id, second);
        assert_eq!(trace.label, "second");
        assert!(trace.events.iter().all(|e| e.name == "fresh"));
    }
}
