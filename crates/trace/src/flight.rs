//! Wide-event flight recorder: one structured event per served request.
//!
//! Span traces (the rest of this crate) answer "what happened inside one
//! request"; the flight recorder answers "what happened to the service" —
//! every serve/schedule request emits exactly one **wide event** carrying
//! the whole story (block shape + canonical key, tier, backend, cache
//! outcome, search counters, proof digest, per-phase timings, outcome
//! code) into a bounded process-wide ring.
//!
//! The recording discipline mirrors the tracer's: when the recorder is
//! disabled — the default — every entry point is a single relaxed atomic
//! load and an early return, so the disabled path stays inside the
//! measured <2% overhead budget (`repro observe` gates this). When
//! enabled, a request accumulates its event in a thread-local builder
//! (zero shared-state traffic) and pays one short uncontended mutex
//! acquisition at [`commit`].
//!
//! **Anomaly triggers.** Each committed event is classified: a deadline
//! miss, certifier/audit rejection, backend disagreement, admission
//! rejection, or a latency at [`OUTLIER_MULTIPLE`]× the ring's own p99
//! estimate freezes the surrounding window — the most recent
//! [`DUMP_WINDOW`] events, offender last — into an immutable [`Dump`]
//! retrievable as NDJSON via `GET /flight/dumps` and `pipesched flight
//! --dumps` long after the ring itself has moved on.
//!
//! **Self-checksum.** Every event seals itself with an FNV-1a digest of
//! its serialized body at commit time; [`WideEvent::verify`] recomputes
//! it, so a torn read or a tampered dump line is detectable.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use pipesched_json::{json_object, Json};

/// Default ring capacity; override with `PIPESCHED_FLIGHT_CAP` or
/// [`set_capacity`].
pub const DEFAULT_CAPACITY: usize = 512;

/// Events snapshotted around an anomaly (offending event included, last).
pub const DUMP_WINDOW: usize = 32;

/// Retained anomaly dumps; older dumps fall off the front.
pub const DUMP_CAPACITY: usize = 8;

/// A latency at this multiple of the ring's p99 estimate is an anomaly.
pub const OUTLIER_MULTIPLE: u64 = 8;

/// Latency outliers only fire once this many events seeded the estimate.
pub const OUTLIER_MIN_SAMPLES: u64 = 64;

/// Latency outliers only fire above this floor — µs-scale jitter on a
/// cache-hit-only workload is noise, not an anomaly.
pub const OUTLIER_FLOOR_MICROS: u64 = 1_000;

/// Events of the same anomaly kind within this many sequence numbers of
/// the previous dump are suppressed (counted, not dumped) — one incident
/// produces one dump, not one per affected request.
pub const DUMP_COOLDOWN: u64 = DUMP_WINDOW as u64;

const LAT_BUCKETS: usize = 30;

/// Request phases timed inside a wide event, in emission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// NDJSON request-line parsing.
    Parse = 0,
    /// Dependence-DAG + scheduling-context build.
    Dag = 1,
    /// Canonical-form computation (cache key).
    Canon = 2,
    /// Cache lookup + hit translation/validation.
    Cache = 3,
    /// Tier escalation (list/windowed/exact) and cache store.
    Search = 4,
    /// Certificate production for provably optimal answers.
    Prove = 5,
    /// Response rendering.
    Respond = 6,
}

/// NDJSON field names of the per-phase timings, in [`Phase`] order.
pub const PHASE_FIELDS: [&str; 7] = [
    "us_parse",
    "us_dag",
    "us_canon",
    "us_cache",
    "us_search",
    "us_prove",
    "us_respond",
];

/// How a request ended, from the service's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Answered normally.
    Ok,
    /// Budget (λ) exhausted; the incumbent was served, `optimal: false`.
    BudgetExhausted,
    /// The request failed to parse or schedule.
    Error,
    /// The wall-clock deadline cut the search short.
    DeadlineMiss,
    /// The optimizer admission gate (`verify_opt`) refused the block.
    AdmissionReject,
    /// A certifier or audit rejected a served schedule.
    CertReject,
    /// Two exact backends disagreed on the optimal NOP count.
    Disagreement,
}

impl Outcome {
    /// Stable name used in wide events.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::BudgetExhausted => "budget_exhausted",
            Outcome::Error => "error",
            Outcome::DeadlineMiss => "deadline_miss",
            Outcome::AdmissionReject => "admission_reject",
            Outcome::CertReject => "cert_reject",
            Outcome::Disagreement => "disagreement",
        }
    }

    /// Severity rank: a later [`note_outcome`] only overrides an earlier
    /// one of strictly lower rank, so an engine-noted disagreement
    /// survives the serve loop noting plain success afterwards.
    fn rank(self) -> u8 {
        match self {
            Outcome::Ok => 0,
            Outcome::BudgetExhausted => 1,
            Outcome::Error => 2,
            Outcome::DeadlineMiss => 3,
            Outcome::AdmissionReject => 3,
            Outcome::CertReject => 4,
            Outcome::Disagreement => 5,
        }
    }
}

/// Why a window was frozen and dumped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anomaly {
    /// A request's wall-clock deadline expired mid-search.
    DeadlineMiss,
    /// A certifier or audit rejected a served schedule.
    CertReject,
    /// Exact backends disagreed on an optimal NOP count.
    Disagreement,
    /// The admission gate refused the block.
    AdmissionReject,
    /// Latency at [`OUTLIER_MULTIPLE`]× the ring's p99 estimate.
    LatencyOutlier,
}

impl Anomaly {
    /// Stable name used in dump headers and counters.
    pub fn name(self) -> &'static str {
        match self {
            Anomaly::DeadlineMiss => "deadline_miss",
            Anomaly::CertReject => "cert_reject",
            Anomaly::Disagreement => "disagreement",
            Anomaly::AdmissionReject => "admission_reject",
            Anomaly::LatencyOutlier => "latency_outlier",
        }
    }

    fn index(self) -> usize {
        match self {
            Anomaly::DeadlineMiss => 0,
            Anomaly::CertReject => 1,
            Anomaly::Disagreement => 2,
            Anomaly::AdmissionReject => 3,
            Anomaly::LatencyOutlier => 4,
        }
    }
}

/// One wide event: everything the service knows about one request, flat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WideEvent {
    /// Ring-assigned monotonic sequence number (assigned at commit).
    pub seq: u64,
    /// Client request id (`-1` when the request carried none).
    pub req: i64,
    /// Span-trace id of the same request (0 when tracing was off).
    pub trace_id: u64,
    /// Canonical refinement hash of the block's dependence DAG.
    pub canon: u64,
    /// Instructions in the block.
    pub n: u32,
    /// Machine-description fingerprint (timing + mapping, no names).
    pub machine_fp: u64,
    /// Answering tier (`cache`/`list`/`windowed`/`bnb`, `-` on errors).
    pub tier: &'static str,
    /// Concrete solving backend (`bnb`/`sat`, `-` on errors).
    pub backend: &'static str,
    /// Worker threads configured for the exact tier.
    pub threads: u32,
    /// Cache outcome: `hit`, `miss`, or `-` before lookup.
    pub cache: &'static str,
    /// Outcome code ([`Outcome::name`]).
    pub outcome: &'static str,
    /// NOPs of the served schedule.
    pub nops: u32,
    /// Whether the served schedule was provably optimal.
    pub optimal: bool,
    /// Search-tree nodes visited answering this request.
    pub nodes: u64,
    /// Ω calls spent answering this request.
    pub omega: u64,
    /// Candidates pruned (all rules summed) answering this request.
    pub pruned: u64,
    /// FNV-1a digest of the optimality certificate (0 when none).
    pub proof_digest: u64,
    /// Whether the wall-clock deadline cut the search short.
    pub deadline_hit: bool,
    /// Whole-request wall clock, microseconds.
    pub micros: u64,
    /// Per-phase wall clock, microseconds, in [`Phase`] order.
    pub phases_us: [u64; 7],
    /// FNV-1a self-checksum over the serialized body ([`WideEvent::seal`]).
    pub checksum: u64,
}

impl WideEvent {
    /// NDJSON field names, in emission order — the README's wide-event
    /// table is diffed against this list by `tests/docs_sync.rs`.
    pub const FIELDS: [&str; 27] = [
        "seq",
        "req",
        "trace_id",
        "canon",
        "n",
        "machine_fp",
        "tier",
        "backend",
        "threads",
        "cache",
        "outcome",
        "nops",
        "optimal",
        "nodes",
        "omega",
        "pruned",
        "proof_digest",
        "deadline_hit",
        "micros",
        "us_parse",
        "us_dag",
        "us_canon",
        "us_cache",
        "us_search",
        "us_prove",
        "us_respond",
        "checksum",
    ];

    fn blank(req: i64) -> Self {
        WideEvent {
            seq: 0,
            req,
            trace_id: 0,
            canon: 0,
            n: 0,
            machine_fp: 0,
            tier: "-",
            backend: "-",
            threads: 1,
            cache: "-",
            outcome: Outcome::Ok.name(),
            nops: 0,
            optimal: false,
            nodes: 0,
            omega: 0,
            pruned: 0,
            proof_digest: 0,
            deadline_hit: false,
            micros: 0,
            phases_us: [0; 7],
            checksum: 0,
        }
    }

    /// Serialized body: every field but the checksum, as compact JSON.
    /// Both the seal and the NDJSON rendering derive from this one
    /// serialization, so "the line verifies" and "the struct verifies"
    /// are the same statement.
    fn body_json(&self) -> Json {
        let mut doc = json_object![
            ("seq", self.seq as i64),
            ("req", self.req),
            ("trace_id", self.trace_id as i64),
            ("canon", self.canon as i64),
            ("n", self.n as i64),
            ("machine_fp", self.machine_fp as i64),
            ("tier", self.tier),
            ("backend", self.backend),
            ("threads", self.threads as i64),
            ("cache", self.cache),
            ("outcome", self.outcome),
            ("nops", self.nops as i64),
            ("optimal", self.optimal),
            ("nodes", self.nodes as i64),
            ("omega", self.omega as i64),
            ("pruned", self.pruned as i64),
            ("proof_digest", self.proof_digest as i64),
            ("deadline_hit", self.deadline_hit),
            ("micros", self.micros as i64),
        ];
        if let Json::Object(pairs) = &mut doc {
            for (name, us) in PHASE_FIELDS.iter().zip(self.phases_us) {
                pairs.push((name.to_string(), Json::Int(us as i64)));
            }
        }
        doc
    }

    /// Compute the FNV-1a self-checksum of the serialized body.
    fn digest(&self) -> u64 {
        fnv1a(self.body_json().to_compact().as_bytes())
    }

    /// Seal the event: stamp `checksum` from the current body.
    pub fn seal(&mut self) {
        self.checksum = self.digest();
    }

    /// Recompute the checksum and compare; a forged or torn event fails.
    pub fn verify(&self) -> bool {
        self.checksum == self.digest()
    }

    /// One NDJSON line: the sealed body plus its checksum.
    pub fn to_ndjson(&self) -> String {
        let mut doc = self.body_json();
        if let Json::Object(pairs) = &mut doc {
            pairs.push(("checksum".to_string(), Json::Int(self.checksum as i64)));
        }
        doc.to_compact()
    }

    /// Parse one NDJSON line back into a `WideEvent`, checksum included —
    /// so [`WideEvent::verify`] detects tampering on re-parsed lines just
    /// as it does on in-memory events. Returns `None` for malformed
    /// lines, dump headers, and events whose string fields fall outside
    /// the recorder's vocabulary (the recorder only ever emits interned
    /// names, so an unknown string is foreign or forged).
    pub fn from_ndjson(line: &str) -> Option<Self> {
        /// Map a parsed string back onto the recorder's static name.
        fn intern(s: &str, vocab: &[&'static str]) -> Option<&'static str> {
            vocab.iter().copied().find(|v| *v == s)
        }
        let doc = pipesched_json::parse(line).ok()?;
        let u = |k: &str| doc.get(k).and_then(Json::as_i64).map(|v| v as u64);
        let s = |k: &str| doc.get(k).and_then(Json::as_str).map(str::to_string);
        let mut ev = WideEvent::blank(doc.get("req").and_then(Json::as_i64)?);
        ev.seq = u("seq")?;
        ev.trace_id = u("trace_id")?;
        ev.canon = u("canon")?;
        ev.n = u("n")? as u32;
        ev.machine_fp = u("machine_fp")?;
        ev.tier = intern(&s("tier")?, &["cache", "list", "windowed", "bnb", "-"])?;
        ev.backend = intern(&s("backend")?, &["bnb", "sat", "race", "-"])?;
        ev.threads = u("threads")? as u32;
        ev.cache = intern(&s("cache")?, &["hit", "miss", "-"])?;
        ev.outcome = intern(
            &s("outcome")?,
            &[
                Outcome::Ok.name(),
                Outcome::BudgetExhausted.name(),
                Outcome::Error.name(),
                Outcome::DeadlineMiss.name(),
                Outcome::AdmissionReject.name(),
                Outcome::CertReject.name(),
                Outcome::Disagreement.name(),
            ],
        )?;
        ev.nops = u("nops")? as u32;
        ev.optimal = doc.get("optimal").and_then(Json::as_bool)?;
        ev.nodes = u("nodes")?;
        ev.omega = u("omega")?;
        ev.pruned = u("pruned")?;
        ev.proof_digest = u("proof_digest")?;
        ev.deadline_hit = doc.get("deadline_hit").and_then(Json::as_bool)?;
        ev.micros = u("micros")?;
        for (slot, name) in ev.phases_us.iter_mut().zip(PHASE_FIELDS) {
            *slot = u(name)?;
        }
        ev.checksum = u("checksum")?;
        Some(ev)
    }
}

/// FNV-1a over `bytes` — the same digest family the proof certificates
/// use, reimplemented here so the trace crate stays dependency-light.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A frozen window around one anomalous event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dump {
    /// Dump number, counting from 1.
    pub id: u64,
    /// What fired ([`Anomaly::name`]).
    pub anomaly: &'static str,
    /// Sequence number of the offending event (always present, last).
    pub trigger_seq: u64,
    /// The window, oldest first, offender last.
    pub events: Vec<WideEvent>,
}

impl Dump {
    /// NDJSON: one header line, then one line per event.
    pub fn to_ndjson(&self) -> String {
        let mut out = json_object![
            ("dump", self.id as i64),
            ("anomaly", self.anomaly),
            ("trigger_seq", self.trigger_seq as i64),
            ("events", self.events.len() as i64),
        ]
        .to_compact();
        out.push('\n');
        for ev in &self.events {
            out.push_str(&ev.to_ndjson());
            out.push('\n');
        }
        out
    }
}

/// Recorder counters, for `/stats` and `pipesched stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightStats {
    /// Wide events committed since start/reset.
    pub recorded: u64,
    /// Events evicted off the ring's front.
    pub evicted: u64,
    /// Anomalies suppressed by the per-kind dump cooldown.
    pub suppressed: u64,
    /// Dumps currently retained.
    pub dumps: usize,
    /// Dumps taken since start/reset (retained or rotated out).
    pub dumps_taken: u64,
    /// Ring capacity.
    pub capacity: usize,
    /// Events currently in the ring.
    pub stored: usize,
}

impl FlightStats {
    /// JSON rendering for `/stats`.
    pub fn to_json(&self) -> Json {
        json_object![
            ("recorded", self.recorded as i64),
            ("evicted", self.evicted as i64),
            ("suppressed", self.suppressed as i64),
            ("dumps", self.dumps as i64),
            ("dumps_taken", self.dumps_taken as i64),
            ("capacity", self.capacity as i64),
            ("stored", self.stored as i64),
        ]
    }
}

struct Inner {
    /// 0 = "capacity not yet resolved" (read `PIPESCHED_FLIGHT_CAP` or
    /// the default on first use); [`set_capacity`] pins it explicitly.
    cap: usize,
    next_seq: u64,
    recorded: u64,
    evicted: u64,
    suppressed: u64,
    dumps_taken: u64,
    ring: VecDeque<WideEvent>,
    dumps: VecDeque<Dump>,
    /// log₂ latency buckets seeding the outlier trigger's p99 estimate.
    lat_buckets: [u64; LAT_BUCKETS],
    lat_count: u64,
    /// Last dump's trigger seq per anomaly kind (cooldown).
    last_dump_seq: [Option<u64>; 5],
}

impl Inner {
    /// Conservative p99 estimate: the upper edge of the p99 bucket.
    fn p99_upper_micros(&self) -> u64 {
        if self.lat_count == 0 {
            return 0;
        }
        let rank = ((0.99 * self.lat_count as f64).ceil() as u64).clamp(1, self.lat_count);
        let mut seen = 0u64;
        for (b, &c) in self.lat_buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (b + 1);
            }
        }
        1u64 << LAT_BUCKETS
    }

    fn classify(&self, ev: &WideEvent) -> Option<Anomaly> {
        match ev.outcome {
            o if o == Outcome::DeadlineMiss.name() => Some(Anomaly::DeadlineMiss),
            o if o == Outcome::CertReject.name() => Some(Anomaly::CertReject),
            o if o == Outcome::Disagreement.name() => Some(Anomaly::Disagreement),
            o if o == Outcome::AdmissionReject.name() => Some(Anomaly::AdmissionReject),
            _ => {
                let p99 = self.p99_upper_micros();
                (self.lat_count >= OUTLIER_MIN_SAMPLES
                    && ev.micros >= OUTLIER_FLOOR_MICROS.max(p99.saturating_mul(OUTLIER_MULTIPLE)))
                .then_some(Anomaly::LatencyOutlier)
            }
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
#[allow(clippy::declare_interior_mutable_const)]
static RECORDER: Mutex<Inner> = Mutex::new(Inner {
    cap: 0,
    next_seq: 1,
    recorded: 0,
    evicted: 0,
    suppressed: 0,
    dumps_taken: 0,
    ring: VecDeque::new(),
    dumps: VecDeque::new(),
    lat_buckets: [0; LAT_BUCKETS],
    lat_count: 0,
    last_dump_seq: [None; 5],
});

fn recorder() -> MutexGuard<'static, Inner> {
    let mut g = RECORDER.lock().unwrap_or_else(PoisonError::into_inner);
    if g.cap == 0 {
        g.cap = std::env::var("PIPESCHED_FLIGHT_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_CAPACITY);
    }
    g
}

thread_local! {
    static CURRENT: RefCell<Option<WideEvent>> = const { RefCell::new(None) };
}

/// Globally switch wide-event recording on or off. Off is the default;
/// when off, every entry point is a single-atomic-load no-op.
pub fn set_enabled(on: bool) {
    // relaxed-ok: a pure on/off toggle with no dependent data — readers
    // act only on the flag value itself, so no ordering is needed.
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether wide-event recording is globally enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether this thread is building a wide event right now.
pub fn active() -> bool {
    enabled() && CURRENT.with(|c| c.borrow().is_some())
}

/// Override the ring capacity (tests and the CLI; production uses
/// `PIPESCHED_FLIGHT_CAP`). Trims the ring if it shrank.
pub fn set_capacity(cap: usize) {
    let mut g = recorder();
    g.cap = cap.max(1);
    while g.ring.len() > g.cap {
        g.ring.pop_front();
        g.evicted += 1;
    }
}

/// Drop every event, dump, and counter (tests and replay tools). The
/// enabled flag and sequence numbering are left alone.
pub fn reset() {
    let mut g = recorder();
    g.ring.clear();
    g.dumps.clear();
    g.recorded = 0;
    g.evicted = 0;
    g.suppressed = 0;
    g.dumps_taken = 0;
    g.lat_buckets = [0; LAT_BUCKETS];
    g.lat_count = 0;
    g.last_dump_seq = [None; 5];
}

/// Open this thread's wide event for the request being served. Replaces
/// any event left open by an earlier request that never committed.
pub fn begin(req: i64) {
    if !enabled() {
        return;
    }
    CURRENT.with(|c| *c.borrow_mut() = Some(WideEvent::blank(req)));
}

fn with_current(f: impl FnOnce(&mut WideEvent)) {
    if !enabled() {
        return;
    }
    CURRENT.with(|c| {
        if let Some(ev) = c.borrow_mut().as_mut() {
            f(ev);
        }
    });
}

/// Attach the client request id once parsing recovered it.
pub fn note_req(id: i64) {
    with_current(|ev| ev.req = id);
}

/// Attach the block shape + canonical cache key.
pub fn note_block(canon: u64, n: u32, machine_fp: u64) {
    with_current(|ev| {
        ev.canon = canon;
        ev.n = n;
        ev.machine_fp = machine_fp;
    });
}

/// Attach the answer's provenance.
#[allow(clippy::too_many_arguments)]
pub fn note_answer(
    tier: &'static str,
    backend: &'static str,
    threads: u32,
    cache: &'static str,
    nops: u32,
    optimal: bool,
    deadline_hit: bool,
    proof_digest: u64,
) {
    with_current(|ev| {
        ev.tier = tier;
        ev.backend = backend;
        ev.threads = threads;
        ev.cache = cache;
        ev.nops = nops;
        ev.optimal = optimal;
        ev.deadline_hit = deadline_hit;
        ev.proof_digest = proof_digest;
    });
}

/// Accumulate search effort (summed across the escalation tiers).
pub fn note_search(nodes: u64, omega: u64, pruned: u64) {
    with_current(|ev| {
        ev.nodes += nodes;
        ev.omega += omega;
        ev.pruned += pruned;
    });
}

/// Record the outcome code. Outcomes only escalate: a later call with a
/// lower-severity outcome (the serve loop noting plain success) never
/// downgrades an anomaly the engine already noted.
pub fn note_outcome(outcome: Outcome) {
    with_current(|ev| {
        let current = [
            Outcome::Ok,
            Outcome::BudgetExhausted,
            Outcome::Error,
            Outcome::DeadlineMiss,
            Outcome::AdmissionReject,
            Outcome::CertReject,
            Outcome::Disagreement,
        ]
        .into_iter()
        .find(|o| o.name() == ev.outcome)
        .unwrap_or(Outcome::Ok);
        if outcome.rank() >= current.rank() {
            ev.outcome = outcome.name();
        }
    });
}

/// Accumulate `micros` onto one phase's timing.
pub fn phase_us(phase: Phase, micros: u64) {
    with_current(|ev| ev.phases_us[phase as usize] += micros);
}

/// Lap timer attributing elapsed wall clock to request phases. Disarmed
/// (all methods free) when the thread is not building a wide event.
#[derive(Debug)]
pub struct PhaseClock {
    last: Option<Instant>,
}

impl PhaseClock {
    /// Attribute the time since the previous lap (or construction) to
    /// `phase` and restart the lap.
    pub fn lap(&mut self, phase: Phase) {
        if let Some(last) = self.last {
            let now = Instant::now();
            phase_us(phase, now.duration_since(last).as_micros() as u64);
            self.last = Some(now);
        }
    }
}

/// Start a phase clock; armed only while this thread records a wide event.
pub fn clock() -> PhaseClock {
    PhaseClock {
        last: active().then(Instant::now),
    }
}

/// Seal and publish this thread's wide event: stamp the total latency and
/// trace id, assign its ring sequence number, run the anomaly triggers,
/// and return the sequence number (None when nothing was recording).
pub fn commit(micros: u64, trace_id: u64) -> Option<u64> {
    if !enabled() {
        CURRENT.with(|c| c.borrow_mut().take());
        return None;
    }
    let mut ev = CURRENT.with(|c| c.borrow_mut().take())?;
    ev.micros = micros;
    ev.trace_id = trace_id;

    let dump_text = {
        let mut g = recorder();
        ev.seq = g.next_seq;
        g.next_seq += 1;
        ev.seal();
        debug_assert!(ev.verify());

        // Classify against the ring state *before* this event lands, so
        // the offender's own latency cannot inflate the p99 it is judged
        // against.
        let anomaly = g.classify(&ev);
        let b = (63 - micros.max(1).leading_zeros() as usize).min(LAT_BUCKETS - 1);
        g.lat_buckets[b] += 1;
        g.lat_count += 1;

        let seq = ev.seq;
        g.ring.push_back(ev);
        g.recorded += 1;
        while g.ring.len() > g.cap {
            g.ring.pop_front();
            g.evicted += 1;
        }

        anomaly.and_then(|kind| {
            let cooled = g.last_dump_seq[kind.index()]
                .is_some_and(|last| seq.saturating_sub(last) < DUMP_COOLDOWN);
            if cooled {
                g.suppressed += 1;
                return None;
            }
            g.last_dump_seq[kind.index()] = Some(seq);
            g.dumps_taken += 1;
            let window: Vec<WideEvent> = g
                .ring
                .iter()
                .rev()
                .take(DUMP_WINDOW)
                .rev()
                .cloned()
                .collect();
            let dump = Dump {
                id: g.dumps_taken,
                anomaly: kind.name(),
                trigger_seq: seq,
                events: window,
            };
            let text = dump.to_ndjson();
            g.dumps.push_back(dump);
            while g.dumps.len() > DUMP_CAPACITY {
                g.dumps.pop_front();
            }
            Some((dump_file_name(g.dumps_taken, kind), text))
        })
    };

    // File I/O happens outside the recorder lock.
    if let Some((name, text)) = &dump_text {
        if let Ok(dir) = std::env::var("PIPESCHED_FLIGHT_DIR") {
            let _ = std::fs::write(std::path::Path::new(&dir).join(name), text);
        }
    }
    CURRENT.with(|c| {
        let _ = c.borrow_mut().take();
    });
    recorder().ring.back().map(|e| e.seq)
}

fn dump_file_name(id: u64, kind: Anomaly) -> String {
    format!("flight_dump_{id}_{}.ndjson", kind.name())
}

/// The `n` most recent wide events, oldest first.
pub fn recent(n: usize) -> Vec<WideEvent> {
    let g = recorder();
    g.ring.iter().rev().take(n).rev().cloned().collect()
}

/// Every retained anomaly dump, oldest first.
pub fn dumps() -> Vec<Dump> {
    recorder().dumps.iter().cloned().collect()
}

/// Recorder counters.
pub fn stats() -> FlightStats {
    let g = recorder();
    FlightStats {
        recorded: g.recorded,
        evicted: g.evicted,
        suppressed: g.suppressed,
        dumps: g.dumps.len(),
        dumps_taken: g.dumps_taken,
        capacity: g.cap,
        stored: g.ring.len(),
    }
}

/// NDJSON: one line per event.
pub fn to_ndjson(events: &[WideEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_ndjson());
        out.push('\n');
    }
    out
}

/// Fixed-width table of wide events, the default `pipesched flight` view.
pub fn render_table(events: &[WideEvent]) -> String {
    let mut out = format!(
        "{:>6} {:>6} {:<8} {:<7} {:<5} {:<16} {:>4} {:>3} {:>9} {:>9} {:>5} {:>8}\n",
        "seq",
        "req",
        "tier",
        "backend",
        "cache",
        "outcome",
        "nops",
        "opt",
        "nodes",
        "µs",
        "n",
        "trace"
    );
    for ev in events {
        out.push_str(&format!(
            "{:>6} {:>6} {:<8} {:<7} {:<5} {:<16} {:>4} {:>3} {:>9} {:>9} {:>5} {:>8}\n",
            ev.seq,
            ev.req,
            ev.tier,
            ev.backend,
            ev.cache,
            ev.outcome,
            ev.nops,
            if ev.optimal { "yes" } else { "no" },
            ev.nodes,
            ev.micros,
            ev.n,
            ev.trace_id,
        ));
    }
    out
}

/// Folded flamegraph stacks over the per-phase timings: each event's
/// phases fold under `serve;<tier>`, with the unattributed remainder as
/// `serve;<tier>;other` — mergeable by standard flamegraph tooling.
pub fn render_flame(events: &[WideEvent]) -> String {
    let mut stacks: Vec<(String, u64)> = Vec::new();
    let mut bump = |path: String, us: u64| {
        if us == 0 {
            return;
        }
        match stacks.iter_mut().find(|(p, _)| *p == path) {
            Some(entry) => entry.1 += us,
            None => stacks.push((path, us)),
        }
    };
    for ev in events {
        let mut attributed = 0u64;
        for (phase, &us) in PHASE_FIELDS.iter().zip(ev.phases_us.iter()) {
            let name = phase.trim_start_matches("us_");
            bump(format!("serve;{};{name}", ev.tier), us);
            attributed += us;
        }
        bump(
            format!("serve;{};other", ev.tier),
            ev.micros.saturating_sub(attributed),
        );
    }
    let mut out = String::new();
    for (path, us) in stacks {
        out.push_str(&format!("{path} {us}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flight tests share the process-global recorder with the rest of
    /// this binary's tests; serialize them.
    fn locked() -> std::sync::MutexGuard<'static, ()> {
        crate::test_lock()
    }

    fn record_one(req: i64, micros: u64, outcome: Outcome) -> Option<u64> {
        begin(req);
        note_block(0xabcd, 6, 0x1234);
        note_answer("bnb", "bnb", 1, "miss", 2, true, false, 77);
        note_search(10, 12, 3);
        note_outcome(outcome);
        commit(micros, 0)
    }

    #[test]
    fn disabled_path_records_nothing() {
        let _l = locked();
        set_enabled(false);
        reset();
        begin(1);
        note_block(1, 2, 3);
        assert!(!active());
        assert_eq!(commit(10, 0), None);
        assert_eq!(stats().recorded, 0);
        assert!(recent(10).is_empty());
    }

    #[test]
    fn events_seal_verify_and_round_trip_as_json() {
        let _l = locked();
        set_enabled(true);
        reset();
        let seq = record_one(42, 1234, Outcome::Ok).expect("recorded");
        set_enabled(false);
        let events = recent(10);
        assert_eq!(events.len(), 1);
        let ev = &events[0];
        assert_eq!(ev.seq, seq);
        assert_eq!(ev.req, 42);
        assert_eq!((ev.nodes, ev.omega, ev.pruned), (10, 12, 3));
        assert!(ev.verify());
        let doc = pipesched_json::parse(&ev.to_ndjson()).expect("valid JSON");
        // Every documented field is present, none extra.
        if let pipesched_json::Json::Object(pairs) = &doc {
            let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(keys, WideEvent::FIELDS);
        } else {
            panic!("wide event must serialize as an object");
        }
        // The NDJSON line parses back to the identical event, and the
        // re-parsed copy still verifies (and still detects tampering).
        let back = WideEvent::from_ndjson(&ev.to_ndjson()).expect("line parses back");
        assert_eq!(&back, ev);
        assert!(back.verify());
        let forged = ev.to_ndjson().replace("\"req\":42", "\"req\":43");
        let forged = WideEvent::from_ndjson(&forged).expect("forged line still parses");
        assert!(!forged.verify(), "re-parsed forgeries must fail the seal");
        assert!(WideEvent::from_ndjson("{\"dump\":1}").is_none());
        assert!(WideEvent::from_ndjson("not json").is_none());
    }

    #[test]
    fn forged_events_fail_their_checksum() {
        let _l = locked();
        set_enabled(true);
        reset();
        record_one(1, 500, Outcome::Ok);
        set_enabled(false);
        let mut ev = recent(1).pop().expect("recorded");
        assert!(ev.verify());
        ev.nops += 1; // the forgery
        assert!(!ev.verify());
        ev.nops -= 1;
        assert!(ev.verify());
        ev.checksum ^= 1;
        assert!(!ev.verify());
    }

    #[test]
    fn ring_evicts_past_capacity_and_counts_it() {
        let _l = locked();
        set_enabled(true);
        reset();
        set_capacity(4);
        for i in 0..10 {
            record_one(i, 100, Outcome::Ok);
        }
        set_enabled(false);
        let s = stats();
        assert_eq!(s.recorded, 10);
        assert_eq!(s.stored, 4);
        assert_eq!(s.evicted, 6);
        let events = recent(100);
        assert_eq!(events.len(), 4);
        assert_eq!(events.last().unwrap().req, 9);
        set_capacity(DEFAULT_CAPACITY);
    }

    #[test]
    fn deadline_miss_freezes_a_dump_with_the_offender_last() {
        let _l = locked();
        set_enabled(true);
        reset();
        for i in 0..5 {
            record_one(i, 100, Outcome::Ok);
        }
        let bad = record_one(99, 50_000, Outcome::DeadlineMiss).unwrap();
        record_one(6, 100, Outcome::Ok);
        set_enabled(false);
        let dumps = dumps();
        assert_eq!(dumps.len(), 1);
        let d = &dumps[0];
        assert_eq!(d.anomaly, "deadline_miss");
        assert_eq!(d.trigger_seq, bad);
        let last = d.events.last().unwrap();
        assert_eq!(last.req, 99);
        assert_eq!(last.seq, bad);
        assert!(d.events.iter().all(WideEvent::verify));
        // The post-anomaly event did not leak into the frozen window.
        assert!(d.events.iter().all(|e| e.seq <= bad));
        // Header line + one line per event, all parseable.
        let ndjson = d.to_ndjson();
        assert_eq!(ndjson.lines().count(), d.events.len() + 1);
        for line in ndjson.lines() {
            pipesched_json::parse(line).expect("dump line is JSON");
        }
    }

    #[test]
    fn repeated_anomalies_cool_down_instead_of_flooding() {
        let _l = locked();
        set_enabled(true);
        reset();
        for i in 0..5 {
            record_one(i, 100, Outcome::DeadlineMiss);
        }
        set_enabled(false);
        let s = stats();
        assert_eq!(s.dumps_taken, 1);
        assert_eq!(s.suppressed, 4);
    }

    #[test]
    fn latency_outlier_fires_only_after_the_estimate_seeds() {
        let _l = locked();
        set_enabled(true);
        reset();
        // Below OUTLIER_MIN_SAMPLES: a huge latency is not yet an outlier.
        record_one(0, 10_000_000, Outcome::Ok);
        assert_eq!(stats().dumps_taken, 0);
        reset();
        for i in 0..OUTLIER_MIN_SAMPLES as i64 {
            record_one(i, 100, Outcome::Ok);
        }
        // p99 upper edge is 128 µs; 8× that is ~1 ms, near the floor, so
        // the trigger threshold is ~1 ms — 50 ms trips it.
        record_one(777, 50_000, Outcome::Ok);
        set_enabled(false);
        let dumps = dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].anomaly, "latency_outlier");
        assert_eq!(dumps[0].events.last().unwrap().req, 777);
    }

    #[test]
    fn outcomes_escalate_but_never_downgrade() {
        let _l = locked();
        set_enabled(true);
        reset();
        begin(1);
        note_outcome(Outcome::Disagreement);
        note_outcome(Outcome::Ok); // the serve loop's routine success note
        commit(10, 0);
        set_enabled(false);
        assert_eq!(recent(1)[0].outcome, "disagreement");
    }

    #[test]
    fn renderings_cover_every_event() {
        let _l = locked();
        set_enabled(true);
        reset();
        begin(3);
        note_answer("cache", "bnb", 1, "hit", 0, true, false, 0);
        phase_us(Phase::Parse, 10);
        phase_us(Phase::Cache, 30);
        commit(50, 9);
        set_enabled(false);
        let events = recent(10);
        let table = render_table(&events);
        assert!(table.contains("cache"), "{table}");
        assert!(table.lines().count() == events.len() + 1);
        let flame = render_flame(&events);
        assert!(flame.contains("serve;cache;parse 10"), "{flame}");
        assert!(flame.contains("serve;cache;cache 30"), "{flame}");
        assert!(flame.contains("serve;cache;other 10"), "{flame}");
        let ndjson = to_ndjson(&events);
        assert_eq!(ndjson.lines().count(), events.len());
    }
}
