//! Process-wide ring of recently completed traces.
//!
//! [`crate::end`] publishes each finished trace here; `GET /trace/<id>`
//! and `pipesched trace` read them back. The ring keeps the most recent
//! [`DEFAULT_CAPACITY`] traces (override with `PIPESCHED_TRACE_CAP`) —
//! old entries fall off the front, matching the service's "recent
//! requests are the interesting ones" access pattern. Evictions are
//! counted and exported as `pipesched_trace_evicted_total`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::Trace;

/// Completed traces retained for lookup unless `PIPESCHED_TRACE_CAP`
/// (or [`set_capacity`]) overrides it.
pub const DEFAULT_CAPACITY: usize = 128;

/// Backward-compatible alias for the pre-configurable constant.
pub const CAPACITY: usize = DEFAULT_CAPACITY;

static STORE: Mutex<VecDeque<Trace>> = Mutex::new(VecDeque::new());
/// Resolved capacity; 0 means "read `PIPESCHED_TRACE_CAP` on first use".
static CAP: AtomicUsize = AtomicUsize::new(0);
static EVICTED: AtomicU64 = AtomicU64::new(0);

fn store() -> MutexGuard<'static, VecDeque<Trace>> {
    STORE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The ring's current capacity, resolving `PIPESCHED_TRACE_CAP` (any
/// positive integer) on first call.
pub fn capacity() -> usize {
    // relaxed-ok: capacity is a standalone configuration value with no
    // dependent data; a racing first-use just resolves the same number.
    let cap = CAP.load(Ordering::Relaxed);
    if cap != 0 {
        return cap;
    }
    let resolved = std::env::var("PIPESCHED_TRACE_CAP")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CAPACITY);
    // relaxed-ok: see above — idempotent lazy init of a plain value.
    CAP.store(resolved, Ordering::Relaxed);
    resolved
}

/// Override the capacity (tests and the CLI; production uses
/// `PIPESCHED_TRACE_CAP`). Trims the ring if it shrank.
pub fn set_capacity(cap: usize) {
    let cap = cap.max(1);
    let mut s = store();
    // relaxed-ok: plain configuration store, readers need no ordering.
    CAP.store(cap, Ordering::Relaxed);
    while s.len() > cap {
        s.pop_front();
        // relaxed-ok: monotonic counter, read only for reporting.
        EVICTED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Traces evicted off the ring's front since process start.
pub fn evicted_total() -> u64 {
    EVICTED.load(Ordering::Relaxed)
}

/// Traces currently retained.
pub fn len() -> usize {
    store().len()
}

/// Add a completed trace, evicting the oldest past [`capacity`].
pub fn put(trace: Trace) {
    let cap = capacity();
    let mut s = store();
    while s.len() >= cap {
        s.pop_front();
        // relaxed-ok: monotonic counter, read only for reporting.
        EVICTED.fetch_add(1, Ordering::Relaxed);
    }
    s.push_back(trace);
}

/// Look up a retained trace by id.
pub fn get(id: u64) -> Option<Trace> {
    store().iter().find(|t| t.id == id).cloned()
}

/// Ids of retained traces, oldest first.
pub fn recent_ids() -> Vec<u64> {
    store().iter().map(|t| t.id).collect()
}

/// Drop every retained trace (tests and long-lived servers). The
/// eviction counter is left alone — dropped-on-purpose is not evicted.
pub fn clear() {
    store().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(id: u64) -> Trace {
        Trace {
            id,
            label: "t".into(),
            events: Vec::new(),
            dropped: 0,
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_traces() {
        let _l = crate::test_lock();
        clear();
        set_capacity(DEFAULT_CAPACITY);
        for id in 1..=(DEFAULT_CAPACITY as u64 + 5) {
            put(fake(id));
        }
        let ids = recent_ids();
        assert_eq!(ids.len(), DEFAULT_CAPACITY);
        assert_eq!(ids[0], 6); // 1..=5 evicted
        assert!(get(3).is_none());
        assert_eq!(get(6).map(|t| t.id), Some(6));
        clear();
        assert!(recent_ids().is_empty());
    }

    #[test]
    fn capacity_is_configurable_and_evictions_are_counted() {
        let _l = crate::test_lock();
        clear();
        set_capacity(4);
        let before = evicted_total();
        for id in 1..=10 {
            put(fake(id));
        }
        assert_eq!(len(), 4);
        assert_eq!(evicted_total() - before, 6);
        assert_eq!(recent_ids(), vec![7, 8, 9, 10]);
        // Shrinking trims and counts the trimmed traces too.
        set_capacity(2);
        assert_eq!(len(), 2);
        assert_eq!(evicted_total() - before, 8);
        assert_eq!(recent_ids(), vec![9, 10]);
        clear();
        set_capacity(DEFAULT_CAPACITY);
    }
}
