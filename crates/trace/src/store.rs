//! Process-wide ring of recently completed traces.
//!
//! [`crate::end`] publishes each finished trace here; `GET /trace/<id>`
//! and `pipesched trace` read them back. The ring keeps the most recent
//! [`CAPACITY`] traces — old entries fall off the front, matching the
//! service's "recent requests are the interesting ones" access pattern.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::Trace;

/// Completed traces retained for lookup.
pub const CAPACITY: usize = 128;

static STORE: Mutex<VecDeque<Trace>> = Mutex::new(VecDeque::new());

fn store() -> MutexGuard<'static, VecDeque<Trace>> {
    STORE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Add a completed trace, evicting the oldest past [`CAPACITY`].
pub fn put(trace: Trace) {
    let mut s = store();
    if s.len() >= CAPACITY {
        s.pop_front();
    }
    s.push_back(trace);
}

/// Look up a retained trace by id.
pub fn get(id: u64) -> Option<Trace> {
    store().iter().find(|t| t.id == id).cloned()
}

/// Ids of retained traces, oldest first.
pub fn recent_ids() -> Vec<u64> {
    store().iter().map(|t| t.id).collect()
}

/// Drop every retained trace (tests and long-lived servers).
pub fn clear() {
    store().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(id: u64) -> Trace {
        Trace {
            id,
            label: "t".into(),
            events: Vec::new(),
            dropped: 0,
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_traces() {
        let _l = crate::test_lock();
        clear();
        for id in 1..=(CAPACITY as u64 + 5) {
            put(fake(id));
        }
        let ids = recent_ids();
        assert_eq!(ids.len(), CAPACITY);
        assert_eq!(ids[0], 6); // 1..=5 evicted
        assert!(get(3).is_none());
        assert_eq!(get(6).map(|t| t.id), Some(6));
        clear();
        assert!(recent_ids().is_empty());
    }
}
