//! Property tests: every trace the recorder emits is well-formed — matched
//! LIFO enter/exit pairs, nondecreasing timestamps, and acyclic parent
//! links — even when several worker threads record concurrently and guards
//! leak past `end()`.

use proptest::prelude::*;

use pipesched_trace::{
    begin, end, point2, set_enabled, span_with, EventKind, SpanGuard, Trace, NO_PARENT,
};

/// One scripted recorder action.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Open a span named from a static pool.
    Push(u8),
    /// Drop the innermost still-held guard.
    Pop,
    /// Record a point value.
    Point(i64),
}

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

fn decode(raw: u8) -> Op {
    match raw % 8 {
        0..=3 => Op::Push(raw % 4),
        4 | 5 => Op::Pop,
        _ => Op::Point(i64::from(raw)),
    }
}

/// Run one script on the current thread inside its own trace; `leak`
/// leaves any still-open guards for `end()` to force-exit.
fn record(script: &[u8], leak: bool) -> Trace {
    begin("prop");
    let mut guards: Vec<SpanGuard> = Vec::new();
    for &raw in script {
        match decode(raw) {
            Op::Push(name) => guards.push(span_with(NAMES[name as usize], i64::from(name))),
            Op::Pop => {
                guards.pop();
            }
            Op::Point(v) => point2("p", 0, v),
        }
    }
    if !leak {
        guards.clear();
    }
    // With `leak`, the guards are still alive here: `end()` must force-exit
    // their spans, and the late guard drops must then be no-ops.
    let trace = end().expect("trace was open");
    drop(guards);
    trace
}

/// Replay a trace and check the three well-formedness invariants.
fn check_well_formed(trace: &Trace) -> Result<(), String> {
    let mut stack: Vec<u32> = Vec::new();
    let mut last_t = 0u64;
    let mut enters = 0usize;
    let mut exits = 0usize;
    for (i, ev) in trace.events.iter().enumerate() {
        if ev.t_ns < last_t {
            return Err(format!("event {i}: timestamp went backwards"));
        }
        last_t = ev.t_ns;
        match ev.kind {
            EventKind::Enter => {
                enters += 1;
                // Acyclic parent links: the parent is exactly the innermost
                // open span (or NO_PARENT at the root), so following parent
                // links walks down the open stack and terminates.
                let expect = stack.last().copied().unwrap_or(NO_PARENT);
                if ev.parent != expect {
                    return Err(format!(
                        "event {i}: span {} claims parent {} but {} is open",
                        ev.span, ev.parent, expect
                    ));
                }
                if stack.contains(&ev.span) {
                    return Err(format!("event {i}: span {} re-entered", ev.span));
                }
                stack.push(ev.span);
            }
            EventKind::Exit => {
                exits += 1;
                match stack.pop() {
                    Some(open) if open == ev.span => {}
                    Some(open) => {
                        return Err(format!(
                            "event {i}: exit {} out of LIFO order (span {open} open)",
                            ev.span
                        ))
                    }
                    None => return Err(format!("event {i}: exit {} with no span open", ev.span)),
                }
            }
            EventKind::Point => {
                let expect = stack.last().copied().unwrap_or(NO_PARENT);
                if ev.span != expect {
                    return Err(format!("event {i}: point attached to a closed span"));
                }
            }
        }
    }
    if enters != exits {
        return Err(format!("{enters} enters vs {exits} exits"));
    }
    if !stack.is_empty() {
        return Err(format!("{} spans never exited", stack.len()));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    fn concurrent_traces_are_well_formed(
        scripts in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..48),
            4,
        ),
        leak in any::<bool>(),
    ) {
        set_enabled(true);
        let traces: Vec<Trace> = std::thread::scope(|scope| {
            let handles: Vec<_> = scripts
                .iter()
                .map(|script| scope.spawn(move || record(script, leak)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("recorder thread panicked"))
                .collect()
        });
        set_enabled(false);
        // Concurrent threads must have received distinct trace ids.
        let mut ids: Vec<u64> = traces.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), traces.len(), "trace ids collided");
        for trace in &traces {
            if let Err(msg) = check_well_formed(trace) {
                prop_assert!(false, "trace {} malformed: {}", trace.id, msg);
            }
        }
    }
}
