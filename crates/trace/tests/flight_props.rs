//! Property tests for the flight recorder under concurrent writers: the
//! ring never tears (every stored event passes its self-checksum and
//! sequence numbers stay unique and ordered), an anomaly dump is a
//! consistent frozen snapshot that contains its triggering event, and the
//! accounting (recorded = stored + evicted) balances exactly.
//!
//! Runs as its own integration-test process, so it owns the process-wide
//! recorder; the internal `#[serial]`-style mutex keeps proptest cases
//! from interleaving with each other.

use proptest::prelude::*;

use pipesched_trace::flight::{self, Outcome, WideEvent, DUMP_WINDOW, OUTLIER_MIN_SAMPLES};

/// The tests in this binary share the process-wide recorder; serialize.
fn locked() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One scripted request a writer thread records.
#[derive(Debug, Clone, Copy)]
struct Req {
    id: i64,
    micros: u16,
    outcome: Outcome,
}

fn decode(thread: usize, idx: usize, raw: u16) -> Req {
    // Most requests are healthy; a slice are anomalous, spread across
    // every trigger kind the classifier knows.
    let outcome = match raw % 17 {
        0 => Outcome::DeadlineMiss,
        1 => Outcome::CertReject,
        2 => Outcome::Disagreement,
        3 => Outcome::AdmissionReject,
        4 => Outcome::BudgetExhausted,
        _ => Outcome::Ok,
    };
    Req {
        id: (thread * 10_000 + idx) as i64,
        micros: raw,
        outcome,
    }
}

fn record(req: Req) {
    flight::begin(req.id);
    flight::note_block(req.id as u64, 8, 0x5eed);
    flight::note_answer("bnb", "bnb", 2, "miss", 3, true, false, 0);
    flight::note_search(u64::from(req.micros), 5, 2);
    flight::note_outcome(req.outcome);
    flight::commit(u64::from(req.micros).max(1), 0);
}

/// The ring invariants every interleaving must preserve.
fn check_ring(events: &[WideEvent]) -> Result<(), String> {
    let mut last_seq = 0u64;
    for (i, ev) in events.iter().enumerate() {
        if !ev.verify() {
            return Err(format!("event {i} (seq {}) failed its checksum", ev.seq));
        }
        if ev.seq <= last_seq {
            return Err(format!(
                "event {i}: seq {} not strictly after {last_seq}",
                ev.seq
            ));
        }
        last_seq = ev.seq;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    fn concurrent_writers_never_tear_the_ring(
        scripts in proptest::collection::vec(
            proptest::collection::vec(any::<u16>(), 1..40),
            4,
        ),
        cap in 4usize..64,
    ) {
        let _l = locked();
        flight::set_enabled(true);
        flight::reset();
        flight::set_capacity(cap);
        std::thread::scope(|scope| {
            for (t, script) in scripts.iter().enumerate() {
                scope.spawn(move || {
                    for (i, &raw) in script.iter().enumerate() {
                        record(decode(t, i, raw));
                    }
                });
            }
        });
        flight::set_enabled(false);

        let total: u64 = scripts.iter().map(|s| s.len() as u64).sum();
        let stats = flight::stats();
        prop_assert_eq!(stats.recorded, total, "every commit lands exactly once");
        prop_assert_eq!(
            stats.stored as u64 + stats.evicted,
            total,
            "stored + evicted balances recorded"
        );
        prop_assert_eq!(stats.stored, (total as usize).min(cap));

        let events = flight::recent(cap + 10);
        prop_assert_eq!(events.len(), stats.stored);
        if let Err(msg) = check_ring(&events) {
            prop_assert!(false, "ring torn: {}", msg);
        }

        // Dumps are consistent frozen snapshots: every event verifies, the
        // trigger is present and last, sequence order holds, and the
        // window never exceeds DUMP_WINDOW.
        for dump in flight::dumps() {
            prop_assert!(dump.events.len() <= DUMP_WINDOW);
            if let Err(msg) = check_ring(&dump.events) {
                prop_assert!(false, "dump {} torn: {}", dump.id, msg);
            }
            let last = dump.events.last().expect("dump is never empty");
            prop_assert_eq!(last.seq, dump.trigger_seq, "trigger event is captured last");
            let anomalous = matches!(
                last.outcome,
                "deadline_miss" | "cert_reject" | "disagreement" | "admission_reject"
            ) || last.micros >= 1_000;
            prop_assert!(anomalous, "dump {} trigger {:?} is not anomalous", dump.id, last);
        }
        flight::reset();
        flight::set_capacity(flight::DEFAULT_CAPACITY);
    }

    /// A forged wide event — any single field flipped — fails its
    /// self-checksum; restoring the field restores the seal.
    fn tampering_always_breaks_the_seal(raw in any::<u16>(), field in 0usize..8) {
        let _l = locked();
        flight::set_enabled(true);
        flight::reset();
        record(decode(0, 0, raw));
        flight::set_enabled(false);
        let mut ev = flight::recent(1).pop().expect("one event recorded");
        prop_assert!(ev.verify(), "freshly committed event must verify");
        match field {
            0 => ev.req ^= 1,
            1 => ev.canon ^= 1,
            2 => ev.nops ^= 1,
            3 => ev.nodes ^= 1,
            4 => ev.micros ^= 1,
            5 => ev.optimal = !ev.optimal,
            6 => ev.tier = "forged",
            _ => ev.phases_us[3] ^= 1,
        }
        prop_assert!(!ev.verify(), "forged field {} must break the seal", field);
        flight::reset();
    }
}

/// Deterministic companion to the proptests: an outlier-latency trigger
/// captures its own triggering event even while three other threads are
/// committing healthy traffic around it.
#[test]
fn outlier_trigger_captures_the_offender_under_concurrency() {
    let _l = locked();
    flight::set_enabled(true);
    flight::reset();
    flight::set_capacity(flight::DEFAULT_CAPACITY);
    for i in 0..OUTLIER_MIN_SAMPLES as i64 {
        record(Req {
            id: i,
            micros: 120,
            outcome: Outcome::Ok,
        });
    }
    std::thread::scope(|scope| {
        for t in 1..4 {
            scope.spawn(move || {
                for i in 0..50 {
                    record(Req {
                        id: (t * 1_000 + i) as i64,
                        micros: 100,
                        outcome: Outcome::Ok,
                    });
                }
            });
        }
        scope.spawn(|| {
            record(Req {
                id: 666,
                micros: 60_000,
                outcome: Outcome::Ok,
            });
        });
    });
    flight::set_enabled(false);
    let dump = flight::dumps()
        .into_iter()
        .find(|d| d.anomaly == "latency_outlier")
        .expect("the 60 ms request trips the outlier trigger");
    let last = dump.events.last().unwrap();
    assert_eq!(last.req, 666);
    assert_eq!(last.seq, dump.trigger_seq);
    assert!(dump.events.iter().all(WideEvent::verify));
    flight::reset();
}
