//! Parallel branch-and-bound (extension; not in the paper).
//!
//! The serial search's first-level candidates are independent subtrees, so
//! they parallelize naturally: each worker owns a private
//! [`TimingEngine`] and explores one subtree, while the incumbent NOP count
//! is shared through an `AtomicU32` so a bound discovered by any worker
//! immediately prunes all others. The λ budget is likewise a shared atomic
//! counter.
//!
//! The parallel variant always runs the library's default configuration
//! (critical-path bound, lower-bound termination, paper equivalence rule,
//! no pipeline selection); ablations of the other knobs are a serial
//! concern. It returns the same optimal NOP count as the serial search
//! (asserted by the cross-check tests) — the *schedule* returned may be a
//! different optimum when several exist, because workers race to improve
//! the incumbent.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use parking_lot::Mutex;

use pipesched_ir::TupleId;

use crate::bnb::{SearchOutcome, SearchStats};
use crate::context::SchedContext;
use crate::timing::{evaluate_schedule, BoundaryState, TimingEngine};

struct Shared {
    best_nops: AtomicU32,
    omega_used: AtomicU64,
    lambda: u64,
    /// Anytime wall-clock deadline shared by all workers.
    deadline: Option<std::time::Instant>,
    deadline_hit: AtomicBool,
    /// Admissible lower bound on μ for the whole block; an incumbent at or
    /// below it is provably optimal and stops all workers early.
    global_lb: u32,
    stop: AtomicBool,
    proved: AtomicBool,
    best: Mutex<(Vec<TupleId>, u32)>,
}

/// Run the branch-and-bound search with `threads` workers (0 ⇒ one per
/// available CPU). Returns the same NOP count as the serial default search.
pub fn parallel_search(ctx: &SchedContext<'_>, lambda: u64, threads: usize) -> SearchOutcome {
    parallel_search_bounded(ctx, lambda, threads, None)
}

/// [`parallel_search`] with an anytime wall-clock deadline: all workers
/// stop once it passes and the incumbent is returned with `optimal=false`
/// and `stats.deadline_hit` set.
pub fn parallel_search_bounded(
    ctx: &SchedContext<'_>,
    lambda: u64,
    threads: usize,
    deadline: Option<std::time::Instant>,
) -> SearchOutcome {
    let n = ctx.len();
    // Shared search prologue (see `crate::seed`): heuristic incumbent +
    // the same admissible whole-block lower bound as the serial search.
    let seed = crate::seed::seed_incumbent(
        ctx,
        crate::bnb::InitialHeuristic::MaxDistance,
        &BoundaryState::cold(ctx.machine.pipeline_count()),
        false,
    );
    let initial_order = seed.order;
    let initial_nops = seed.nops;
    if n <= 1 {
        return SearchOutcome {
            order: initial_order.clone(),
            assignment: ctx.sigma.clone(),
            etas: seed.etas,
            nops: seed.nops,
            initial_order,
            initial_nops,
            optimal: true,
            stats: SearchStats::default(),
        };
    }

    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    };

    // First-level candidates: the ready instructions, with the initial
    // schedule's first instruction first (it reconstructs the incumbent),
    // and at most one representative per interchangeable-free class
    // (restricted rule [5c]).
    let mut roots: Vec<TupleId> = Vec::new();
    let mut seen_classes: Vec<u32> = Vec::new();
    let first = initial_order[0];
    for &t in std::iter::once(&first).chain(
        initial_order[1..]
            .iter()
            .filter(|&&t| ctx.preds[t.index()].is_empty()),
    ) {
        if let Some(class) = ctx.free_class[t.index()] {
            if seen_classes.contains(&class) {
                continue;
            }
            seen_classes.push(class);
        }
        roots.push(t);
    }

    // An incumbent matching the whole-block lower bound is provably
    // optimal without any exploration.
    let global_lb = seed.global_lb;
    if initial_nops <= global_lb {
        return SearchOutcome {
            order: initial_order.clone(),
            assignment: ctx.sigma.clone(),
            etas: seed.etas,
            nops: seed.nops,
            initial_order,
            initial_nops,
            optimal: true,
            stats: SearchStats {
                proved_by_bound: true,
                ..SearchStats::default()
            },
        };
    }

    if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
        // Out of time before any exploration: the list schedule answers.
        return SearchOutcome {
            order: initial_order.clone(),
            assignment: ctx.sigma.clone(),
            etas: seed.etas,
            nops: seed.nops,
            initial_order,
            initial_nops,
            optimal: false,
            stats: SearchStats {
                truncated: true,
                deadline_hit: true,
                ..SearchStats::default()
            },
        };
    }

    let shared = Shared {
        best_nops: AtomicU32::new(initial_nops),
        omega_used: AtomicU64::new(0),
        lambda,
        deadline,
        deadline_hit: AtomicBool::new(false),
        global_lb,
        stop: AtomicBool::new(false),
        proved: AtomicBool::new(false),
        best: Mutex::new((initial_order.clone(), initial_nops)),
    };
    let next_root = AtomicU64::new(0);
    let stats_acc = Mutex::new(SearchStats::default());

    crossbeam::scope(|scope| {
        for _ in 0..threads.min(roots.len()) {
            scope.spawn(|_| {
                let mut worker = Worker::new(ctx, &shared);
                loop {
                    let k = next_root.fetch_add(1, Ordering::Relaxed) as usize;
                    if k >= roots.len() || shared.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    worker.run_root(roots[k]);
                }
                let mut acc = stats_acc.lock();
                merge(&mut acc, &worker.stats);
            });
        }
    })
    .expect("worker panicked");

    let mut stats = *stats_acc.lock();
    stats.proved_by_bound = shared.proved.load(Ordering::Relaxed);
    stats.deadline_hit = !stats.proved_by_bound && shared.deadline_hit.load(Ordering::Relaxed);
    stats.truncated = !stats.proved_by_bound
        && shared.stop.load(Ordering::Relaxed)
        && (stats.deadline_hit || shared.omega_used.load(Ordering::Relaxed) >= lambda);
    let (best_order, best_nops) = shared.best.into_inner();
    let (etas, check) = evaluate_schedule(ctx, &best_order);
    debug_assert_eq!(check, best_nops);

    SearchOutcome {
        order: best_order,
        assignment: ctx.sigma.clone(),
        etas,
        nops: best_nops,
        initial_order,
        initial_nops,
        optimal: !stats.truncated,
        stats,
    }
}

fn merge(into: &mut SearchStats, from: &SearchStats) {
    into.nodes_visited += from.nodes_visited;
    into.omega_calls += from.omega_calls;
    into.complete_schedules += from.complete_schedules;
    into.improvements += from.improvements;
    into.pruned_quick += from.pruned_quick;
    into.pruned_legality += from.pruned_legality;
    into.pruned_equivalence += from.pruned_equivalence;
    into.pruned_bound += from.pruned_bound;
    into.pruned_symmetry += from.pruned_symmetry;
    into.truncated |= from.truncated;
    into.deadline_hit |= from.deadline_hit;
}

struct Worker<'c, 'a, 's> {
    ctx: &'c SchedContext<'a>,
    shared: &'s Shared,
    engine: TimingEngine<'c, 'a>,
    pending: Vec<u32>,
    placed: Vec<bool>,
    order: Vec<TupleId>,
    /// Unscheduled instructions per pipeline (for the resource bound).
    remaining: Vec<u32>,
    lb: crate::bounds::LowerBound,
    stats: SearchStats,
}

impl<'c, 'a, 's> Worker<'c, 'a, 's> {
    fn new(ctx: &'c SchedContext<'a>, shared: &'s Shared) -> Self {
        let n = ctx.len();
        let mut remaining = vec![0u32; ctx.machine.pipeline_count()];
        for i in 0..n {
            if let Some(p) = ctx.sigma[i] {
                remaining[p.index()] += 1;
            }
        }
        Worker {
            ctx,
            shared,
            engine: TimingEngine::new(ctx),
            pending: (0..n).map(|i| ctx.preds[i].len() as u32).collect(),
            placed: vec![false; n],
            order: Vec::with_capacity(n),
            remaining,
            lb: crate::bounds::LowerBound::new(ctx),
            stats: SearchStats::default(),
        }
    }

    fn run_root(&mut self, root: TupleId) {
        self.place(root);
        self.dfs();
        self.unplace(root);
    }

    fn place(&mut self, t: TupleId) {
        self.placed[t.index()] = true;
        for e in self.ctx.dag.succs(t) {
            self.pending[e.to.index()] -= 1;
        }
        if let Some(p) = self.ctx.sigma(t) {
            self.remaining[p.index()] -= 1;
        }
        self.engine.push_default(t);
        self.order.push(t);
    }

    fn unplace(&mut self, t: TupleId) {
        self.order.pop();
        self.engine.pop();
        if let Some(p) = self.ctx.sigma(t) {
            self.remaining[p.index()] += 1;
        }
        for e in self.ctx.dag.succs(t) {
            self.pending[e.to.index()] += 1;
        }
        self.placed[t.index()] = false;
    }

    /// Critical-path lower bound on any completion of the current prefix
    /// (same as the serial default search's bound).
    fn bound(&self) -> u32 {
        let n = self.ctx.len();
        let ready = (0..n)
            .filter(|&i| !self.placed[i] && self.pending[i] == 0)
            .map(|i| TupleId(i as u32));
        self.lb
            .bound(self.ctx, &self.engine, ready, &self.remaining)
    }

    fn dfs(&mut self) {
        let n = self.ctx.len();
        if self.order.len() == n {
            self.stats.complete_schedules += 1;
            let mu = self.engine.total_nops();
            // fetch_min keeps the atomic incumbent tight; the lock guards
            // the (order, μ) pair against torn updates.
            let prev = self.shared.best_nops.fetch_min(mu, Ordering::SeqCst);
            if mu < prev {
                self.stats.improvements += 1;
                let mut best = self.shared.best.lock();
                if mu < best.1 {
                    best.0.clone_from(&self.order);
                    best.1 = mu;
                }
                if mu <= self.shared.global_lb {
                    // Provably optimal: stop every worker, not truncated.
                    self.shared.proved.store(true, Ordering::Relaxed);
                    self.shared.stop.store(true, Ordering::Relaxed);
                }
            }
            return;
        }
        let mut seen_classes: Vec<u32> = Vec::new();
        for i in 0..n {
            if self.shared.stop.load(Ordering::Relaxed) {
                return;
            }
            if self.placed[i] || self.pending[i] > 0 {
                self.stats.pruned_legality += 1;
                continue;
            }
            let t = TupleId(i as u32);
            // Restricted rule [5c] within the worker: one representative
            // per interchangeable-free class.
            if let Some(class) = self.ctx.free_class[i] {
                if seen_classes.contains(&class) {
                    self.stats.pruned_equivalence += 1;
                    continue;
                }
                seen_classes.push(class);
            }

            self.stats.omega_calls += 1;
            let used = self.shared.omega_used.fetch_add(1, Ordering::Relaxed) + 1;
            if used >= self.shared.lambda {
                self.stats.truncated = true;
                self.shared.stop.store(true, Ordering::Relaxed);
            }
            if let Some(deadline) = self.shared.deadline {
                if self
                    .stats
                    .omega_calls
                    .is_multiple_of(crate::bnb::DEADLINE_CHECK_INTERVAL)
                    && std::time::Instant::now() >= deadline
                {
                    self.stats.truncated = true;
                    self.stats.deadline_hit = true;
                    self.shared.deadline_hit.store(true, Ordering::Relaxed);
                    self.shared.stop.store(true, Ordering::Relaxed);
                }
            }

            self.place(t);
            let bound = self.bound();
            if bound < self.shared.best_nops.load(Ordering::Relaxed)
                && !self.shared.stop.load(Ordering::Relaxed)
            {
                self.dfs();
            } else {
                self.stats.pruned_bound += 1;
            }
            self.unplace(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnb::{search, SearchConfig};
    use pipesched_ir::{analysis::verify_schedule, BlockBuilder, DepDag};
    use pipesched_machine::presets;

    fn sample_block(chains: usize) -> pipesched_ir::BasicBlock {
        let mut b = BlockBuilder::new("par");
        for i in 0..chains {
            let x = b.load(&format!("x{i}"));
            let y = b.load(&format!("y{i}"));
            let m = b.mul(x, y);
            b.store(&format!("r{i}"), m);
        }
        b.finish().unwrap()
    }

    #[test]
    fn parallel_matches_serial_optimum() {
        let block = sample_block(3);
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let serial = search(&ctx, &SearchConfig::with_lambda(u64::MAX));
        let par = parallel_search(&ctx, u64::MAX / 2, 4);
        assert!(serial.optimal && par.optimal);
        assert_eq!(par.nops, serial.nops);
        verify_schedule(&block, &dag, &par.order).unwrap();
    }

    #[test]
    fn single_thread_parallel_works() {
        let block = sample_block(2);
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let serial = search(&ctx, &SearchConfig::with_lambda(u64::MAX));
        let par = parallel_search(&ctx, u64::MAX / 2, 1);
        assert_eq!(par.nops, serial.nops);
    }

    #[test]
    fn tiny_blocks_short_circuit() {
        let mut b = BlockBuilder::new("tiny");
        b.load("x");
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let par = parallel_search(&ctx, 100, 8);
        assert!(par.optimal);
        assert_eq!(par.order.len(), 1);
    }

    #[test]
    fn lambda_truncates_in_parallel() {
        let block = sample_block(4);
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let par = parallel_search(&ctx, 5, 4);
        assert!(par.stats.truncated);
        assert!(!par.optimal);
        verify_schedule(&block, &dag, &par.order).unwrap();
        assert!(par.nops <= par.initial_nops);
    }
}
