//! Work-stealing parallel branch-and-bound (extension; not in the paper).
//!
//! Built on the unified policy-generic kernel in [`crate::bnb`]: every
//! worker runs the *same* `dfs` as the serial search, with a
//! [`SearchPolicy`] that (a) draws the λ budget from a pool-wide atomic,
//! (b) reads and publishes the incumbent through a shared `AtomicU32` so
//! an α-β bound discovered by any worker immediately prunes all others,
//! and (c) intercepts shallow placements (depth ≤
//! [`ParallelConfig::split_depth`]) as *subtree tasks* pushed onto the
//! worker's own Chase-Lev-style deque. An idle worker pops its own deque
//! LIFO (continuing depth-first where it left off) or steals FIFO from a
//! peer's top — the classic work-stealing discipline, so thieves take the
//! shallowest, largest subtrees.
//!
//! Two properties worth stating precisely:
//!
//! * **Deferred bound decision.** A spawned task records the placement's
//!   lower bound, but the bound-vs-incumbent comparison happens when the
//!   task is *popped*, against the incumbent of that moment. This is both
//!   tighter (the incumbent can only have improved since the spawn) and
//!   exactly serial-equivalent at one thread: with LIFO task order the pop
//!   sequence is the serial DFS order, so the comparison happens with
//!   precisely the incumbent the serial search would have had. With
//!   `lambda = u64::MAX`, no deadline and `terminate_on_lower_bound`
//!   off, one-thread parallel search reproduces the serial node,
//!   Ω-call and prune counters bit for bit (pinned by tests).
//! * **Full [`SearchConfig`] support.** The kernel is shared, so every
//!   ablation knob — bound kind, equivalence rule, quick check, λ,
//!   deadline — flows through unchanged. The one exception is
//!   `pipeline_selection`, whose per-unit symmetry state is not carried
//!   by task snapshots: those searches delegate to the serial kernel.
//!
//! # Parallel proofs
//!
//! [`parallel_prove`] produces a machine-checkable certificate (see
//! [`crate::proof`]) from a parallel run in two phases. Phase 1 is the
//! plain work-stealing search above: it finds the optimal μ\* and a best
//! order. Phase 2 re-derives the *transcript* with perfect foresight: the
//! driver enumerates the root candidates exactly as the serial kernel
//! would (legality, equivalence, bound terms), emits the best root
//! subtree first — its worker is seeded with the *initial* incumbent, so
//! its first descent logs `Improve{μ*}` before any other event — and
//! runs every other entered root subtree with incumbent μ\*, one serial
//! kernel per subtree, in parallel across subtrees. Because the replay
//! incumbent is μ\* from the second part on, every recorded bound prune
//! is justified, and the independent checker
//! (`pipesched_proof::check_certificate`) accepts the concatenation
//! unchanged. The per-subtree transcripts are exposed on
//! [`ParallelProof`] so tests can verify that tampering with (e.g.
//! dropping) any part is caught by the checker's coverage rules.
//!
//! The λ budget is shared across both phases: certification is search
//! work, and a budget too small to certify truncates the certificate
//! (`complete = false`, rejected by the checker) exactly like a truncated
//! serial proof run.
//!
//! # Concurrency checking
//!
//! All synchronization here goes through the `pipesched_check::sync`
//! facade (the atomics below, plus the `parking_lot`-shim mutex and the
//! crossbeam-shim deques, which route through the same facade). On a
//! normal build the facade is std; under `RUSTFLAGS="--cfg model"` every
//! operation becomes a scheduling point of the deterministic model
//! checker in `crates/check`, whose harnesses
//! (`crates/check/tests/model_*.rs`) explore the four protocols this
//! module relies on: deque push/pop/steal linearizability, incumbent
//! publication (`PoolPolicy::improved`), λ/deadline/stop monotonicity
//! (`note_stop`/`poll_stop`), and two-phase `parallel_prove` merge
//! completeness. Every `Ordering` choice below carries either an upgrade
//! demanded by those harnesses or a `relaxed-ok:` comment stating the
//! invariant that keeps `Relaxed` sound (enforced by the
//! `lint-atomics` source lint in CI).

use pipesched_check::sync::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

use crossbeam::deque::{Steal, Stealer, Worker as Deque};
use parking_lot::Mutex;

use pipesched_ir::TupleId;

use crate::bnb::{
    run_subtree, structural_classes, EquivalenceMode, SearchConfig, SearchOutcome, SearchPolicy,
    SearchStats,
};
use crate::bounds::{BoundKind, LowerBound};
use crate::context::SchedContext;
use crate::proof::{Certificate, CertificateHeader, CertificateTrailer, ProofEvent};
use crate::seed::{seed_incumbent, SearchSeed};
use crate::timing::{evaluate_schedule, BoundaryState, TimingEngine};

/// Depth limit below which placements become stealable subtree tasks when
/// the caller does not choose one. Depth 3 keeps the task count polynomial
/// in the block size while exposing far more parallelism than the old
/// first-level-only split.
pub const DEFAULT_SPLIT_DEPTH: usize = 3;

/// How a parallel search is distributed across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads (0 ⇒ one per available CPU).
    pub threads: usize,
    /// Placements at depth ≤ this become stealable subtree tasks; deeper
    /// subtrees run serially inside their worker. 0 disables splitting
    /// (the whole search runs as one task); a value ≥ the block length
    /// makes every single placement a task (the forced-steal stress mode).
    pub split_depth: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: 0,
            split_depth: DEFAULT_SPLIT_DEPTH,
        }
    }
}

impl ParallelConfig {
    /// Default splitting with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads,
            ..ParallelConfig::default()
        }
    }

    fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// One unit of stealable work: the subtree rooted at `order[..depth]`.
struct Task {
    /// Permutation of the block; positions < `depth` are the committed
    /// prefix, the suffix is the unscheduled scratch set.
    order: Vec<TupleId>,
    /// First undecided position.
    depth: usize,
    /// Lower bound on any completion, computed when the subtree was split
    /// off. Compared against the incumbent at *pop* time.
    bound: u32,
}

/// State shared by every worker of a pool run.
struct Shared {
    /// The pool-wide incumbent μ; `fetch_min` keeps it tight.
    best_nops: AtomicU32,
    /// Pool-wide Ω counter (the λ budget is charged here, not per worker).
    omega_used: AtomicU64,
    lambda: u64,
    /// `Some(lb)` when `terminate_on_lower_bound` is on.
    global_lb: Option<u32>,
    stop: AtomicBool,
    proved: AtomicBool,
    truncated: AtomicBool,
    deadline_hit: AtomicBool,
    /// Tasks queued or in flight; 0 ⇒ the search space is exhausted.
    pending: AtomicU64,
    /// The incumbent (order, μ) pair; the lock guards against torn updates.
    best: Mutex<(Vec<TupleId>, u32)>,
}

impl Shared {
    fn new(cfg: &SearchConfig, seed: &SearchSeed) -> Self {
        Shared {
            best_nops: AtomicU32::new(seed.nops),
            omega_used: AtomicU64::new(0),
            lambda: cfg.lambda,
            global_lb: cfg.terminate_on_lower_bound.then_some(seed.global_lb),
            stop: AtomicBool::new(false),
            proved: AtomicBool::new(false),
            truncated: AtomicBool::new(false),
            deadline_hit: AtomicBool::new(false),
            pending: AtomicU64::new(0),
            best: Mutex::new((seed.order.clone(), seed.nops)),
        }
    }

    /// Charge one Ω call against the pool budget; true ⇒ exhausted.
    fn charge_omega(&self) -> bool {
        // relaxed-ok: pure counter. The only decision made on the value is
        // "budget exhausted", which every worker re-derives from its own
        // fetch_add; the authoritative final read happens after scope join.
        self.omega_used.fetch_add(1, Ordering::Relaxed) + 1 >= self.lambda
    }

    /// Propagate a worker's local stop cause to the pool.
    fn note_stop(&self, stats: &SearchStats) {
        // relaxed-ok: the cause flags are written before the Release store
        // of `stop` below, so any worker (or the coordinator) that observes
        // `stop` with Acquire also observes them; the final authoritative
        // reads additionally happen after scope join.
        if stats.proved_by_bound {
            self.proved.store(true, Ordering::Relaxed);
        }
        if stats.deadline_hit {
            self.deadline_hit.store(true, Ordering::Relaxed);
        }
        if stats.truncated {
            // relaxed-ok: cause flag, published by the Release below.
            self.truncated.store(true, Ordering::Relaxed);
        }
        // Release publishes the cause flags with the stop signal. The
        // model checker's stop-protocol harness (and its dropped-Release
        // mutation, pinned to A0701) demands exactly this pairing with the
        // Acquire in `poll_stop`/`worker_loop`.
        self.stop.store(true, Ordering::Release);
    }
}

/// The phase-1 worker policy: shared budget/bounds plus subtree spawning.
struct PoolPolicy<'s> {
    shared: &'s Shared,
    split_depth: usize,
    /// Tasks spawned while running the current node, in enumeration
    /// order; flushed (reversed) onto the worker's deque afterwards so
    /// LIFO pops preserve the serial DFS order.
    spawned: Vec<Task>,
}

impl SearchPolicy for PoolPolicy<'_> {
    #[inline]
    fn charge_omega(&mut self) -> bool {
        self.shared.charge_omega()
    }

    #[inline]
    fn poll_stop(&mut self) -> bool {
        // Acquire pairs with the Release in `note_stop`: observing `stop`
        // also makes the cause flags (and anything the stopper published
        // before it) visible.
        self.shared.stop.load(Ordering::Acquire)
    }

    #[inline]
    fn shared_best(&mut self, local: u32) -> u32 {
        // relaxed-ok: the bound is only used to prune, and `fetch_min`
        // makes it monotone non-increasing — a stale read is merely a
        // looser bound, never an unsound one. Pinned by the incumbent
        // harness's monotonicity probe in crates/check.
        local.min(self.shared.best_nops.load(Ordering::Relaxed))
    }

    fn improved(&mut self, mu: u32, order: &[TupleId]) {
        // SeqCst gives all workers a single total order of incumbent
        // publications, so exactly one improver wins `mu < prev` per
        // value; the recheck under the payload lock below closes the
        // window between publication and payload write (the unguarded
        // variant is the A0705 mutation in crates/check).
        let prev = self.shared.best_nops.fetch_min(mu, Ordering::SeqCst);
        if mu < prev {
            let mut best = self.shared.best.lock();
            if mu < best.1 {
                best.0.clear();
                best.0.extend_from_slice(order);
                best.1 = mu;
            }
        }
    }

    fn stopping(&mut self, stats: &SearchStats) {
        self.shared.note_stop(stats);
    }

    fn spawn(&mut self, order: &[TupleId], depth: usize, bound: u32) -> bool {
        if depth <= self.split_depth {
            self.spawned.push(Task {
                order: order.to_vec(),
                depth,
                bound,
            });
            true
        } else {
            false
        }
    }
}

/// The phase-2 worker policy: serial kernel semantics (no shared
/// incumbent) plus transcript capture and the shared λ/stop plumbing.
struct ProvePolicy<'s> {
    shared: &'s Shared,
    events: Vec<ProofEvent>,
}

impl SearchPolicy for ProvePolicy<'_> {
    const PROOF: bool = true;

    #[inline]
    fn log(&mut self, ev: ProofEvent) {
        self.events.push(ev);
    }

    #[inline]
    fn charge_omega(&mut self) -> bool {
        self.shared.charge_omega()
    }

    #[inline]
    fn poll_stop(&mut self) -> bool {
        // Acquire pairs with the Release in `note_stop` (see
        // `PoolPolicy::poll_stop`).
        self.shared.stop.load(Ordering::Acquire)
    }

    fn stopping(&mut self, stats: &SearchStats) {
        self.shared.note_stop(stats);
    }
}

fn merge(into: &mut SearchStats, from: &SearchStats) {
    into.nodes_visited += from.nodes_visited;
    into.omega_calls += from.omega_calls;
    into.complete_schedules += from.complete_schedules;
    into.improvements += from.improvements;
    into.pruned_quick += from.pruned_quick;
    into.pruned_legality += from.pruned_legality;
    into.pruned_equivalence += from.pruned_equivalence;
    into.pruned_bound += from.pruned_bound;
    into.pruned_symmetry += from.pruned_symmetry;
    into.splits += from.splits;
    into.steals += from.steals;
    into.truncated |= from.truncated;
    into.deadline_hit |= from.deadline_hit;
    into.proved_by_bound |= from.proved_by_bound;
}

/// Steal one task from any peer (FIFO from the top of their deque).
fn steal_task(stealers: &[Stealer<Task>], me: usize, stats: &mut SearchStats) -> Option<Task> {
    for (i, s) in stealers.iter().enumerate() {
        if i == me {
            continue;
        }
        loop {
            match s.steal() {
                Steal::Success(t) => {
                    stats.steals += 1;
                    return Some(t);
                }
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    ctx: &SchedContext<'_>,
    cfg: &SearchConfig,
    boundary: &BoundaryState,
    shared: &Shared,
    split_depth: usize,
    own: &Deque<Task>,
    stealers: &[Stealer<Task>],
    me: usize,
) -> SearchStats {
    let mut stats = SearchStats::default();
    let mut policy = PoolPolicy {
        shared,
        split_depth,
        spawned: Vec::new(),
    };
    loop {
        // Acquire pairs with the Release in `note_stop`: a worker that
        // exits on the stop signal also sees the cause flags.
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let task = match own.pop() {
            Some(t) => Some(t),
            None => steal_task(stealers, me, &mut stats),
        };
        let Some(task) = task else {
            // Acquire pairs with the AcqRel counter updates below: a
            // worker that reads 0 has seen every completed task's pushes,
            // so an empty steal sweep really means the tree is done.
            if shared.pending.load(Ordering::Acquire) == 0 {
                break;
            }
            std::thread::yield_now();
            continue;
        };
        // Deferred step [6]: the bound recorded at split time against the
        // incumbent of *this* moment (it can only have tightened since).
        // relaxed-ok: monotone bound via fetch_min, used only to prune —
        // a stale read admits a subtree the serial search would cut, but
        // never cuts one it would keep.
        let best = shared.best_nops.load(Ordering::Relaxed);
        if task.bound < best {
            let st = run_subtree(
                ctx,
                cfg,
                boundary,
                task.order,
                task.depth,
                best,
                shared.global_lb,
                &mut policy,
            );
            merge(&mut stats, &st);
            // Publish before completing the task so `pending` never dips
            // to 0 while spawned work exists; reversed so LIFO pops keep
            // the serial DFS order.
            shared
                .pending
                .fetch_add(policy.spawned.len() as u64, Ordering::AcqRel);
            for t in policy.spawned.drain(..).rev() {
                own.push(t);
            }
        } else {
            stats.pruned_bound += 1;
        }
        // AcqRel: the Release half publishes this task's deque pushes to
        // whichever worker's Acquire read of `pending` observes the count;
        // the Acquire half keeps the counter a valid termination barrier
        // (a worker that reads 0 has seen every completed task's effects).
        // Explored by the merge harness in crates/check.
        shared.pending.fetch_sub(1, Ordering::AcqRel);
    }
    stats
}

/// Result of the phase-1 pool run.
struct PoolOutcome {
    best_order: Vec<TupleId>,
    best_nops: u32,
    stats: SearchStats,
    proved: bool,
    omega_used: u64,
}

/// Run the work-stealing pool over the whole tree (the root as one task).
fn pool_phase(
    ctx: &SchedContext<'_>,
    cfg: &SearchConfig,
    par: &ParallelConfig,
    boundary: &BoundaryState,
    seed: &SearchSeed,
) -> PoolOutcome {
    let threads = par.resolved_threads().max(1);
    let shared = Shared::new(cfg, seed);
    // The pool owns the λ budget; workers run the kernel with an infinite
    // local λ and charge the shared counter through the policy.
    let worker_cfg = SearchConfig {
        lambda: u64::MAX,
        ..*cfg
    };

    let deques: Vec<Deque<Task>> = (0..threads).map(|_| Deque::new_lifo()).collect();
    let stealers: Vec<Stealer<Task>> = deques.iter().map(|d| d.stealer()).collect();
    shared.pending.store(1, Ordering::Release);
    deques[0].push(Task {
        order: seed.order.clone(),
        depth: 0,
        bound: 0,
    });

    let stats_acc = Mutex::new(SearchStats::default());
    crossbeam::scope(|scope| {
        for (i, dq) in deques.iter().enumerate() {
            let stealers = &stealers;
            let shared = &shared;
            let stats_acc = &stats_acc;
            let worker_cfg = &worker_cfg;
            scope.spawn(move |_| {
                let st = worker_loop(
                    ctx,
                    worker_cfg,
                    boundary,
                    shared,
                    par.split_depth,
                    dq,
                    stealers,
                    i,
                );
                merge(&mut stats_acc.lock(), &st);
            });
        }
    })
    .expect("parallel search worker panicked");

    let mut stats = *stats_acc.lock();
    // relaxed-ok (all four loads): the scope join above happens-before
    // these reads, so every worker's final stores are already visible.
    let proved = shared.proved.load(Ordering::Relaxed);
    stats.proved_by_bound = proved;
    stats.deadline_hit = !proved && shared.deadline_hit.load(Ordering::Relaxed);
    stats.truncated = !proved && shared.truncated.load(Ordering::Relaxed);
    let omega_used = shared.omega_used.load(Ordering::Relaxed);
    let (best_order, best_nops) = shared.best.into_inner();
    PoolOutcome {
        best_order,
        best_nops,
        stats,
        proved,
        omega_used,
    }
}

/// Shared pre-search triage on the seed schedule. [`parallel_search`]
/// and [`parallel_prove`] early-out identically when the list schedule
/// already settles the instance; only the certificate plumbing differs.
enum SeedVerdict {
    /// The seed meets the whole-block lower bound: optimal, proved.
    Proved,
    /// The deadline expired before any exploration; the seed answers.
    DeadlineExpired,
    /// Nothing settled — run the pool.
    Search,
}

fn assess_seed(cfg: &SearchConfig, seed: &SearchSeed) -> SeedVerdict {
    if cfg.terminate_on_lower_bound && seed.proved_by_bound() {
        SeedVerdict::Proved
    } else if cfg.deadline.is_some_and(|d| std::time::Instant::now() >= d) {
        SeedVerdict::DeadlineExpired
    } else {
        SeedVerdict::Search
    }
}

/// Stats for a [`SeedVerdict::Proved`] early-out.
fn proved_stats() -> SearchStats {
    SearchStats {
        proved_by_bound: true,
        ..SearchStats::default()
    }
}

/// Stats for a [`SeedVerdict::DeadlineExpired`] early-out.
fn deadline_stats() -> SearchStats {
    SearchStats {
        truncated: true,
        deadline_hit: true,
        ..SearchStats::default()
    }
}

/// Build an outcome that simply returns the seed schedule.
fn seed_outcome(
    ctx: &SchedContext<'_>,
    seed: SearchSeed,
    optimal: bool,
    stats: SearchStats,
) -> SearchOutcome {
    SearchOutcome {
        order: seed.order.clone(),
        assignment: ctx.sigma.clone(),
        etas: seed.etas,
        nops: seed.nops,
        initial_order: seed.order,
        initial_nops: seed.nops,
        optimal,
        stats,
    }
}

/// Run the branch-and-bound search with a work-stealing worker pool.
///
/// Honors the full [`SearchConfig`] — bound kind, equivalence rule, quick
/// check, λ budget (shared pool-wide) and deadline — and returns the same
/// optimal NOP count as the serial [`crate::bnb::search`]. The *schedule*
/// returned may be a different optimum when several exist, because
/// workers race to improve the incumbent. `cfg.pipeline_selection`
/// delegates to the serial kernel (the task snapshots do not carry the
/// per-unit symmetry state).
pub fn parallel_search(
    ctx: &SchedContext<'_>,
    cfg: &SearchConfig,
    par: &ParallelConfig,
) -> SearchOutcome {
    if cfg.pipeline_selection {
        return crate::bnb::search(ctx, cfg);
    }
    let boundary = BoundaryState::cold(ctx.machine.pipeline_count());
    let seed = seed_incumbent(ctx, cfg.initial, &boundary, false);
    let n = ctx.len();
    if n <= 1 {
        return seed_outcome(ctx, seed, true, SearchStats::default());
    }
    match assess_seed(cfg, &seed) {
        SeedVerdict::Proved => return seed_outcome(ctx, seed, true, proved_stats()),
        SeedVerdict::DeadlineExpired => {
            // Out of time before any exploration: the list schedule answers.
            return seed_outcome(ctx, seed, false, deadline_stats());
        }
        SeedVerdict::Search => {}
    }

    let pool = pool_phase(ctx, cfg, par, &boundary, &seed);
    let (etas, check) = evaluate_schedule(ctx, &pool.best_order);
    debug_assert_eq!(check, pool.best_nops);

    SearchOutcome {
        order: pool.best_order,
        assignment: ctx.sigma.clone(),
        etas,
        nops: pool.best_nops,
        initial_order: seed.order,
        initial_nops: seed.nops,
        optimal: !pool.stats.truncated,
        stats: pool.stats,
    }
}

/// The pieces of a parallel optimality proof, before merging.
///
/// `parts` holds the event transcript split at the root dispositions, in
/// the order the merged certificate concatenates them: the best root
/// subtree first (so its `Improve{μ*}` precedes every other event), then
/// every other root candidate's disposition in serial enumeration order,
/// then the closing root `Leave` (absent when the stream ends in
/// `ProvedByBound`). Each entered subtree's part was produced by an
/// independent serial kernel run — dropping or reordering parts breaks
/// the checker's coverage replay, which is exactly what the tamper tests
/// assert.
#[derive(Debug, Clone)]
pub struct ParallelProof {
    /// Certificate header (identity + configuration of the run).
    pub header: CertificateHeader,
    /// Per-disposition event slices in merge order (see type docs).
    pub parts: Vec<Vec<ProofEvent>>,
    /// The final claim.
    pub trailer: CertificateTrailer,
}

impl ParallelProof {
    /// Concatenate the parts into the single certificate the independent
    /// checker replays.
    pub fn merge(&self) -> Certificate {
        Certificate {
            header: self.header.clone(),
            events: self.parts.concat(),
            trailer: self.trailer.clone(),
        }
    }
}

/// Root-level placement economics for one candidate: `(μ, bound, chain,
/// resource)` exactly as the serial kernel's `place_and_recurse` would
/// record them in a `BoundPrune`.
fn root_bound(
    ctx: &SchedContext<'_>,
    boundary: &BoundaryState,
    lower: Option<&LowerBound>,
    base_remaining: &[u32],
    xi: TupleId,
) -> (u32, u32, Option<i64>, Option<i64>) {
    let mut engine = TimingEngine::with_boundary(ctx, boundary);
    engine.push(xi, ctx.sigma(xi));
    let mu = engine.total_nops();
    let Some(lb) = lower else {
        return (mu, mu, None, None);
    };
    let mut remaining = base_remaining.to_vec();
    if let Some(p) = ctx.sigma(xi) {
        remaining[p.index()] -= 1;
    }
    let ready = (0..ctx.len()).filter_map(|i| {
        let t = TupleId(i as u32);
        if t == xi {
            return None;
        }
        let pending = ctx.preds[i].len() - ctx.dag.preds(t).iter().filter(|e| e.from == xi).count();
        (pending == 0).then_some(t)
    });
    let (chain, resource, bound) = lb.terms(ctx, &engine, ready, &remaining);
    (mu, bound, Some(chain), Some(resource))
}

/// One root-candidate disposition of the phase-2 enumeration.
enum RootDisp {
    /// The candidate is pruned at the root; the event is final.
    Prune(ProofEvent),
    /// The candidate's subtree is entered and searched by a worker.
    Enter {
        candidate: TupleId,
        /// Full permutation with the candidate at position 0.
        order: Vec<TupleId>,
        /// Incumbent the subtree kernel is seeded with (and the replay
        /// incumbent the checker will hold when this part begins).
        seed_nops: u32,
        /// Lower-bound termination, passed only to the best subtree.
        global_lb: Option<u32>,
    },
}

/// [`parallel_search`] while producing a machine-checkable optimality
/// certificate from per-subtree transcripts (see the module docs for the
/// two-phase construction). The merged certificate is accepted by
/// `pipesched_proof::check_certificate` unchanged whenever the run
/// completes within λ/deadline.
///
/// # Panics
///
/// Panics if `cfg.pipeline_selection` is set (as for the serial
/// [`crate::bnb::search_with_proof`]).
pub fn parallel_prove(
    ctx: &SchedContext<'_>,
    cfg: &SearchConfig,
    par: &ParallelConfig,
) -> (SearchOutcome, ParallelProof) {
    assert!(
        !cfg.pipeline_selection,
        "proof logging does not support the pipeline-selection extension"
    );
    let n = ctx.len();
    let boundary = BoundaryState::cold(ctx.machine.pipeline_count());
    if n == 0 {
        let outcome = SearchOutcome {
            order: Vec::new(),
            assignment: Vec::new(),
            etas: Vec::new(),
            nops: 0,
            initial_order: Vec::new(),
            initial_nops: 0,
            optimal: true,
            stats: SearchStats::default(),
        };
        let proof = ParallelProof {
            header: CertificateHeader {
                n: 0,
                bound: cfg.bound,
                equivalence: cfg.equivalence,
                initial_order: Vec::new(),
                initial_nops: 0,
            },
            parts: Vec::new(),
            trailer: CertificateTrailer {
                order: Vec::new(),
                nops: 0,
                complete: true,
            },
        };
        return (outcome, proof);
    }

    let seed = seed_incumbent(ctx, cfg.initial, &boundary, false);
    let header = CertificateHeader {
        n: n as u32,
        bound: cfg.bound,
        equivalence: cfg.equivalence,
        initial_order: seed.order.iter().map(|t| t.0).collect(),
        initial_nops: seed.nops,
    };

    match assess_seed(cfg, &seed) {
        SeedVerdict::Proved => {
            // Degenerate: the list schedule meets the whole-block bound.
            let lb = seed.global_lb;
            let trailer = CertificateTrailer {
                order: header.initial_order.clone(),
                nops: seed.nops,
                complete: true,
            };
            let outcome = seed_outcome(ctx, seed, true, proved_stats());
            let proof = ParallelProof {
                header,
                parts: vec![vec![ProofEvent::ProvedByBound { lb }]],
                trailer,
            };
            return (outcome, proof);
        }
        SeedVerdict::DeadlineExpired => {
            let trailer = CertificateTrailer {
                order: header.initial_order.clone(),
                nops: seed.nops,
                complete: false,
            };
            let outcome = seed_outcome(ctx, seed, false, deadline_stats());
            let proof = ParallelProof {
                header,
                parts: Vec::new(),
                trailer,
            };
            return (outcome, proof);
        }
        SeedVerdict::Search => {}
    }

    // ---- Phase 1: find μ* with the work-stealing pool. ----
    let pool = pool_phase(ctx, cfg, par, &boundary, &seed);
    let initial_order = seed.order.clone();
    let initial_nops = seed.nops;

    if pool.stats.truncated {
        // No optimality claim to certify; the incomplete trailer makes the
        // checker reject, exactly like a truncated serial proof run.
        let trailer = CertificateTrailer {
            order: pool.best_order.iter().map(|t| t.0).collect(),
            nops: pool.best_nops,
            complete: false,
        };
        let (etas, _) = evaluate_schedule(ctx, &pool.best_order);
        let outcome = SearchOutcome {
            order: pool.best_order.clone(),
            assignment: ctx.sigma.clone(),
            etas,
            nops: pool.best_nops,
            initial_order,
            initial_nops,
            optimal: false,
            stats: pool.stats,
        };
        let proof = ParallelProof {
            header,
            parts: Vec::new(),
            trailer,
        };
        return (outcome, proof);
    }

    // ---- Phase 2: re-derive the transcript with perfect foresight. ----
    let mu_star = pool.best_nops;
    let best_order = pool.best_order.clone();
    let kappa = initial_order[0];
    let c_star = best_order[0];
    let j_star = initial_order
        .iter()
        .position(|&t| t == c_star)
        .expect("best root candidate is in the block");
    let equiv_class =
        (cfg.equivalence == EquivalenceMode::Structural).then(|| structural_classes(ctx));
    let lower = (cfg.bound == BoundKind::CriticalPath).then(|| LowerBound::new(ctx));
    let mut base_remaining = vec![0u32; ctx.machine.pipeline_count()];
    for i in 0..n {
        if let Some(p) = ctx.sigma[i] {
            base_remaining[p.index()] += 1;
        }
    }
    let global_lb = cfg.terminate_on_lower_bound.then_some(seed.global_lb);

    // Root dispositions in merge order: best subtree first, then the other
    // candidates in the serial enumeration order.
    let mut disps: Vec<RootDisp> = Vec::with_capacity(n);
    disps.push(RootDisp::Enter {
        candidate: c_star,
        order: best_order.clone(),
        seed_nops: initial_nops,
        global_lb,
    });
    let mut tried_classes: Vec<(u32, TupleId)> = Vec::new();
    if let Some(classes) = &equiv_class {
        tried_classes.push((classes[c_star.index()], c_star));
    }
    for (j, &xi) in initial_order.iter().enumerate() {
        if j == j_star {
            continue;
        }
        // [5a]/[5b]: at the root both legality checks coincide (a
        // candidate is placeable iff it has no predecessors).
        if (cfg.quick_check && ctx.analysis.earliest(xi) > 0) || !ctx.preds[xi.index()].is_empty() {
            disps.push(RootDisp::Prune(ProofEvent::LegalityPrune {
                candidate: xi.0,
            }));
            continue;
        }
        // [5c]: mirror the serial kernel's equivalence filtering. The
        // hoisted best candidate is a valid witness for its own class —
        // its part precedes every prune in the merged stream.
        match cfg.equivalence {
            EquivalenceMode::Off => {}
            EquivalenceMode::Paper => {
                if j != 0 && ctx.interchangeable_free(kappa, xi) {
                    disps.push(RootDisp::Prune(ProofEvent::EquivalencePrune {
                        candidate: xi.0,
                        witness: kappa.0,
                    }));
                    continue;
                }
            }
            EquivalenceMode::UnrestrictedPaper => {
                if j != 0 && ctx.is_free_instruction(kappa) && ctx.is_free_instruction(xi) {
                    disps.push(RootDisp::Prune(ProofEvent::EquivalencePrune {
                        candidate: xi.0,
                        witness: kappa.0,
                    }));
                    continue;
                }
            }
            EquivalenceMode::Structural => {
                let classes = equiv_class.as_ref().expect("classes computed");
                let class = classes[xi.index()];
                if let Some(&(_, witness)) = tried_classes.iter().find(|(c, _)| *c == class) {
                    disps.push(RootDisp::Prune(ProofEvent::EquivalencePrune {
                        candidate: xi.0,
                        witness: witness.0,
                    }));
                    continue;
                }
                tried_classes.push((class, xi));
            }
        }
        // Step [6] against the replay incumbent, which is μ* from the
        // second part on (the best subtree's Improve precedes these).
        let (mu, bound, chain, resource) =
            root_bound(ctx, &boundary, lower.as_ref(), &base_remaining, xi);
        if bound < mu_star {
            let mut order = initial_order.clone();
            order.swap(0, j);
            disps.push(RootDisp::Enter {
                candidate: xi,
                order,
                seed_nops: mu_star,
                global_lb: None,
            });
        } else {
            disps.push(RootDisp::Prune(ProofEvent::BoundPrune {
                candidate: xi.0,
                mu,
                bound,
                chain,
                resource,
            }));
        }
    }

    // Fresh shared state for phase 2 — same λ pool, counting on from
    // phase 1's Ω spend; stop/proved flags reset so the subtree workers
    // actually run.
    let shared2 = Shared::new(cfg, &seed);
    // relaxed-ok: written before any phase-2 worker is spawned; the
    // spawn edge orders it for every reader.
    shared2.omega_used.store(pool.omega_used, Ordering::Relaxed);
    let worker_cfg = SearchConfig {
        lambda: u64::MAX,
        ..*cfg
    };

    let mut phase2_stats = SearchStats::default();
    let mut parts: Vec<Vec<ProofEvent>> = Vec::with_capacity(disps.len() + 1);

    // The best subtree runs first (serially): if it proves optimality by
    // bound, the certificate ends inside it and nothing else is emitted.
    let proved_in_part0;
    {
        let RootDisp::Enter {
            candidate,
            order,
            seed_nops,
            global_lb,
        } = &disps[0]
        else {
            unreachable!("part 0 is always the best subtree")
        };
        let mut policy = ProvePolicy {
            shared: &shared2,
            events: vec![ProofEvent::Enter {
                candidate: candidate.0,
            }],
        };
        let st = run_subtree(
            ctx,
            &worker_cfg,
            &boundary,
            order.clone(),
            1,
            *seed_nops,
            *global_lb,
            &mut policy,
        );
        merge(&mut phase2_stats, &st);
        proved_in_part0 = st.proved_by_bound;
        parts.push(policy.events);
    }

    // relaxed-ok: part 0 ran on this thread (program order); no other
    // thread is running yet.
    if !proved_in_part0 && !shared2.stop.load(Ordering::Relaxed) {
        // Every other disposition, in parallel across entered subtrees.
        type SubtreeSlot = Mutex<Option<(Vec<ProofEvent>, SearchStats)>>;
        let results: Vec<SubtreeSlot> = (0..disps.len()).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(1);
        let threads = par.resolved_threads().max(1).min(disps.len().max(1));
        crossbeam::scope(|scope| {
            for _ in 0..threads {
                let disps = &disps;
                let results = &results;
                let next = &next;
                let shared2 = &shared2;
                let worker_cfg = &worker_cfg;
                let boundary = &boundary;
                scope.spawn(move |_| loop {
                    // relaxed-ok: only the returned index is used — each
                    // claimed slot is a Mutex, and the final reads happen
                    // after scope join. Claim uniqueness needs atomicity,
                    // not ordering (merge-completeness harness).
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= disps.len() {
                        break;
                    }
                    let part = match &disps[i] {
                        RootDisp::Prune(ev) => (vec![*ev], SearchStats::default()),
                        RootDisp::Enter {
                            candidate,
                            order,
                            seed_nops,
                            global_lb,
                        } => {
                            let mut policy = ProvePolicy {
                                shared: shared2,
                                events: vec![ProofEvent::Enter {
                                    candidate: candidate.0,
                                }],
                            };
                            let st = run_subtree(
                                ctx,
                                worker_cfg,
                                boundary,
                                order.clone(),
                                1,
                                *seed_nops,
                                *global_lb,
                                &mut policy,
                            );
                            (policy.events, st)
                        }
                    };
                    *results[i].lock() = Some(part);
                });
            }
        })
        .expect("parallel prove worker panicked");
        for slot in results.into_iter().skip(1) {
            let (events, st) = slot.into_inner().expect("every disposition was processed");
            merge(&mut phase2_stats, &st);
            parts.push(events);
        }
        parts.push(vec![ProofEvent::Leave]);
    }

    // relaxed-ok (here and deadline_hit below): read after scope join /
    // single-threaded part 0 — all worker stores are already visible.
    let phase2_truncated = !proved_in_part0 && shared2.truncated.load(Ordering::Relaxed);
    let complete = !phase2_truncated;

    let trailer = CertificateTrailer {
        order: best_order.iter().map(|t| t.0).collect(),
        nops: mu_star,
        complete,
    };
    let (etas, check) = evaluate_schedule(ctx, &best_order);
    debug_assert_eq!(check, mu_star);

    let mut stats = pool.stats;
    merge(&mut stats, &phase2_stats);
    stats.proved_by_bound = pool.proved;
    stats.truncated = phase2_truncated;
    stats.deadline_hit = phase2_truncated && shared2.deadline_hit.load(Ordering::Relaxed);

    let outcome = SearchOutcome {
        order: best_order,
        assignment: ctx.sigma.clone(),
        etas,
        nops: mu_star,
        initial_order,
        initial_nops,
        // A truncated certification phase withdraws the optimality claim:
        // μ* is known optimal internally, but the caller asked for a
        // *checkable* run and the budget did not cover it.
        optimal: complete,
        stats,
    };
    (
        outcome,
        ParallelProof {
            header,
            parts,
            trailer,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnb::{search, SearchConfig};
    use pipesched_ir::{analysis::verify_schedule, BlockBuilder, DepDag};
    use pipesched_machine::presets;

    fn sample_block(chains: usize) -> pipesched_ir::BasicBlock {
        let mut b = BlockBuilder::new("par");
        for i in 0..chains {
            let x = b.load(&format!("x{i}"));
            let y = b.load(&format!("y{i}"));
            let m = b.mul(x, y);
            b.store(&format!("r{i}"), m);
        }
        b.finish().unwrap()
    }

    #[test]
    fn parallel_matches_serial_optimum() {
        let block = sample_block(3);
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let cfg = SearchConfig::with_lambda(u64::MAX);
        let serial = search(&ctx, &cfg);
        let par = parallel_search(&ctx, &cfg, &ParallelConfig::with_threads(4));
        assert!(serial.optimal && par.optimal);
        assert_eq!(par.nops, serial.nops);
        verify_schedule(&block, &dag, &par.order).unwrap();
    }

    /// Satellite regression: ablation knobs flow through the parallel
    /// search. A non-default configuration (the paper's α-β bound in
    /// place of the critical-path bound) must change the serial and
    /// one-thread-parallel node counts *identically* — before the kernel
    /// unification, `parallel_search` silently ran the default
    /// configuration.
    #[test]
    fn ablations_flow_through_the_pool() {
        let block = sample_block(3);
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        // One-thread parity needs the serial stop semantics untouched:
        // no λ, no deadline, no early lower-bound termination (a serial
        // mid-loop stop skips sibling Ω charges the pool pre-paid).
        let base = SearchConfig {
            lambda: u64::MAX,
            terminate_on_lower_bound: false,
            ..SearchConfig::default()
        };
        let off = SearchConfig {
            bound: BoundKind::AlphaBeta,
            ..base
        };
        let mut counts = Vec::new();
        for cfg in [&base, &off] {
            let serial = search(&ctx, cfg);
            let par = parallel_search(
                &ctx,
                cfg,
                &ParallelConfig {
                    threads: 1,
                    split_depth: 2,
                },
            );
            assert_eq!(par.nops, serial.nops);
            // Bit-exact counter parity at one thread.
            assert_eq!(par.stats.nodes_visited, serial.stats.nodes_visited);
            assert_eq!(par.stats.omega_calls, serial.stats.omega_calls);
            assert_eq!(
                par.stats.complete_schedules,
                serial.stats.complete_schedules
            );
            assert_eq!(par.stats.improvements, serial.stats.improvements);
            assert_eq!(par.stats.pruned_quick, serial.stats.pruned_quick);
            assert_eq!(par.stats.pruned_legality, serial.stats.pruned_legality);
            assert_eq!(
                par.stats.pruned_equivalence,
                serial.stats.pruned_equivalence
            );
            assert_eq!(par.stats.pruned_bound, serial.stats.pruned_bound);
            counts.push(serial.stats.nodes_visited);
        }
        // And the ablation really changed the search: the weaker α-β
        // bound prunes later, so the tree itself differs.
        assert_ne!(
            counts[0], counts[1],
            "bound ablation should change the node count"
        );
    }

    #[test]
    fn tiny_blocks_short_circuit() {
        let mut b = BlockBuilder::new("tiny");
        b.load("x");
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let par = parallel_search(
            &ctx,
            &SearchConfig::with_lambda(100),
            &ParallelConfig::with_threads(8),
        );
        assert!(par.optimal);
        assert_eq!(par.order.len(), 1);
    }

    #[test]
    fn lambda_truncates_in_parallel() {
        let block = sample_block(4);
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let par = parallel_search(
            &ctx,
            &SearchConfig::with_lambda(5),
            &ParallelConfig::with_threads(4),
        );
        assert!(par.stats.truncated);
        assert!(!par.optimal);
        verify_schedule(&block, &dag, &par.order).unwrap();
        assert!(par.nops <= par.initial_nops);
    }

    /// Forced-steal stress: with every placement its own task, workers
    /// other than the first can only obtain work by stealing.
    #[test]
    fn forced_steals_preserve_the_optimum() {
        let block = sample_block(3);
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let cfg = SearchConfig {
            lambda: u64::MAX,
            terminate_on_lower_bound: false,
            ..SearchConfig::default()
        };
        let serial = search(&ctx, &cfg);
        let par = ParallelConfig {
            threads: 4,
            split_depth: ctx.len(),
        };
        let mut saw_steal = false;
        for _ in 0..20 {
            let out = parallel_search(&ctx, &cfg, &par);
            assert_eq!(out.nops, serial.nops);
            assert!(out.optimal);
            assert!(out.stats.splits > 0, "1-tuple splits must create tasks");
            verify_schedule(&block, &dag, &out.order).unwrap();
            if out.stats.steals > 0 {
                saw_steal = true;
                break;
            }
        }
        assert!(
            saw_steal,
            "with single-placement tasks and 4 workers, at least one run must steal"
        );
    }

    /// Deadline hit under contention: an already-expired deadline returns
    /// the legal incumbent with `optimal = false`.
    #[test]
    fn deadline_under_contention_returns_legal_incumbent() {
        let block = sample_block(4);
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let cfg = SearchConfig {
            lambda: u64::MAX,
            terminate_on_lower_bound: false,
            deadline: Some(std::time::Instant::now()),
            ..SearchConfig::default()
        };
        let out = parallel_search(&ctx, &cfg, &ParallelConfig::with_threads(4));
        assert!(!out.optimal);
        assert!(out.stats.deadline_hit);
        verify_schedule(&block, &dag, &out.order).unwrap();
        assert!(out.nops <= out.initial_nops);
    }

    #[test]
    fn prove_parts_have_the_documented_shape() {
        let block = sample_block(3);
        let dag = DepDag::build(&block);
        let machine = presets::functional_units();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let cfg = SearchConfig {
            lambda: u64::MAX,
            terminate_on_lower_bound: false,
            ..SearchConfig::default()
        };
        let (out, proof) = parallel_prove(&ctx, &cfg, &ParallelConfig::with_threads(2));
        assert!(out.optimal);
        let serial = search(&ctx, &cfg);
        assert_eq!(out.nops, serial.nops);
        // Part 0 is the best subtree: it starts with Enter{best root}.
        assert!(matches!(
            proof.parts[0].first(),
            Some(ProofEvent::Enter { candidate }) if *candidate == out.order[0].0
        ));
        // If the pool improved on the seed, the best part contains the
        // Improve{μ*} that justifies every later bound prune.
        if out.nops < out.initial_nops {
            assert!(proof.parts[0]
                .iter()
                .any(|e| matches!(e, ProofEvent::Improve { mu } if *mu == out.nops)));
        }
        // The last part closes the root node.
        assert_eq!(proof.parts.last(), Some(&vec![ProofEvent::Leave]));
        // The trailer claims exactly the returned schedule.
        assert_eq!(proof.trailer.nops, out.nops);
        assert!(proof.trailer.complete);
        let merged = proof.merge();
        assert_eq!(
            merged.events.len(),
            proof.parts.iter().map(Vec::len).sum::<usize>()
        );
    }
}
