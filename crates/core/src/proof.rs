//! Machine-checkable optimality certificates for the branch-and-bound
//! search.
//!
//! A certificate is an append-only transcript of every *node disposition*
//! the search made: which candidate extensions were placed and explored,
//! which were pruned, and by exactly what evidence — the concrete
//! lower-bound derivation for a bound prune ([`ProofEvent::BoundPrune`]
//! records μ(Φ) plus the chain and resource terms of
//! [`crate::bounds::LowerBound`]), the witness pair for an equivalence
//! prune, and the incumbent chain of complete schedules. Replayed in
//! order, the events reconstruct the entire case analysis: every schedule
//! of the block either extends an `Enter`ed prefix (and was searched) or
//! extends a pruned one (and is dominated by the recorded evidence).
//!
//! The types here are *recording-side only* — plain data plus a logger.
//! The independent checker lives in the `pipesched-proof` crate and shares
//! no code with the search engine: it re-derives every μ, bound term and
//! witness condition from the analyze crate's third timing implementation
//! and rejects the certificate (diagnostic codes `A04xx`) on any
//! disagreement.
//!
//! # Event grammar
//!
//! The stream is the depth-first traversal order of the search tree. A
//! node at depth `d` (a committed prefix of `d` instructions) emits one
//! event per unscheduled instruction — `Enter`, `LegalityPrune`,
//! `EquivalencePrune` or `BoundPrune` — followed by [`ProofEvent::Leave`].
//! An `Enter` descends: the events of the child node follow immediately,
//! and a child at depth `n` emits [`ProofEvent::Complete`] or
//! [`ProofEvent::Improve`] instead of a `Leave`. When the incumbent
//! reaches the block's admissible global lower bound the search stops and
//! [`ProofEvent::ProvedByBound`] terminates the stream — the remaining
//! coverage obligation is discharged by the bound itself, which the
//! checker re-derives.
//!
//! # Wire format
//!
//! [`Certificate::to_ndjson`] streams as newline-delimited
//! `pipesched-json`: an object header, one compact array per event (tag
//! letter first), and an object trailer. Tuple ids are 0-based.

use std::io::Write;

use pipesched_json::{json_object, Json};

use crate::bnb::{EquivalenceMode, SearchOutcome};
use crate::bounds::BoundKind;

/// One node disposition in the search's depth-first transcript.
///
/// `candidate`/`witness` are 0-based tuple ids; μ and bounds are NOP
/// counts as the search computed them (the checker re-derives each).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofEvent {
    /// `candidate` was placed at the current depth and its subtree was
    /// searched: the child node's events follow.
    Enter {
        /// Tuple placed at the current depth.
        candidate: u32,
    },
    /// The current node has dispositioned every unscheduled instruction;
    /// return to the parent.
    Leave,
    /// `candidate` cannot legally occupy the current depth: at least one
    /// immediate predecessor is still unscheduled (covers both the quick
    /// `earliest(ξ)` check [5a] and the readiness counter check [5b] —
    /// the prefix is a down-set, so the two justifications coincide).
    LegalityPrune {
        /// Rejected tuple.
        candidate: u32,
    },
    /// `candidate` is interchangeable with `witness`, which was already
    /// placed (entered or bound-pruned) at this same node; exploring the
    /// candidate would relabel an already-covered subtree.
    EquivalencePrune {
        /// Skipped tuple.
        candidate: u32,
        /// The interchangeable tuple already tried at this node.
        witness: u32,
    },
    /// `candidate` was placed, but every completion of the extended prefix
    /// needs at least `bound` NOPs — no better than the incumbent — so
    /// the subtree was abandoned.
    BoundPrune {
        /// Rejected tuple (placed, evaluated, then removed).
        candidate: u32,
        /// μ of the prefix including the candidate.
        mu: u32,
        /// The recorded lower bound on any completion's μ.
        bound: u32,
        /// Chain-term maximum of the critical-path bound (`None` for the
        /// paper's plain α-β bound, where `bound == mu`).
        chain: Option<i64>,
        /// Resource-term maximum of the critical-path bound (`None` for
        /// α-β).
        resource: Option<i64>,
    },
    /// A complete schedule with cost `mu ≥` incumbent was reached.
    Complete {
        /// μ of the completed schedule.
        mu: u32,
    },
    /// A complete schedule improved the incumbent to `mu`; the current
    /// prefix becomes the new best order.
    Improve {
        /// The new incumbent μ.
        mu: u32,
    },
    /// The incumbent reached the block's admissible global lower bound
    /// `lb`; the search stopped with optimality proven. Always the final
    /// event of its stream.
    ProvedByBound {
        /// The admissible global lower bound on μ.
        lb: u32,
    },
}

/// Identity and configuration of the search run a certificate describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificateHeader {
    /// Number of instructions in the block.
    pub n: u32,
    /// Pruning bound the search used.
    pub bound: BoundKind,
    /// Equivalence-filter mode the search used.
    pub equivalence: EquivalenceMode,
    /// The initial incumbent order (0-based tuple ids).
    pub initial_order: Vec<u32>,
    /// μ of the initial incumbent.
    pub initial_nops: u32,
}

/// Final claim of a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificateTrailer {
    /// The best order found (0-based tuple ids).
    pub order: Vec<u32>,
    /// μ of that order — the optimality claim.
    pub nops: u32,
    /// True when the search ran to completion (was not curtailed by λ or
    /// a deadline). Only complete certificates can certify optimality.
    pub complete: bool,
}

/// A complete optimality certificate: header, event transcript, trailer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Search identity and configuration.
    pub header: CertificateHeader,
    /// The node-disposition transcript in depth-first order.
    pub events: Vec<ProofEvent>,
    /// The final claim.
    pub trailer: CertificateTrailer,
}

const FORMAT: &str = "pipesched-proof";
const VERSION: i64 = 1;

fn bound_kind_name(b: BoundKind) -> &'static str {
    match b {
        BoundKind::AlphaBeta => "alpha-beta",
        BoundKind::CriticalPath => "critical-path",
    }
}

fn bound_kind_from_name(s: &str) -> Option<BoundKind> {
    match s {
        "alpha-beta" => Some(BoundKind::AlphaBeta),
        "critical-path" => Some(BoundKind::CriticalPath),
        _ => None,
    }
}

fn equivalence_name(e: EquivalenceMode) -> &'static str {
    match e {
        EquivalenceMode::Off => "off",
        EquivalenceMode::Paper => "paper",
        EquivalenceMode::UnrestrictedPaper => "unrestricted-paper",
        EquivalenceMode::Structural => "structural",
    }
}

fn equivalence_from_name(s: &str) -> Option<EquivalenceMode> {
    match s {
        "off" => Some(EquivalenceMode::Off),
        "paper" => Some(EquivalenceMode::Paper),
        "unrestricted-paper" => Some(EquivalenceMode::UnrestrictedPaper),
        "structural" => Some(EquivalenceMode::Structural),
        _ => None,
    }
}

fn header_line(h: &CertificateHeader) -> String {
    json_object![
        ("format", FORMAT),
        ("version", VERSION),
        ("n", h.n),
        ("bound", bound_kind_name(h.bound)),
        ("equivalence", equivalence_name(h.equivalence)),
        ("initial_order", h.initial_order.clone()),
        ("initial_nops", h.initial_nops),
    ]
    .to_compact()
}

fn trailer_line(t: &CertificateTrailer) -> String {
    json_object![
        ("order", t.order.clone()),
        ("nops", t.nops),
        ("complete", t.complete),
    ]
    .to_compact()
}

fn event_line(ev: &ProofEvent) -> String {
    fn arr(parts: Vec<Json>) -> String {
        Json::Array(parts).to_compact()
    }
    let tag = |s: &str| Json::Str(s.to_string());
    let int = |v: i64| Json::Int(v);
    match *ev {
        ProofEvent::Enter { candidate } => arr(vec![tag("E"), int(candidate.into())]),
        ProofEvent::Leave => arr(vec![tag("L")]),
        ProofEvent::LegalityPrune { candidate } => arr(vec![tag("P"), int(candidate.into())]),
        ProofEvent::EquivalencePrune { candidate, witness } => {
            arr(vec![tag("Q"), int(candidate.into()), int(witness.into())])
        }
        ProofEvent::BoundPrune {
            candidate,
            mu,
            bound,
            chain,
            resource,
        } => arr(vec![
            tag("B"),
            int(candidate.into()),
            int(mu.into()),
            int(bound.into()),
            chain.map_or(Json::Null, Json::Int),
            resource.map_or(Json::Null, Json::Int),
        ]),
        ProofEvent::Complete { mu } => arr(vec![tag("C"), int(mu.into())]),
        ProofEvent::Improve { mu } => arr(vec![tag("I"), int(mu.into())]),
        ProofEvent::ProvedByBound { lb } => arr(vec![tag("G"), int(lb.into())]),
    }
}

fn parse_u32(v: Option<&Json>) -> Result<u32, String> {
    v.and_then(Json::as_i64)
        .and_then(|i| u32::try_from(i).ok())
        .ok_or_else(|| "expected a non-negative integer".to_string())
}

fn parse_u32_array(v: Option<&Json>) -> Result<Vec<u32>, String> {
    v.and_then(Json::as_array)
        .ok_or_else(|| "expected an array".to_string())?
        .iter()
        .map(|e| parse_u32(Some(e)))
        .collect()
}

fn parse_event(line: &str) -> Result<ProofEvent, String> {
    let doc = pipesched_json::parse(line).map_err(|e| format!("event line: {e}"))?;
    let parts = doc.as_array().ok_or("event line is not an array")?;
    let tag = parts.first().and_then(Json::as_str).ok_or("missing tag")?;
    let nth = |i: usize| parse_u32(parts.get(i));
    let opt_i64 = |i: usize| -> Result<Option<i64>, String> {
        match parts.get(i) {
            Some(Json::Null) => Ok(None),
            Some(v) => v.as_i64().map(Some).ok_or_else(|| "bad term".to_string()),
            None => Err("missing bound term".to_string()),
        }
    };
    match tag {
        "E" => Ok(ProofEvent::Enter { candidate: nth(1)? }),
        "L" => Ok(ProofEvent::Leave),
        "P" => Ok(ProofEvent::LegalityPrune { candidate: nth(1)? }),
        "Q" => Ok(ProofEvent::EquivalencePrune {
            candidate: nth(1)?,
            witness: nth(2)?,
        }),
        "B" => Ok(ProofEvent::BoundPrune {
            candidate: nth(1)?,
            mu: nth(2)?,
            bound: nth(3)?,
            chain: opt_i64(4)?,
            resource: opt_i64(5)?,
        }),
        "C" => Ok(ProofEvent::Complete { mu: nth(1)? }),
        "I" => Ok(ProofEvent::Improve { mu: nth(1)? }),
        "G" => Ok(ProofEvent::ProvedByBound { lb: nth(1)? }),
        other => Err(format!("unknown event tag `{other}`")),
    }
}

impl Certificate {
    /// A certificate that proves optimality of `order` purely by the
    /// block's admissible global lower bound: the schedule's μ matches
    /// `lb`, so no search is needed. Used by schedulers that obtain an
    /// LB-matching schedule by other means (a heuristic or windowed tier).
    pub fn by_bound(n: u32, order: Vec<u32>, nops: u32, lb: u32) -> Certificate {
        Certificate {
            header: CertificateHeader {
                n,
                bound: BoundKind::CriticalPath,
                equivalence: EquivalenceMode::Off,
                initial_order: order.clone(),
                initial_nops: nops,
            },
            events: vec![ProofEvent::ProvedByBound { lb }],
            trailer: CertificateTrailer {
                order,
                nops,
                complete: true,
            },
        }
    }

    /// Serialize to newline-delimited `pipesched-json` (header line, one
    /// compact array per event, trailer line).
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        out.push_str(&header_line(&self.header));
        out.push('\n');
        for ev in &self.events {
            out.push_str(&event_line(ev));
            out.push('\n');
        }
        out.push_str(&trailer_line(&self.trailer));
        out.push('\n');
        out
    }

    /// Stream the NDJSON serialization to `w`.
    pub fn write_ndjson<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(self.to_ndjson().as_bytes())
    }

    /// Parse a certificate back from its NDJSON serialization.
    pub fn from_ndjson(text: &str) -> Result<Certificate, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header_text = lines.next().ok_or("empty certificate")?;
        let h = pipesched_json::parse(header_text).map_err(|e| format!("header: {e}"))?;
        if h.get("format").and_then(Json::as_str) != Some(FORMAT) {
            return Err("not a pipesched-proof certificate".to_string());
        }
        if h.get("version").and_then(Json::as_i64) != Some(VERSION) {
            return Err("unsupported certificate version".to_string());
        }
        let header = CertificateHeader {
            n: parse_u32(h.get("n")).map_err(|e| format!("header n: {e}"))?,
            bound: h
                .get("bound")
                .and_then(Json::as_str)
                .and_then(bound_kind_from_name)
                .ok_or("header: unknown bound kind")?,
            equivalence: h
                .get("equivalence")
                .and_then(Json::as_str)
                .and_then(equivalence_from_name)
                .ok_or("header: unknown equivalence mode")?,
            initial_order: parse_u32_array(h.get("initial_order"))
                .map_err(|e| format!("header initial_order: {e}"))?,
            initial_nops: parse_u32(h.get("initial_nops"))
                .map_err(|e| format!("header initial_nops: {e}"))?,
        };
        let mut events = Vec::new();
        let mut trailer = None;
        for line in lines {
            if trailer.is_some() {
                return Err("content after the trailer line".to_string());
            }
            if line.trim_start().starts_with('{') {
                let t = pipesched_json::parse(line).map_err(|e| format!("trailer: {e}"))?;
                trailer = Some(CertificateTrailer {
                    order: parse_u32_array(t.get("order"))
                        .map_err(|e| format!("trailer order: {e}"))?,
                    nops: parse_u32(t.get("nops")).map_err(|e| format!("trailer nops: {e}"))?,
                    complete: t
                        .get("complete")
                        .and_then(Json::as_bool)
                        .ok_or("trailer: missing complete flag")?,
                });
            } else {
                events.push(parse_event(line)?);
            }
        }
        Ok(Certificate {
            header,
            events,
            trailer: trailer.ok_or("certificate has no trailer line")?,
        })
    }

    /// Build-stable FNV-1a digest of the canonical NDJSON serialization;
    /// the serving layer attaches this to cache entries so a memoized hit
    /// can name the proof that certified it.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.update(&header_line(&self.header));
        for ev in &self.events {
            d.update(&event_line(ev));
        }
        d.update(&trailer_line(&self.trailer));
        d.finish()
    }
}

/// Running FNV-1a/64 over serialized certificate lines (newline-framed, so
/// the digest of a streamed proof equals [`Certificate::digest`] of the
/// same transcript held in memory).
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, line: &str) {
        for &b in line.as_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 ^= u64::from(b'\n');
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

enum Sink {
    /// Keep the transcript in memory and return a [`Certificate`].
    Memory(Vec<ProofEvent>),
    /// Stream each line to a writer as it is logged (constant memory).
    Stream(Box<dyn Write + Send>),
}

/// Records the search transcript, either in memory or streamed to a
/// writer. Create with [`ProofLogger::in_memory`] or
/// [`ProofLogger::streaming`] and pass to
/// [`crate::search_with_proof`]; the search drives the
/// begin/log/finish lifecycle.
pub struct ProofLogger {
    sink: Sink,
    header: Option<CertificateHeader>,
    digest: Digest,
    events: u64,
    io_error: Option<String>,
}

/// What a finished [`ProofLogger`] produced.
#[derive(Debug)]
pub struct ProofOutput {
    /// The certificate (in-memory loggers only; streamed proofs live in
    /// the writer).
    pub certificate: Option<Certificate>,
    /// FNV-1a digest of the serialized transcript (identical for memory
    /// and streamed sinks).
    pub digest: u64,
    /// Number of events logged.
    pub events: u64,
    /// First I/O error hit while streaming, if any (a streamed proof with
    /// an error is incomplete on disk and must not be trusted).
    pub io_error: Option<String>,
}

impl ProofLogger {
    /// A logger that accumulates the transcript in memory.
    pub fn in_memory() -> Self {
        ProofLogger {
            sink: Sink::Memory(Vec::new()),
            header: None,
            digest: Digest::new(),
            events: 0,
            io_error: None,
        }
    }

    /// A logger that streams NDJSON lines to `w` as they are produced.
    pub fn streaming(w: Box<dyn Write + Send>) -> Self {
        ProofLogger {
            sink: Sink::Stream(w),
            header: None,
            digest: Digest::new(),
            events: 0,
            io_error: None,
        }
    }

    fn write_line(&mut self, line: &str) {
        self.digest.update(line);
        if let Sink::Stream(w) = &mut self.sink {
            if self.io_error.is_none() {
                if let Err(e) = w
                    .write_all(line.as_bytes())
                    .and_then(|()| w.write_all(b"\n"))
                {
                    self.io_error = Some(e.to_string());
                }
            }
        }
    }

    /// Record the header. Called once by the search before any event.
    pub fn begin(&mut self, header: CertificateHeader) {
        let line = header_line(&header);
        self.write_line(&line);
        self.header = Some(header);
    }

    /// Append one event to the transcript.
    pub fn log(&mut self, ev: ProofEvent) {
        self.events += 1;
        let line = event_line(&ev);
        self.write_line(&line);
        if let Sink::Memory(events) = &mut self.sink {
            events.push(ev);
        }
    }

    /// Close the transcript with `trailer` and return what was recorded.
    pub fn finish(mut self, trailer: CertificateTrailer) -> ProofOutput {
        let line = trailer_line(&trailer);
        self.write_line(&line);
        if let Sink::Stream(w) = &mut self.sink {
            if self.io_error.is_none() {
                if let Err(e) = w.flush() {
                    self.io_error = Some(e.to_string());
                }
            }
        }
        let header = self
            .header
            .expect("ProofLogger::finish called before begin");
        let certificate = match self.sink {
            Sink::Memory(events) => Some(Certificate {
                header,
                events,
                trailer,
            }),
            Sink::Stream(_) => None,
        };
        ProofOutput {
            certificate,
            digest: self.digest.finish(),
            events: self.events,
            io_error: self.io_error,
        }
    }
}

/// Convert a [`SearchOutcome`] into the trailer its certificate claims.
pub fn trailer_for(outcome: &SearchOutcome) -> CertificateTrailer {
    CertificateTrailer {
        order: outcome.order.iter().map(|t| t.0).collect(),
        nops: outcome.nops,
        complete: !outcome.stats.truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Certificate {
        Certificate {
            header: CertificateHeader {
                n: 3,
                bound: BoundKind::CriticalPath,
                equivalence: EquivalenceMode::Paper,
                initial_order: vec![0, 1, 2],
                initial_nops: 4,
            },
            events: vec![
                ProofEvent::Enter { candidate: 0 },
                ProofEvent::LegalityPrune { candidate: 2 },
                ProofEvent::Enter { candidate: 1 },
                ProofEvent::Enter { candidate: 2 },
                ProofEvent::Improve { mu: 3 },
                ProofEvent::Leave,
                ProofEvent::BoundPrune {
                    candidate: 2,
                    mu: 4,
                    bound: 5,
                    chain: Some(6),
                    resource: None,
                },
                ProofEvent::EquivalencePrune {
                    candidate: 1,
                    witness: 0,
                },
                ProofEvent::Leave,
                ProofEvent::Complete { mu: 7 },
                ProofEvent::ProvedByBound { lb: 3 },
            ],
            trailer: CertificateTrailer {
                order: vec![0, 1, 2],
                nops: 3,
                complete: true,
            },
        }
    }

    #[test]
    fn ndjson_round_trip() {
        let cert = sample();
        let text = cert.to_ndjson();
        let parsed = Certificate::from_ndjson(&text).unwrap();
        assert_eq!(parsed, cert);
        assert_eq!(parsed.digest(), cert.digest());
    }

    #[test]
    fn streamed_digest_matches_in_memory() {
        let cert = sample();
        let mut logger = ProofLogger::streaming(Box::new(std::io::sink()));
        logger.begin(cert.header.clone());
        for &ev in &cert.events {
            logger.log(ev);
        }
        let streamed = logger.finish(cert.trailer.clone());
        assert!(streamed.certificate.is_none());
        assert!(streamed.io_error.is_none());
        assert_eq!(streamed.digest, cert.digest());
        assert_eq!(streamed.events, cert.events.len() as u64);

        let mut mem = ProofLogger::in_memory();
        mem.begin(cert.header.clone());
        for &ev in &cert.events {
            mem.log(ev);
        }
        let kept = mem.finish(cert.trailer.clone());
        assert_eq!(kept.certificate.as_ref(), Some(&cert));
        assert_eq!(kept.digest, cert.digest());
    }

    #[test]
    fn by_bound_certificate_shape() {
        let cert = Certificate::by_bound(2, vec![1, 0], 1, 1);
        assert_eq!(cert.events, vec![ProofEvent::ProvedByBound { lb: 1 }]);
        assert!(cert.trailer.complete);
        let text = cert.to_ndjson();
        assert_eq!(Certificate::from_ndjson(&text).unwrap(), cert);
    }

    #[test]
    fn rejects_malformed_text() {
        assert!(Certificate::from_ndjson("").is_err());
        assert!(Certificate::from_ndjson("{\"format\":\"x\"}\n").is_err());
        let cert = sample();
        let mut text = cert.to_ndjson();
        text.push_str("[\"E\",9]\n");
        assert!(
            Certificate::from_ndjson(&text).is_err(),
            "events after the trailer are malformed"
        );
    }
}
