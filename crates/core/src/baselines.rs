//! Baseline schedulers the paper compares against (Table 1 and §1).
//!
//! * [`exhaustive_calls`] — the `n!` column of Table 1: the number of Ω
//!   calls a fully unpruned search would make;
//! * [`enumerate_legal`] — "pruning illegal" (Table 1 column 3): walk every
//!   *legal* topological order, evaluating each complete schedule once;
//! * [`greedy_schedule`] — a Gross-style greedy heuristic (single pass, no
//!   backtracking), representative of the postpass schedulers of [Gro83]
//!   and [AbP88].

use pipesched_ir::TupleId;

use crate::context::SchedContext;
use crate::timing::TimingEngine;

/// Exact `n!` when it fits in `u128`, `None` beyond (21! overflows nothing —
/// u128 holds up to 34!; larger blocks return `None`).
pub fn exhaustive_calls(n: usize) -> Option<u128> {
    let mut acc: u128 = 1;
    for k in 2..=n as u128 {
        acc = acc.checked_mul(k)?;
    }
    Some(acc)
}

/// `n!` as a float for display of very large blocks (matches the paper's
/// scientific-notation column).
pub fn exhaustive_calls_approx(n: usize) -> f64 {
    (2..=n).map(|k| k as f64).product()
}

/// Result of the legality-only enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LegalityOutcome {
    /// Complete legal schedules evaluated (Ω calls in Table 1's sense).
    pub omega_calls: u64,
    /// Minimum μ found.
    pub best_nops: u32,
    /// True when the enumeration hit `cap` and stopped early.
    pub truncated: bool,
}

/// Enumerate every legal topological order of the block, evaluating each
/// complete schedule, up to `cap` schedules (the paper reports one Table 1
/// entry as `>9,999,000` — they capped this column too).
pub fn enumerate_legal(ctx: &SchedContext<'_>, cap: u64) -> LegalityOutcome {
    let n = ctx.len();
    let mut pending: Vec<u32> = (0..n).map(|i| ctx.preds[i].len() as u32).collect();
    let mut engine = TimingEngine::new(ctx);
    let mut out = LegalityOutcome {
        omega_calls: 0,
        best_nops: u32::MAX,
        truncated: false,
    };
    if n == 0 {
        out.best_nops = 0;
        out.omega_calls = 1;
        return out;
    }
    let mut placed = vec![false; n];
    enumerate(
        ctx,
        &mut engine,
        &mut pending,
        &mut placed,
        0,
        cap,
        &mut out,
    );
    out
}

fn enumerate(
    ctx: &SchedContext<'_>,
    engine: &mut TimingEngine<'_, '_>,
    pending: &mut [u32],
    placed: &mut [bool],
    depth: usize,
    cap: u64,
    out: &mut LegalityOutcome,
) {
    let n = ctx.len();
    if depth == n {
        out.omega_calls += 1;
        out.best_nops = out.best_nops.min(engine.total_nops());
        if out.omega_calls >= cap {
            out.truncated = true;
        }
        return;
    }
    for i in 0..n {
        if out.truncated {
            return;
        }
        if placed[i] || pending[i] > 0 {
            continue;
        }
        let t = TupleId(i as u32);
        placed[i] = true;
        for e in ctx.dag.succs(t) {
            pending[e.to.index()] -= 1;
        }
        engine.push_default(t);
        enumerate(ctx, engine, pending, placed, depth + 1, cap, out);
        engine.pop();
        for e in ctx.dag.succs(t) {
            pending[e.to.index()] += 1;
        }
        placed[i] = false;
    }
}

/// A Gross-style greedy scheduler: repeatedly issue, among the ready
/// instructions, one that can start soonest (fewest NOPs right now),
/// breaking ties toward taller instructions. Single pass, no backtracking;
/// fast but not optimal.
pub fn greedy_schedule(ctx: &SchedContext<'_>) -> (Vec<TupleId>, u32) {
    let n = ctx.len();
    let mut pending: Vec<u32> = (0..n).map(|i| ctx.preds[i].len() as u32).collect();
    let mut placed = vec![false; n];
    let mut engine = TimingEngine::new(ctx);
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best: Option<(i64, std::cmp::Reverse<u32>, u32)> = None;
        let mut pick = None;
        for i in 0..n {
            if placed[i] || pending[i] > 0 {
                continue;
            }
            let t = TupleId(i as u32);
            let est = engine.earliest_issue(t, ctx.sigma(t));
            let key = (est, std::cmp::Reverse(ctx.analysis.height(t)), t.0);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
                pick = Some(t);
            }
        }
        let t = pick.expect("DAG is acyclic, so some instruction is ready");
        placed[t.index()] = true;
        for e in ctx.dag.succs(t) {
            pending[e.to.index()] -= 1;
        }
        engine.push_default(t);
        order.push(t);
    }
    let total = engine.total_nops();
    (order, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnb::{search, SearchConfig};
    use pipesched_ir::{analysis::verify_schedule, BlockBuilder, DepDag};
    use pipesched_machine::presets;

    #[test]
    fn factorials() {
        assert_eq!(exhaustive_calls(0), Some(1));
        assert_eq!(exhaustive_calls(8), Some(40_320));
        assert_eq!(exhaustive_calls(13), Some(6_227_020_800));
        assert!(exhaustive_calls(40).is_none());
        let approx = exhaustive_calls_approx(16);
        assert!((approx - 2.09e13).abs() / 2.09e13 < 0.01, "{approx}");
    }

    #[test]
    fn legality_enumeration_counts_topological_orders() {
        // Two independent load→store chains: orders of {l1,s1}×{l2,s2}
        // interleavings = C(4,2) = 6.
        let mut b = BlockBuilder::new("count");
        let l1 = b.load("a");
        b.store("ra", l1);
        let l2 = b.load("b");
        b.store("rb", l2);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let out = enumerate_legal(&ctx, u64::MAX);
        assert_eq!(out.omega_calls, 6);
        assert!(!out.truncated);
    }

    #[test]
    fn legality_cap_truncates() {
        let mut b = BlockBuilder::new("cap");
        for i in 0..6 {
            b.load(&format!("x{i}"));
        }
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let out = enumerate_legal(&ctx, 10);
        assert!(out.truncated);
        assert_eq!(out.omega_calls, 10);
    }

    #[test]
    fn bnb_matches_legality_enumeration_optimum() {
        let mut b = BlockBuilder::new("xcheck");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        let a = b.add(x, y);
        b.store("m", m);
        b.store("a", a);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let brute = enumerate_legal(&ctx, u64::MAX);
        let smart = search(&ctx, &SearchConfig::default());
        assert!(smart.optimal);
        assert_eq!(smart.nops, brute.best_nops);
    }

    #[test]
    fn greedy_is_legal_and_at_least_as_bad_as_optimal() {
        let mut b = BlockBuilder::new("greedy");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        let m2 = b.mul(m, x);
        b.store("r", m2);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let (order, nops) = greedy_schedule(&ctx);
        verify_schedule(&block, &dag, &order).unwrap();
        let smart = search(&ctx, &SearchConfig::default());
        assert!(nops >= smart.nops);
    }

    #[test]
    fn empty_block_baselines() {
        let block = BlockBuilder::new("e").finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let out = enumerate_legal(&ctx, 100);
        assert_eq!(out.best_nops, 0);
        let (order, nops) = greedy_schedule(&ctx);
        assert!(order.is_empty());
        assert_eq!(nops, 0);
    }
}
