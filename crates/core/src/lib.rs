#![warn(missing_docs)]

//! The optimal pipeline scheduler of Nisar & Dietz (1990).
//!
//! This crate is the paper's primary contribution: a branch-and-bound
//! search over legal instruction orders of a basic block that finds the
//! schedule needing the **minimum number of NOPs** under a multiple-pipeline
//! machine model, pruned aggressively but without ever pruning the optimum
//! (§4.2), with a curtail point `λ` bounding worst-case work (§2.3).
//!
//! Layout:
//!
//! * [`context`] — per-block scheduling context (DAG + machine binding);
//! * [`timing`] — the incremental NOP-insertion algorithm (§4.2.2) with
//!   O(1) undo, the engine every search below shares;
//! * [`list_sched`] — the machine-independent list-scheduling heuristic that
//!   seeds the search with a good incumbent (§3.2);
//! * [`bnb`] — the pruned search procedure itself (§4.2.3);
//! * [`bounds`] — the paper's α-β bound plus an optional admissible
//!   critical-path strengthening (extension);
//! * [`baselines`] — exhaustive search, legality-only-pruned search, and a
//!   Gross-style greedy scheduler, used by the paper's Table 1 comparison;
//! * [`parallel`] — a parallel branch-and-bound variant (extension) sharing
//!   an atomic incumbent across threads;
//! * [`profile`] — per-depth search profiling (nodes, prune counts, time),
//!   attached through an `Option`-gated hook like the proof logger;
//! * [`windowed`] — §5.3's future-work feature: locally-optimal scheduling
//!   of very large blocks by partitioning the list schedule into windows;
//! * [`sequence`] — footnote 1's block-interaction machinery: scheduling a
//!   straight-line sequence of blocks with pipeline state carried across
//!   each boundary;
//! * [`seed`] — the shared search prologue (heuristic incumbent + global
//!   lower bound) every exact backend starts from;
//! * [`proof`] — recording-side types for machine-checkable optimality
//!   certificates (the independent checker lives in `pipesched-proof`);
//! * [`api`] — the high-level [`Scheduler`](api::Scheduler) facade.

pub mod api;
pub mod baselines;
pub mod bnb;
pub mod bounds;
pub mod context;
pub mod list_sched;
pub mod parallel;
pub mod profile;
pub mod proof;
pub mod seed;
pub mod sequence;
pub mod timing;
pub mod windowed;

pub use api::{Backend, ScheduledBlock, Scheduler};
pub use bnb::{
    prove, search, search_with_boundary, search_with_profile, search_with_proof, BoundKind,
    EquivalenceMode, InitialHeuristic, SearchConfig, SearchOutcome, SearchStats,
};
pub use bounds::global_lower_bound;
pub use context::SchedContext;
pub use list_sched::list_schedule;
pub use parallel::{parallel_prove, parallel_search, ParallelConfig, ParallelProof};
pub use profile::{DepthStats, SearchProfile};
pub use proof::{
    trailer_for, Certificate, CertificateHeader, CertificateTrailer, ProofEvent, ProofLogger,
    ProofOutput,
};
pub use seed::{seed_incumbent, SearchSeed};
pub use sequence::{schedule_sequence, ScheduledRegion, SequenceOutcome};
pub use timing::{BoundaryState, TimingEngine};
pub use windowed::{windowed_schedule, windowed_schedule_bounded, WindowedOutcome};
