//! Scheduling straight-line *sequences* of basic blocks (footnote 1).
//!
//! Instructions never move across a block boundary (they are separate
//! scheduling units), but the pipeline state does: if block A's last
//! instruction enqueues a multiply, block B's first multiply must respect
//! the multiplier's enqueue time, and the η of B's first instruction prices
//! that in. Each block is scheduled by the full branch-and-bound search
//! seeded with the [`BoundaryState`] its predecessor left behind.
//!
//! Memory-carried dependences across blocks need no extra machinery in the
//! default machine models: a `Store` uses no pipelined resource, so its
//! value is architecturally visible by the time the next block issues its
//! first instruction. (For machines that give stores a pipeline, the
//! sequence scheduler conservatively ages that pipeline at the boundary
//! exactly like any other.)

use pipesched_ir::{BasicBlock, DepDag, TupleId};
use pipesched_machine::Machine;

use crate::bnb::{search_with_boundary, SearchConfig, SearchStats};
use crate::context::SchedContext;
use crate::timing::{BoundaryState, TimingEngine};

/// One scheduled block of a sequence.
#[derive(Debug, Clone)]
pub struct ScheduledRegion {
    /// Block name (for diagnostics).
    pub name: String,
    /// Instruction order within the block.
    pub order: Vec<TupleId>,
    /// η per position, *including* any boundary-induced stall before the
    /// first instruction.
    pub etas: Vec<u32>,
    /// μ for this block alone.
    pub nops: u32,
    /// Whether this block's search completed.
    pub optimal: bool,
}

/// Result of scheduling a block sequence.
#[derive(Debug, Clone)]
pub struct SequenceOutcome {
    /// Per-block results, in sequence order.
    pub regions: Vec<ScheduledRegion>,
    /// Total NOPs across the whole sequence.
    pub total_nops: u32,
    /// Combined search counters.
    pub stats: SearchStats,
}

/// Schedule `blocks` in order on `machine`, carrying pipeline state across
/// each boundary.
pub fn schedule_sequence(
    blocks: &[BasicBlock],
    machine: &Machine,
    cfg: &SearchConfig,
) -> SequenceOutcome {
    let mut boundary = BoundaryState::cold(machine.pipeline_count());
    let mut regions = Vec::with_capacity(blocks.len());
    let mut total_nops = 0u32;
    let mut stats = SearchStats::default();

    for block in blocks {
        let dag = DepDag::build(block);
        let ctx = SchedContext::new(block, &dag, machine);
        let out = search_with_boundary(&ctx, cfg, &boundary);

        // Replay the chosen schedule to capture the outgoing boundary.
        let mut engine = TimingEngine::with_boundary(&ctx, &boundary);
        for &t in &out.order {
            engine.push(t, out.assignment[t.index()]);
        }
        boundary = engine.capture_boundary();

        total_nops += out.nops;
        merge_stats(&mut stats, &out.stats);
        regions.push(ScheduledRegion {
            name: block.name.clone(),
            order: out.order,
            etas: out.etas,
            nops: out.nops,
            optimal: out.optimal,
        });
    }

    SequenceOutcome {
        regions,
        total_nops,
        stats,
    }
}

fn merge_stats(into: &mut SearchStats, from: &SearchStats) {
    into.nodes_visited += from.nodes_visited;
    into.omega_calls += from.omega_calls;
    into.complete_schedules += from.complete_schedules;
    into.improvements += from.improvements;
    into.pruned_quick += from.pruned_quick;
    into.pruned_legality += from.pruned_legality;
    into.pruned_equivalence += from.pruned_equivalence;
    into.pruned_bound += from.pruned_bound;
    into.pruned_symmetry += from.pruned_symmetry;
    into.truncated |= from.truncated;
    into.proved_by_bound |= from.proved_by_bound;
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::BlockBuilder;
    use pipesched_machine::presets;

    /// A block ending in a multiply (long latency, enqueue 2).
    fn mul_tail(name: &str) -> BasicBlock {
        let mut b = BlockBuilder::new(name);
        let x = b.load("x");
        let m = b.mul(x, x);
        b.store("z", m);
        b.finish().unwrap()
    }

    /// A block *starting* with a multiply.
    fn mul_head(name: &str) -> BasicBlock {
        let mut b = BlockBuilder::new(name);
        let y = b.load("y");
        let m = b.mul(y, y);
        b.store("w", m);
        b.finish().unwrap()
    }

    #[test]
    fn boundary_state_carries_conflicts() {
        let machine = presets::paper_simulation();
        let a = mul_tail("a");
        let b = mul_head("b");

        let seq = schedule_sequence(&[a.clone(), b.clone()], &machine, &SearchConfig::default());
        assert_eq!(seq.regions.len(), 2);

        // Scheduling b cold must not be more expensive than scheduling it
        // after a's multiplier traffic.
        let cold = schedule_sequence(&[b], &machine, &SearchConfig::default());
        assert!(seq.regions[1].nops >= cold.regions[0].nops);
        assert_eq!(
            seq.total_nops,
            seq.regions.iter().map(|r| r.nops).sum::<u32>()
        );
    }

    #[test]
    fn boundary_conflict_actually_bites() {
        // The recovery-unit multiplier (latency 2, enqueue 6) is still
        // recovering when the next block's multiply wants to issue: the
        // carried boundary must charge a strictly positive extra stall.
        let machine = presets::recovery_unit();
        let mut a = BlockBuilder::new("a");
        let xa = a.load("x");
        let ma = a.mul(xa, xa);
        a.store("ra", ma);
        let a = a.finish().unwrap();

        let seq_cold =
            schedule_sequence(std::slice::from_ref(&a), &machine, &SearchConfig::default());
        let seq = schedule_sequence(&[a.clone(), a.clone()], &machine, &SearchConfig::default());
        assert!(
            seq.regions[1].nops > seq_cold.regions[0].nops,
            "expected a strict boundary stall: {} vs {}",
            seq.regions[1].nops,
            seq_cold.regions[0].nops
        );
        assert_eq!(seq.regions[0].nops, seq_cold.regions[0].nops);
    }

    #[test]
    fn empty_sequence_and_empty_blocks() {
        let machine = presets::paper_simulation();
        let seq = schedule_sequence(&[], &machine, &SearchConfig::default());
        assert_eq!(seq.total_nops, 0);
        assert!(seq.regions.is_empty());

        let empty = BlockBuilder::new("e").finish().unwrap();
        let seq = schedule_sequence(&[empty, mul_tail("t")], &machine, &SearchConfig::default());
        assert_eq!(seq.regions.len(), 2);
        assert_eq!(seq.regions[0].nops, 0);
    }

    #[test]
    fn capture_boundary_round_trip() {
        let machine = presets::paper_simulation();
        let block = mul_tail("rt");
        let dag = DepDag::build(&block);
        let ctx = SchedContext::new(&block, &dag, &machine);
        let mut engine = TimingEngine::new(&ctx);
        for t in block.ids() {
            engine.push_default(t);
        }
        let boundary = engine.capture_boundary();
        // loader used at cycle 0; mul at 2; store σ=∅. Last issue = store
        // at 6; next cycle = 7.
        assert_eq!(boundary.pipe_age[0], Some(7), "loader age");
        assert_eq!(boundary.pipe_age[2], Some(5), "multiplier age");
        assert_eq!(boundary.pipe_age[1], None, "adder untouched");
    }
}
