//! The pruned schedule search procedure (§4.2.3).
//!
//! The search is a depth-first walk over prefixes of legal schedules. Depth
//! `i` decides which instruction occupies position `i`; candidates are
//! drawn from the unscheduled suffix of the current ordering Π (initially
//! the list schedule), with the instruction already at position `i` tried
//! first — so the first full descent reproduces the initial incumbent and
//! the α-β bound is tight from the start.
//!
//! Pruning devices, mapped to the paper's step numbers:
//!
//! * **[5a] quick legality** — `earliest(ξ) ≤ i` (definition 6) rejects a
//!   candidate without touching the readiness counters. The other half of
//!   the paper's check, `latest(κ) ≥ Π⁻¹(ξ)`, constrains the instruction
//!   displaced *out* of position `i`; our enumeration treats the suffix as
//!   unordered scratch (every later depth rescans all of Ψ), so that half
//!   is vacuous here and is not applied.
//! * **[5b] real legality** — all of ξ's immediate predecessors are already
//!   scheduled (O(1) via a pending-predecessor counter).
//! * **[5c] equivalence** — skip swapping two *interchangeable free*
//!   instructions: both `σ = ∅` and `ρ = ∅` **and identical successor
//!   sets**. The paper's printed rule omits the successor condition, and
//!   our brute-force property suite found a counterexample for the
//!   unrestricted rule: two constants feeding *different* consumers are not
//!   order-equivalent, because placing one first makes different
//!   instructions ready at the intermediate depths (e.g. `Const→Mul` vs
//!   `Const→Add` chains on a high-enqueue machine lose one NOP of the
//!   optimum). With the successor restriction the swap is a pure
//!   relabeling — identical timing and identical readiness — so pruning it
//!   is safe, and the restricted rule still fires on the common case of
//!   duplicate literals. [`EquivalenceMode::Structural`] extends the idea
//!   to classes of instructions with identical operation, predecessor set
//!   and successor set.
//! * **[6] α-β bound** — extend a partial schedule only while its NOP count
//!   (optionally strengthened by [`BoundKind::CriticalPath`]) is strictly
//!   below the incumbent's.
//! * **[4] curtail point λ** — hard cap on Ω calls; hitting it returns the
//!   best schedule found with `optimal = false`.
//!
//! With [`SearchConfig::pipeline_selection`] enabled the search also chooses
//! *which* unit executes each instruction when the machine maps an
//! operation to several pipelines (the feature §4.1 footnote 3 excludes
//! from the paper's algorithm), with symmetry breaking over units in
//! identical states.

use pipesched_ir::{analysis::verify_schedule, TupleId};
use pipesched_machine::PipelineId;

pub use crate::bounds::BoundKind;
use crate::bounds::LowerBound;
use crate::context::SchedContext;
use crate::profile::{DepthStats, SearchProfile};
use crate::proof::{
    trailer_for, Certificate, CertificateHeader, ProofEvent, ProofLogger, ProofOutput,
};
use crate::timing::{BoundaryState, TimingEngine};

/// Which heuristic seeds the search's initial incumbent (step [1]).
/// §3.2 notes that "any other scheduling technique proposed in the
/// literature ... could be applied to find this initial schedule"; the
/// quality of the incumbent controls how early the α-β bound bites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitialHeuristic {
    /// The paper's [ZaD90] max-producer-consumer-distance list schedule
    /// (machine-independent).
    #[default]
    MaxDistance,
    /// Source/program order — what naive code generation emits.
    SourceOrder,
    /// The Gross-style machine-aware greedy schedule.
    Greedy,
}

/// How aggressively provably-equivalent schedules are filtered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EquivalenceMode {
    /// No equivalence filtering (for ablation).
    Off,
    /// The paper's rule [5c]: both instructions pipeline-free and
    /// dependence-free.
    #[default]
    Paper,
    /// The paper's rule [5c] exactly as printed — **without** the
    /// identical-successor-set restriction the module docs explain. This
    /// rule is *unsound* (it can prune the only optimal schedules); the
    /// variant exists so the proof checker's rejection of over-pruning
    /// certificates can be demonstrated and tested, and for ablation.
    /// Never use it to produce schedules you intend to trust.
    UnrestrictedPaper,
    /// Structural interchangeability classes (strict superset of `Paper`).
    Structural,
}

/// Tunable parameters of the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchConfig {
    /// Curtail point λ: maximum Ω calls before truncation (§2.3).
    pub lambda: u64,
    /// Pruning bound (paper α-β or strengthened critical path).
    pub bound: BoundKind,
    /// Equivalent-schedule filtering mode.
    pub equivalence: EquivalenceMode,
    /// Choose among multiple pipelines per op (extension; §4.1 footnote 3).
    pub pipeline_selection: bool,
    /// Apply the quick [5a] pre-check (for ablation; never affects results).
    pub quick_check: bool,
    /// Heuristic for the initial incumbent (step [1]).
    pub initial: InitialHeuristic,
    /// Stop with an optimality *proof* as soon as the incumbent's NOP count
    /// reaches the admissible critical-path/resource lower bound of the
    /// whole block (an implementation strengthening beyond the paper: it
    /// never changes which schedule is found, only how quickly the search
    /// can prove it optimal instead of exhausting the space).
    pub terminate_on_lower_bound: bool,
    /// Wall-clock deadline: the search stops (anytime, returning the
    /// incumbent with `optimal = false`) once `Instant::now()` passes it.
    /// Checked every [`DEADLINE_CHECK_INTERVAL`] Ω calls so the hot path
    /// never reads the clock. `None` disables the deadline (the default).
    pub deadline: Option<std::time::Instant>,
}

/// Ω calls between wall-clock reads when a deadline is set. A power of two
/// so the throttle is a mask; small enough that the overshoot past the
/// deadline stays in the tens of microseconds on any realistic block.
pub const DEADLINE_CHECK_INTERVAL: u64 = 512;

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            // §5.3 used curtail points "large relative to the number of
            // items searched for an optimal search of an average block";
            // the truncated runs averaged 54,150 Ω calls.
            lambda: 50_000,
            bound: BoundKind::CriticalPath,
            equivalence: EquivalenceMode::Paper,
            pipeline_selection: false,
            quick_check: true,
            initial: InitialHeuristic::MaxDistance,
            terminate_on_lower_bound: true,
            deadline: None,
        }
    }
}

impl SearchConfig {
    /// Config with a specific curtail point.
    pub fn with_lambda(lambda: u64) -> Self {
        SearchConfig {
            lambda,
            ..Self::default()
        }
    }

    /// Builder-style deadline override (see [`SearchConfig::deadline`]).
    pub fn with_deadline(mut self, deadline: Option<std::time::Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// The paper's algorithm exactly as §4.2.3 describes it: plain α-β
    /// bound, rule-[5c] equivalence, no lower-bound termination. Used by
    /// the ablation experiments; the library default strengthens the bound
    /// (provably without changing which schedule is found).
    pub fn paper_exact() -> Self {
        SearchConfig {
            bound: BoundKind::AlphaBeta,
            terminate_on_lower_bound: false,
            ..Self::default()
        }
    }
}

/// Counters describing one search run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Search-tree nodes visited: one per committed prefix whose
    /// extensions were enumerated (the root counts; complete schedules
    /// count). For a completed, non-stopped, non-selection search this
    /// satisfies `nodes_visited == 1 + omega_calls - pruned_bound`.
    pub nodes_visited: u64,
    /// Ω calls: incremental NOP-insertion evaluations (one per placement).
    pub omega_calls: u64,
    /// Complete schedules reached.
    pub complete_schedules: u64,
    /// Times the incumbent improved.
    pub improvements: u64,
    /// Candidates rejected by the quick [5a] check.
    pub pruned_quick: u64,
    /// Candidates rejected by the readiness test [5b].
    pub pruned_legality: u64,
    /// Candidates rejected by the equivalence filter [5c].
    pub pruned_equivalence: u64,
    /// Subtrees abandoned by the α-β / lower-bound test [6].
    pub pruned_bound: u64,
    /// Pipeline-unit choices skipped by symmetry breaking.
    pub pruned_symmetry: u64,
    /// Subtrees offloaded to a work-stealing pool at a split point
    /// (always 0 in serial searches).
    pub splits: u64,
    /// Offloaded subtrees executed by a worker other than the one that
    /// split them off (always 0 in serial searches).
    pub steals: u64,
    /// True when λ or the wall-clock deadline was exhausted before the
    /// search completed.
    pub truncated: bool,
    /// True when the truncation was caused by the wall-clock deadline
    /// (implies `truncated`).
    pub deadline_hit: bool,
    /// True when the search stopped early because the incumbent reached the
    /// admissible global lower bound (still a proof of optimality).
    pub proved_by_bound: bool,
}

impl SearchStats {
    /// Candidates rejected by any pruning rule — the single "pruned"
    /// number wide events and dashboards report.
    pub fn pruned_total(&self) -> u64 {
        self.pruned_quick
            + self.pruned_legality
            + self.pruned_equivalence
            + self.pruned_bound
            + self.pruned_symmetry
    }
}

/// Result of a search: the best schedule found and how it was found.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Best instruction order found.
    pub order: Vec<TupleId>,
    /// Pipeline unit assigned to each tuple (indexed by tuple id).
    pub assignment: Vec<Option<PipelineId>>,
    /// η per *position* of `order`: NOPs inserted before each instruction.
    pub etas: Vec<u32>,
    /// μ of the best schedule.
    pub nops: u32,
    /// The initial (list) schedule the search started from.
    pub initial_order: Vec<TupleId>,
    /// μ of the initial schedule.
    pub initial_nops: u32,
    /// True when the search ran to completion, proving optimality.
    pub optimal: bool,
    /// Search counters.
    pub stats: SearchStats,
}

/// Run the pruned branch-and-bound search on `ctx`.
pub fn search(ctx: &SchedContext<'_>, cfg: &SearchConfig) -> SearchOutcome {
    search_with_boundary(ctx, cfg, &BoundaryState::cold(ctx.machine.pipeline_count()))
}

/// [`search`] starting from a carried block boundary (footnote 1): the
/// pipelines begin with the in-flight state a predecessor block left
/// behind, so cross-block conflicts are priced into every η.
pub fn search_with_boundary(
    ctx: &SchedContext<'_>,
    cfg: &SearchConfig,
    boundary: &BoundaryState,
) -> SearchOutcome {
    search_impl(ctx, cfg, boundary, NullPolicy)
}

/// [`search`] while filling `profile` with a per-depth breakdown of the
/// run: nodes, Ω calls, prune counts by rule, and inclusive wall time per
/// depth (see [`crate::profile`]). The profile never changes the search
/// result — only plain `search` plus observation.
pub fn search_with_profile(
    ctx: &SchedContext<'_>,
    cfg: &SearchConfig,
    profile: &mut SearchProfile,
) -> SearchOutcome {
    let boundary = BoundaryState::cold(ctx.machine.pipeline_count());
    search_impl(ctx, cfg, &boundary, ProfilePolicy(profile))
}

/// Run the search while recording a machine-checkable optimality
/// certificate into `logger` (see [`crate::proof`]). Returns the outcome
/// together with what the logger produced — the [`Certificate`] itself for
/// in-memory loggers, or the digest/event count for streamed ones.
///
/// Proof logging implies a cold block boundary (a certificate is a claim
/// about the block in isolation) and is incompatible with the
/// pipeline-selection extension (the checker replays fixed-σ timing only).
///
/// # Panics
///
/// Panics if `cfg.pipeline_selection` is set.
pub fn search_with_proof(
    ctx: &SchedContext<'_>,
    cfg: &SearchConfig,
    mut logger: ProofLogger,
) -> (SearchOutcome, ProofOutput) {
    assert!(
        !cfg.pipeline_selection,
        "proof logging does not support the pipeline-selection extension"
    );
    let boundary = BoundaryState::cold(ctx.machine.pipeline_count());
    let outcome = search_impl(ctx, cfg, &boundary, ProofPolicy(&mut logger));
    let proof = logger.finish(trailer_for(&outcome));
    (outcome, proof)
}

/// [`search_with_proof`] with an in-memory logger: returns the certificate
/// directly.
///
/// # Panics
///
/// Panics if `cfg.pipeline_selection` is set.
pub fn prove(ctx: &SchedContext<'_>, cfg: &SearchConfig) -> (SearchOutcome, Certificate) {
    let (outcome, proof) = search_with_proof(ctx, cfg, ProofLogger::in_memory());
    let cert = proof
        .certificate
        .expect("in-memory proof logger always yields a certificate");
    (outcome, cert)
}

/// Compile-time hook bundle the unified kernel is generic over.
///
/// One branch-and-bound implementation serves every entry point: the plain
/// [`search`], the certificate-logged [`search_with_proof`], the per-depth
/// profiled [`search_with_profile`], and the work-stealing parallel workers
/// in [`crate::parallel`]. Each variant supplies a policy; hooks a policy
/// leaves at their defaults monomorphize to nothing, so [`NullPolicy`]
/// compiles to exactly the pre-unification plain search.
///
/// The hooks fall into three groups:
///
/// * **observation** — [`begin`](Self::begin)/[`log`](Self::log) record the
///   proof transcript (gated on [`PROOF`](Self::PROOF)),
///   [`prof`](Self::prof) bumps per-depth counters (gated on
///   [`PROFILE`](Self::PROFILE)).
/// * **shared budgets & bounds** — [`charge_omega`](Self::charge_omega)
///   draws on a pool-wide λ, [`poll_stop`](Self::poll_stop) observes a
///   pool-wide stop flag, [`shared_best`](Self::shared_best) tightens the
///   local incumbent from the shared atomic, [`improved`](Self::improved)
///   publishes a new incumbent, and [`stopping`](Self::stopping) propagates
///   a local termination cause outward.
/// * **work distribution** — [`spawn`](Self::spawn) may take ownership of a
///   just-bounded subtree and defer it to a work-stealing deque.
pub trait SearchPolicy {
    /// True when the policy records a proof transcript; the kernel then
    /// captures the bound's chain/resource terms for every placement.
    const PROOF: bool = false;
    /// True when the policy collects per-depth profiles; the kernel then
    /// times each `dfs` call inclusively.
    const PROFILE: bool = false;

    /// The certificate header, emitted once before the search runs.
    #[inline]
    fn begin(&mut self, header: CertificateHeader) {
        let _ = header;
    }

    /// One proof event, in replay order.
    #[inline]
    fn log(&mut self, ev: ProofEvent) {
        let _ = ev;
    }

    /// Bump a per-depth profile counter.
    #[inline]
    fn prof(&mut self, depth: usize, bump: impl FnOnce(&mut DepthStats)) {
        let _ = (depth, bump);
    }

    /// Charge one Ω call against a shared budget; return true when the
    /// pool-wide budget is exhausted (the search truncates).
    #[inline]
    fn charge_omega(&mut self) -> bool {
        false
    }

    /// Poll a shared stop flag (another worker finished or truncated).
    #[inline]
    fn poll_stop(&mut self) -> bool {
        false
    }

    /// The tightest incumbent known anywhere, given the local one. The
    /// serial identity keeps α-β behaviour untouched; parallel workers
    /// read the shared atomic so bounds prune across subtrees.
    #[inline]
    fn shared_best(&mut self, local: u32) -> u32 {
        local
    }

    /// A new incumbent `order` with `mu` NOPs was found locally.
    #[inline]
    fn improved(&mut self, mu: u32, order: &[TupleId]) {
        let _ = (mu, order);
    }

    /// The search is stopping; `stats` carries the cause
    /// (`truncated` / `deadline_hit` / `proved_by_bound`).
    #[inline]
    fn stopping(&mut self, stats: &SearchStats) {
        let _ = stats;
    }

    /// Offer the subtree rooted at `order[..depth]` (whose placement bound
    /// is `bound`) for deferred execution. Returning true transfers
    /// ownership: the kernel neither descends nor prunes it.
    #[inline]
    fn spawn(&mut self, order: &[TupleId], depth: usize, bound: u32) -> bool {
        let _ = (order, depth, bound);
        false
    }
}

/// Forwarding impl so a caller can lend a policy to one kernel run (e.g.
/// [`run_subtree`] per work-stealing task) and keep using it afterwards.
impl<P: SearchPolicy> SearchPolicy for &mut P {
    const PROOF: bool = P::PROOF;
    const PROFILE: bool = P::PROFILE;

    #[inline]
    fn begin(&mut self, header: CertificateHeader) {
        (**self).begin(header);
    }

    #[inline]
    fn log(&mut self, ev: ProofEvent) {
        (**self).log(ev);
    }

    #[inline]
    fn prof(&mut self, depth: usize, bump: impl FnOnce(&mut DepthStats)) {
        (**self).prof(depth, bump);
    }

    #[inline]
    fn charge_omega(&mut self) -> bool {
        (**self).charge_omega()
    }

    #[inline]
    fn poll_stop(&mut self) -> bool {
        (**self).poll_stop()
    }

    #[inline]
    fn shared_best(&mut self, local: u32) -> u32 {
        (**self).shared_best(local)
    }

    #[inline]
    fn improved(&mut self, mu: u32, order: &[TupleId]) {
        (**self).improved(mu, order);
    }

    #[inline]
    fn stopping(&mut self, stats: &SearchStats) {
        (**self).stopping(stats);
    }

    #[inline]
    fn spawn(&mut self, order: &[TupleId], depth: usize, bound: u32) -> bool {
        (**self).spawn(order, depth, bound)
    }
}

/// The no-op policy: plain serial search, bit-identical to the historical
/// un-hooked implementation.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullPolicy;

impl SearchPolicy for NullPolicy {}

/// Certificate-logging policy wrapping a [`ProofLogger`].
pub struct ProofPolicy<'p>(pub &'p mut ProofLogger);

impl SearchPolicy for ProofPolicy<'_> {
    const PROOF: bool = true;

    #[inline]
    fn begin(&mut self, header: CertificateHeader) {
        self.0.begin(header);
    }

    #[inline]
    fn log(&mut self, ev: ProofEvent) {
        self.0.log(ev);
    }
}

/// Per-depth profiling policy wrapping a [`SearchProfile`].
pub struct ProfilePolicy<'p>(pub &'p mut SearchProfile);

impl SearchPolicy for ProfilePolicy<'_> {
    const PROFILE: bool = true;

    #[inline]
    fn prof(&mut self, depth: usize, bump: impl FnOnce(&mut DepthStats)) {
        bump(self.0.at(depth));
    }
}

fn search_impl<P: SearchPolicy>(
    ctx: &SchedContext<'_>,
    cfg: &SearchConfig,
    boundary: &BoundaryState,
    mut policy: P,
) -> SearchOutcome {
    let n = ctx.len();
    if n == 0 {
        if P::PROOF {
            policy.begin(CertificateHeader {
                n: 0,
                bound: cfg.bound,
                equivalence: cfg.equivalence,
                initial_order: Vec::new(),
                initial_nops: 0,
            });
        }
        return SearchOutcome {
            order: Vec::new(),
            assignment: Vec::new(),
            etas: Vec::new(),
            nops: 0,
            initial_order: Vec::new(),
            initial_nops: 0,
            optimal: true,
            stats: SearchStats::default(),
        };
    }

    // Step [1]: initial incumbent from the configured heuristic, plus the
    // admissible whole-block lower bound — the prologue shared by every
    // exact backend (see `crate::seed`).
    let seed = crate::seed::seed_incumbent(ctx, cfg.initial, boundary, cfg.pipeline_selection);
    let initial_order = seed.order;
    let initial_etas = seed.etas;
    let initial_nops = seed.nops;

    if P::PROOF {
        policy.begin(CertificateHeader {
            n: n as u32,
            bound: cfg.bound,
            equivalence: cfg.equivalence,
            initial_order: initial_order.iter().map(|t| t.0).collect(),
            initial_nops,
        });
    }

    // When an incumbent matches the lower bound, optimality is proven
    // without exhausting the space.
    let global_lb = cfg.terminate_on_lower_bound.then_some(seed.global_lb);

    if let Some(lb) = global_lb {
        if initial_nops <= lb {
            // The list schedule is already provably optimal.
            if P::PROOF {
                policy.log(ProofEvent::ProvedByBound { lb });
            }
            return SearchOutcome {
                order: initial_order.clone(),
                assignment: ctx.sigma.clone(),
                etas: initial_etas,
                nops: initial_nops,
                initial_order,
                initial_nops,
                optimal: true,
                stats: SearchStats {
                    proved_by_bound: true,
                    ..SearchStats::default()
                },
            };
        }
    }

    let mut s = Search::new(
        ctx,
        cfg,
        boundary,
        initial_order.clone(),
        initial_etas,
        initial_nops,
        policy,
    );
    s.global_lb = global_lb;
    if cfg.deadline.is_some_and(|d| std::time::Instant::now() >= d) {
        // Already out of time: the incumbent is the answer (anytime).
        s.stats.truncated = true;
        s.stats.deadline_hit = true;
        s.policy.stopping(&s.stats);
    } else {
        s.dfs(0);
    }

    let optimal = !s.stats.truncated;
    let (best_etas, best_nops) =
        evaluate_with_assignment(ctx, boundary, &s.best_order, &s.best_assign);
    debug_assert_eq!(best_nops, s.best_nops);
    debug_assert!(verify_schedule(ctx.block, ctx.dag, &s.best_order).is_ok());

    SearchOutcome {
        order: s.best_order,
        assignment: s.best_assign,
        etas: best_etas,
        nops: s.best_nops,
        initial_order,
        initial_nops,
        optimal,
        stats: s.stats,
    }
}

/// Run the kernel on one subtree: the prefix `order[..depth]` is replayed
/// as already-committed placements (no Ω charges — the splitting worker
/// already paid for them), then the DFS explores everything below it.
///
/// This is the work-stealing pool's unit of execution. The local incumbent
/// is seeded from `best_nops` (typically a snapshot of the shared atomic),
/// so only the statistics are meaningful on return — improvements are
/// published through [`SearchPolicy::improved`], not through the returned
/// schedule.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_subtree<P: SearchPolicy>(
    ctx: &SchedContext<'_>,
    cfg: &SearchConfig,
    boundary: &BoundaryState,
    order: Vec<TupleId>,
    depth: usize,
    best_nops: u32,
    global_lb: Option<u32>,
    policy: P,
) -> SearchStats {
    debug_assert!(depth <= order.len());
    let mut s = Search::new(ctx, cfg, boundary, order, Vec::new(), best_nops, policy);
    s.global_lb = global_lb;
    if cfg.deadline.is_some_and(|d| std::time::Instant::now() >= d) {
        s.stats.truncated = true;
        s.stats.deadline_hit = true;
        s.policy.stopping(&s.stats);
        return s.stats;
    }
    // Replay the committed prefix: timing, readiness and resource-bound
    // state exactly as `place_and_recurse` would have left them.
    for d in 0..depth {
        let xi = s.order[d];
        s.engine.push(xi, s.ctx.sigma(xi));
        for e in s.ctx.dag.succs(xi) {
            s.pending_preds[e.to.index()] -= 1;
        }
        if let Some(p) = s.counted_pipe(xi) {
            s.remaining_per_pipe[p.index()] -= 1;
        }
    }
    s.dfs(depth);
    s.stats
}

/// Evaluate a complete schedule under an explicit pipeline assignment.
fn evaluate_with_assignment(
    ctx: &SchedContext<'_>,
    boundary: &BoundaryState,
    order: &[TupleId],
    assignment: &[Option<PipelineId>],
) -> (Vec<u32>, u32) {
    let mut engine = TimingEngine::with_boundary(ctx, boundary);
    let etas: Vec<u32> = order
        .iter()
        .map(|&t| engine.push(t, assignment[t.index()]))
        .collect();
    let total = engine.total_nops();
    (etas, total)
}

struct Search<'c, 'a, P: SearchPolicy> {
    /// The compile-time hook bundle (proof, profile, shared-state hooks).
    policy: P,
    ctx: &'c SchedContext<'a>,
    cfg: SearchConfig,
    engine: TimingEngine<'c, 'a>,
    /// Current ordering Π; positions < depth are the committed prefix Φ.
    order: Vec<TupleId>,
    /// Pending (unscheduled) immediate-predecessor counts.
    pending_preds: Vec<u32>,
    /// Unscheduled instructions per pipeline (for the resource bound).
    remaining_per_pipe: Vec<u32>,
    /// Structural equivalence class per tuple (only when Structural mode).
    equiv_class: Vec<u32>,
    lower_bound: Option<LowerBound>,
    global_lb: Option<u32>,
    best_nops: u32,
    best_order: Vec<TupleId>,
    best_assign: Vec<Option<PipelineId>>,
    stats: SearchStats,
    stop: bool,
}

impl<'c, 'a, P: SearchPolicy> Search<'c, 'a, P> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        ctx: &'c SchedContext<'a>,
        cfg: &SearchConfig,
        boundary: &BoundaryState,
        initial_order: Vec<TupleId>,
        _initial_etas: Vec<u32>,
        initial_nops: u32,
        policy: P,
    ) -> Self {
        let n = ctx.len();
        let pending_preds: Vec<u32> = (0..n).map(|i| ctx.preds[i].len() as u32).collect();
        // For the resource bound: ops whose unit is *fixed*. When pipeline
        // selection is enabled, ops with a choice of units are excluded so
        // the per-pipe count never overstates the load on any single unit
        // (which would make the bound inadmissible).
        let mut remaining_per_pipe = vec![0u32; ctx.machine.pipeline_count()];
        for i in 0..n {
            if cfg.pipeline_selection && ctx.allowed[i].len() > 1 {
                continue;
            }
            if let Some(p) = ctx.sigma[i] {
                remaining_per_pipe[p.index()] += 1;
            }
        }
        let equiv_class = if cfg.equivalence == EquivalenceMode::Structural {
            structural_classes(ctx)
        } else {
            Vec::new()
        };
        let lower_bound = match cfg.bound {
            BoundKind::AlphaBeta => None,
            BoundKind::CriticalPath => Some(LowerBound::new(ctx)),
        };
        let best_assign: Vec<Option<PipelineId>> = ctx.sigma.clone();
        Search {
            policy,
            ctx,
            cfg: *cfg,
            engine: TimingEngine::with_boundary(ctx, boundary),
            order: initial_order.clone(),
            pending_preds,
            remaining_per_pipe,
            equiv_class,
            lower_bound,
            global_lb: None,
            best_nops: initial_nops,
            best_order: initial_order,
            best_assign,
            stats: SearchStats::default(),
            stop: false,
        }
    }

    /// Append `ev` to the proof transcript when logging is on.
    #[inline]
    fn log(&mut self, ev: ProofEvent) {
        if P::PROOF {
            self.policy.log(ev);
        }
    }

    /// Bump a per-depth profile counter when profiling is on.
    #[inline]
    fn prof(&mut self, depth: usize, bump: impl FnOnce(&mut DepthStats)) {
        if P::PROFILE {
            self.policy.prof(depth, bump);
        }
    }

    /// Profiling wrapper around [`Search::dfs_inner`]: times the call
    /// inclusively per depth. Without a profile it is a plain tail call,
    /// so the un-profiled search never reads the clock here.
    fn dfs(&mut self, depth: usize) {
        if !P::PROFILE {
            return self.dfs_inner(depth);
        }
        let start = std::time::Instant::now();
        self.dfs_inner(depth);
        let elapsed = start.elapsed().as_nanos() as u64;
        self.prof(depth, |d| d.time_ns += elapsed);
    }

    fn dfs_inner(&mut self, depth: usize) {
        let n = self.ctx.len();
        self.stats.nodes_visited += 1;
        self.prof(depth, |d| d.nodes += 1);
        if depth == n {
            // Step [3]: complete schedule.
            self.stats.complete_schedules += 1;
            let mu = self.engine.total_nops();
            // Under a shared incumbent another worker may have improved on
            // ours since the last refresh; never publish a worse schedule.
            self.best_nops = self.policy.shared_best(self.best_nops);
            if mu < self.best_nops {
                self.stats.improvements += 1;
                self.best_nops = mu;
                self.best_order.copy_from_slice(&self.order);
                for (i, a) in self.best_assign.iter_mut().enumerate() {
                    *a = self.engine.assigned_pipeline(TupleId(i as u32));
                }
                self.log(ProofEvent::Improve { mu });
                self.policy.improved(mu, &self.best_order);
                if let Some(lb) = self.global_lb {
                    if self.best_nops <= lb {
                        // Provably optimal: no schedule can beat the bound.
                        self.stats.proved_by_bound = true;
                        self.stop = true;
                        self.log(ProofEvent::ProvedByBound { lb });
                        self.policy.stopping(&self.stats);
                    }
                }
            } else {
                self.log(ProofEvent::Complete { mu });
            }
            return;
        }

        let kappa = self.order[depth];
        // Structural classes already tried at this depth, with the first
        // member placed for each — the equivalence witness the certificate
        // records.
        let mut tried_classes: Vec<(u32, TupleId)> = Vec::new();

        for j in depth..n {
            if self.stop || self.policy.poll_stop() {
                self.stop = true;
                return;
            }
            let xi = self.order[j];

            // [5a] quick approximate legality check.
            if self.cfg.quick_check && self.ctx.analysis.earliest(xi) as usize > depth {
                self.stats.pruned_quick += 1;
                self.prof(depth, |d| d.pruned_quick += 1);
                self.log(ProofEvent::LegalityPrune { candidate: xi.0 });
                continue;
            }
            // [5b] real legality: every predecessor already scheduled.
            if self.pending_preds[xi.index()] > 0 {
                self.stats.pruned_legality += 1;
                self.prof(depth, |d| d.pruned_legality += 1);
                self.log(ProofEvent::LegalityPrune { candidate: xi.0 });
                continue;
            }
            // [5c] equivalence filtering.
            match self.cfg.equivalence {
                EquivalenceMode::Off => {}
                EquivalenceMode::Paper => {
                    if j != depth && self.ctx.interchangeable_free(kappa, xi) {
                        self.stats.pruned_equivalence += 1;
                        self.prof(depth, |d| d.pruned_equivalence += 1);
                        // κ is free, hence legal here, hence was placed at
                        // j == depth: a valid witness.
                        self.log(ProofEvent::EquivalencePrune {
                            candidate: xi.0,
                            witness: kappa.0,
                        });
                        continue;
                    }
                }
                EquivalenceMode::UnrestrictedPaper => {
                    // The paper's printed rule: both free, no successor
                    // condition. Unsound — kept for ablation and for
                    // exercising the checker's rejection path.
                    if j != depth
                        && self.ctx.is_free_instruction(kappa)
                        && self.ctx.is_free_instruction(xi)
                    {
                        self.stats.pruned_equivalence += 1;
                        self.prof(depth, |d| d.pruned_equivalence += 1);
                        self.log(ProofEvent::EquivalencePrune {
                            candidate: xi.0,
                            witness: kappa.0,
                        });
                        continue;
                    }
                }
                EquivalenceMode::Structural => {
                    let class = self.equiv_class[xi.index()];
                    if let Some(&(_, witness)) = tried_classes.iter().find(|(c, _)| *c == class) {
                        self.stats.pruned_equivalence += 1;
                        self.prof(depth, |d| d.pruned_equivalence += 1);
                        self.log(ProofEvent::EquivalencePrune {
                            candidate: xi.0,
                            witness: witness.0,
                        });
                        continue;
                    }
                    tried_classes.push((class, xi));
                }
            }

            self.order.swap(depth, j);
            self.try_candidate(depth, xi);
            self.order.swap(depth, j);
            if self.stop {
                return;
            }
        }
        // Every unscheduled instruction was dispositioned: close the node.
        self.log(ProofEvent::Leave);
    }

    /// Place `xi` at `depth` on each viable pipeline unit and recurse.
    fn try_candidate(&mut self, depth: usize, xi: TupleId) {
        if !self.cfg.pipeline_selection || self.ctx.allowed[xi.index()].len() <= 1 {
            let pipe = self.ctx.sigma(xi);
            self.place_and_recurse(depth, xi, pipe);
            return;
        }
        // Selection extension: try each distinct unit state. Two units with
        // identical timing parameters and identical last-issue state are
        // interchangeable; trying one preserves optimality.
        let mut seen: Vec<(u32, u32, Option<i64>)> = Vec::new();
        let allowed = self.ctx.allowed[xi.index()].clone();
        for p in allowed {
            let key = (
                self.ctx.latency(p),
                self.ctx.enqueue(p),
                last_issue_of(&self.engine, self.ctx, p),
            );
            if seen.contains(&key) {
                self.stats.pruned_symmetry += 1;
                continue;
            }
            seen.push(key);
            self.place_and_recurse(depth, xi, Some(p));
            if self.stop {
                return;
            }
        }
    }

    fn place_and_recurse(&mut self, depth: usize, xi: TupleId, pipe: Option<PipelineId>) {
        // Step [4]: curtail point. The shared budget (when the policy has
        // one) is charged unconditionally so the pool-wide Ω counter stays
        // exact even when a local limit also fires.
        self.stats.omega_calls += 1;
        self.prof(depth, |d| d.omega_calls += 1);
        if self.policy.charge_omega() || self.stats.omega_calls >= self.cfg.lambda {
            self.stats.truncated = true;
            self.stop = true;
            self.policy.stopping(&self.stats);
        }
        // Anytime deadline (throttled so the hot path never reads the clock).
        if let Some(deadline) = self.cfg.deadline {
            if self
                .stats
                .omega_calls
                .is_multiple_of(DEADLINE_CHECK_INTERVAL)
                && std::time::Instant::now() >= deadline
            {
                self.stats.truncated = true;
                self.stats.deadline_hit = true;
                self.stop = true;
                self.policy.stopping(&self.stats);
            }
        }

        self.engine.push(xi, pipe);

        let counted_pipe = self.counted_pipe(xi);
        // Chain/resource terms of the bound, captured for the certificate.
        let mut proof_terms: Option<(i64, i64)> = None;
        let bound = match (&self.lower_bound, self.cfg.bound) {
            (Some(lb), BoundKind::CriticalPath) => {
                // Account for the placement before computing the bound.
                if let Some(p) = counted_pipe {
                    self.remaining_per_pipe[p.index()] -= 1;
                }
                let ready = self.ready_after(xi);
                let b = if P::PROOF {
                    let (chain, resource, b) = lb.terms(
                        self.ctx,
                        &self.engine,
                        ready.into_iter(),
                        &self.remaining_per_pipe,
                    );
                    proof_terms = Some((chain, resource));
                    b
                } else {
                    lb.bound_with_selection(
                        self.ctx,
                        &self.engine,
                        ready.into_iter(),
                        &self.remaining_per_pipe,
                        self.cfg.pipeline_selection,
                    )
                };
                if let Some(p) = counted_pipe {
                    self.remaining_per_pipe[p.index()] += 1;
                }
                b
            }
            _ => self.engine.total_nops(),
        };

        // Under a shared incumbent, pick up improvements published by other
        // workers before deciding the prune (α-β propagates pool-wide).
        self.best_nops = self.policy.shared_best(self.best_nops);

        // Work distribution first: the policy may take ownership of this
        // subtree and defer it to a deque (the bound-vs-incumbent decision
        // then happens when the subtree is popped, against the incumbent of
        // that moment); otherwise step [6], the α-β prune (strict <,
        // matching the paper).
        if !self.stop && self.policy.spawn(&self.order, depth + 1, bound) {
            self.stats.splits += 1;
        } else if bound < self.best_nops && !self.stop {
            // Commit: update readiness and recurse.
            self.log(ProofEvent::Enter { candidate: xi.0 });
            for e in self.ctx.dag.succs(xi) {
                self.pending_preds[e.to.index()] -= 1;
            }
            if let Some(p) = counted_pipe {
                self.remaining_per_pipe[p.index()] -= 1;
            }
            self.dfs(depth + 1);
            if let Some(p) = counted_pipe {
                self.remaining_per_pipe[p.index()] += 1;
            }
            for e in self.ctx.dag.succs(xi) {
                self.pending_preds[e.to.index()] += 1;
            }
        } else if !self.stop {
            self.stats.pruned_bound += 1;
            self.prof(depth, |d| d.pruned_bound += 1);
            let mu = self.engine.total_nops();
            let (chain, resource) = (proof_terms.map(|t| t.0), proof_terms.map(|t| t.1));
            self.log(ProofEvent::BoundPrune {
                candidate: xi.0,
                mu,
                bound,
                chain,
                resource,
            });
        }

        self.engine.pop();
    }

    /// The pipeline `xi` contributes to in `remaining_per_pipe`, mirroring
    /// the initialization in `Search::new`.
    fn counted_pipe(&self, xi: TupleId) -> Option<PipelineId> {
        if self.cfg.pipeline_selection && self.ctx.allowed[xi.index()].len() > 1 {
            None
        } else {
            self.ctx.sigma(xi)
        }
    }

    /// Unscheduled-and-ready instructions, assuming `xi` was just placed.
    fn ready_after(&self, xi: TupleId) -> Vec<TupleId> {
        let n = self.ctx.len();
        let mut out = Vec::new();
        for i in 0..n {
            let t = TupleId(i as u32);
            if t == xi || self.engine.issue_time(t).is_some() {
                continue;
            }
            let pending = self.pending_preds[i]
                - self
                    .ctx
                    .dag
                    .preds(t)
                    .iter()
                    .filter(|e| e.from == xi)
                    .count() as u32;
            if pending == 0 {
                out.push(t);
            }
        }
        out
    }
}

/// Group tuples into structural interchangeability classes: identical
/// operation, identical predecessor edges and identical successor edges
/// make two instructions interchangeable in any schedule.
#[allow(clippy::type_complexity)]
pub(crate) fn structural_classes(ctx: &SchedContext<'_>) -> Vec<u32> {
    use std::collections::HashMap;
    let n = ctx.len();
    let mut table: HashMap<(pipesched_ir::Op, Vec<(u32, bool)>, Vec<(u32, bool)>), u32> =
        HashMap::new();
    let mut classes = vec![0u32; n];
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let t = TupleId(i as u32);
        let mut preds: Vec<(u32, bool)> = ctx.preds[i].iter().map(|p| (p.from, p.flow)).collect();
        preds.sort_unstable();
        let mut succs: Vec<(u32, bool)> = ctx
            .dag
            .succs(t)
            .iter()
            .map(|e| (e.to.0, e.kind == pipesched_ir::DepKind::Flow))
            .collect();
        succs.sort_unstable();
        let key = (ctx.block.tuple(t).op, preds, succs);
        let next = table.len() as u32;
        classes[i] = *table.entry(key).or_insert(next);
    }
    classes
}

fn last_issue_of(
    engine: &TimingEngine<'_, '_>,
    ctx: &SchedContext<'_>,
    p: PipelineId,
) -> Option<i64> {
    // The engine doesn't expose last_in_pipe directly; reconstruct it from
    // issue times of placed tuples assigned to p.
    let mut last = None;
    for i in 0..ctx.len() {
        let t = TupleId(i as u32);
        if engine.assigned_pipeline(t) == Some(p) {
            if let Some(ti) = engine.issue_time(t) {
                last = Some(last.map_or(ti, |l: i64| l.max(ti)));
            }
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::{BlockBuilder, DepDag};
    use pipesched_machine::presets;

    fn ctx_for<'a>(
        block: &'a pipesched_ir::BasicBlock,
        dag: &'a DepDag,
        machine: &'a pipesched_machine::Machine,
    ) -> SchedContext<'a> {
        SchedContext::new(block, dag, machine)
    }

    #[test]
    fn finds_zero_nop_schedule_when_one_exists() {
        // Two independent mul chains can fully hide each other's latency
        // given enough independent loads.
        let mut b = BlockBuilder::new("hide");
        let a = b.load("a");
        let c = b.load("c");
        let d = b.load("d");
        let e = b.load("e");
        let m1 = b.mul(a, c);
        let m2 = b.mul(d, e);
        let s = b.add(m1, m2);
        b.store("r", s);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = ctx_for(&block, &dag, &machine);
        let out = search(&ctx, &SearchConfig::default());
        assert!(out.optimal);
        assert!(
            out.nops <= out.initial_nops,
            "search never worsens the incumbent"
        );
        verify_schedule(&block, &dag, &out.order).unwrap();
    }

    #[test]
    fn single_instruction_block() {
        let mut b = BlockBuilder::new("one");
        b.load("x");
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = ctx_for(&block, &dag, &machine);
        let out = search(&ctx, &SearchConfig::default());
        assert!(out.optimal);
        assert_eq!(out.nops, 0);
        assert_eq!(out.order.len(), 1);
    }

    #[test]
    fn serial_chain_has_forced_nops() {
        // load x; mul x,x; store — nothing can hide the mul latency.
        let mut b = BlockBuilder::new("chain");
        let x = b.load("x");
        let m = b.mul(x, x);
        b.store("z", m);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = ctx_for(&block, &dag, &machine);
        let out = search(&ctx, &SearchConfig::default());
        assert!(out.optimal);
        // x@0; mul waits loader latency 2 → @2 (1 NOP); store waits mul
        // latency 4 → @6 (3 NOPs). μ = 4.
        assert_eq!(out.nops, 4);
    }

    #[test]
    fn curtail_point_truncates() {
        let mut b = BlockBuilder::new("big");
        // Several multiplier-bound chains: the initial schedule needs NOPs,
        // so the α-β bound cannot close the search immediately and the
        // space is enormous.
        for i in 0..5 {
            let l = b.load(&format!("x{i}"));
            let m = b.mul(l, l);
            b.store(&format!("y{i}"), m);
        }
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = ctx_for(&block, &dag, &machine);
        let cfg = SearchConfig::with_lambda(10);
        let out = search(&ctx, &cfg);
        assert!(out.stats.truncated);
        assert!(!out.optimal);
        assert!(out.stats.omega_calls <= 10);
        // Still returns a legal schedule no worse than the list schedule.
        verify_schedule(&block, &dag, &out.order).unwrap();
        assert!(out.nops <= out.initial_nops);
    }

    #[test]
    fn expired_deadline_returns_incumbent_anytime() {
        let mut b = BlockBuilder::new("deadline");
        for i in 0..5 {
            let l = b.load(&format!("x{i}"));
            let m = b.mul(l, l);
            b.store(&format!("y{i}"), m);
        }
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = ctx_for(&block, &dag, &machine);
        // A deadline already in the past: the search must return the list
        // incumbent immediately, flagged non-optimal.
        let cfg = SearchConfig {
            terminate_on_lower_bound: false,
            ..SearchConfig::default()
        }
        .with_deadline(Some(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        ));
        let out = search(&ctx, &cfg);
        assert!(!out.optimal);
        assert!(out.stats.truncated);
        assert!(out.stats.deadline_hit);
        assert_eq!(out.stats.omega_calls, 0);
        assert_eq!(out.nops, out.initial_nops);
        verify_schedule(&block, &dag, &out.order).unwrap();
    }

    #[test]
    fn future_deadline_does_not_disturb_search() {
        let mut b = BlockBuilder::new("far");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        b.store("r", m);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = ctx_for(&block, &dag, &machine);
        let base = search(&ctx, &SearchConfig::default());
        let cfg = SearchConfig::default().with_deadline(Some(
            std::time::Instant::now() + std::time::Duration::from_secs(600),
        ));
        let out = search(&ctx, &cfg);
        assert!(out.optimal);
        assert!(!out.stats.deadline_hit);
        assert_eq!(out.nops, base.nops);
    }

    #[test]
    fn all_bounds_and_equivalences_agree_on_optimum() {
        let mut b = BlockBuilder::new("agree");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        let a = b.add(x, y);
        let s = b.sub(m, a);
        b.store("r", s);
        let c = b.constant(3);
        b.store("k", c);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = ctx_for(&block, &dag, &machine);

        let mut reference = None;
        for bound in [BoundKind::AlphaBeta, BoundKind::CriticalPath] {
            for equivalence in [
                EquivalenceMode::Off,
                EquivalenceMode::Paper,
                EquivalenceMode::Structural,
            ] {
                let cfg = SearchConfig {
                    bound,
                    equivalence,
                    lambda: u64::MAX,
                    ..SearchConfig::default()
                };
                let out = search(&ctx, &cfg);
                assert!(out.optimal, "{bound:?}/{equivalence:?} truncated");
                let r = *reference.get_or_insert(out.nops);
                assert_eq!(out.nops, r, "{bound:?}/{equivalence:?} differs");
            }
        }
    }

    #[test]
    fn equivalence_modes_reduce_work_monotonically() {
        let mut b = BlockBuilder::new("equiv");
        // Pairs of free Consts feeding the *same* consumer (identical
        // successor sets => interchangeable) inflate the unfiltered search;
        // the restricted rule [5c] collapses each pair.
        let x = b.load("x");
        let mut acc = x;
        for i in 0..3 {
            let c1 = b.constant(i);
            let c2 = b.constant(i + 10);
            let pair = b.add(c1, c2);
            acc = b.add(acc, pair);
        }
        b.store("r", acc);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = ctx_for(&block, &dag, &machine);

        // Use the paper-exact bound so the search actually explores (the
        // default critical-path bound + LB termination can close this block
        // before rule [5c] ever fires).
        let run = |mode| {
            let cfg = SearchConfig {
                equivalence: mode,
                lambda: u64::MAX,
                ..SearchConfig::paper_exact()
            };
            search(&ctx, &cfg)
        };
        let off = run(EquivalenceMode::Off);
        let paper = run(EquivalenceMode::Paper);
        let structural = run(EquivalenceMode::Structural);
        assert_eq!(off.nops, paper.nops);
        assert_eq!(off.nops, structural.nops);
        // Both filters reduce work relative to no filtering. (They are not
        // comparable to each other: structural classes key on exact
        // pred/succ sets, the paper rule on σ/ρ emptiness.)
        assert!(paper.stats.omega_calls <= off.stats.omega_calls);
        assert!(structural.stats.omega_calls <= off.stats.omega_calls);
        assert!(
            paper.stats.pruned_equivalence > 0,
            "the consts should trigger rule [5c]"
        );
    }

    #[test]
    fn pipeline_selection_uses_second_unit() {
        // Two independent loads on the Table 2 machine (two loaders):
        // with selection they issue back-to-back on different units even if
        // a single loader would conflict.
        let mut b = BlockBuilder::new("sel");
        let x = b.load("x");
        let y = b.load("y");
        let s = b.add(x, y);
        b.store("r", s);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::table2_example();
        let ctx = ctx_for(&block, &dag, &machine);

        let base = search(&ctx, &SearchConfig::default());
        let cfg = SearchConfig {
            pipeline_selection: true,
            ..SearchConfig::default()
        };
        let sel = search(&ctx, &cfg);
        assert!(sel.optimal && base.optimal);
        assert!(
            sel.nops <= base.nops,
            "selection can only help: {} vs {}",
            sel.nops,
            base.nops
        );
        // The two loads end up on distinct units.
        let p0 = sel.assignment[0];
        let p1 = sel.assignment[1];
        assert!(p0.is_some() && p1.is_some());
    }

    #[test]
    fn empty_block() {
        let block = BlockBuilder::new("empty").finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = ctx_for(&block, &dag, &machine);
        let out = search(&ctx, &SearchConfig::default());
        assert!(out.optimal);
        assert_eq!(out.nops, 0);
        assert!(out.order.is_empty());
    }

    #[test]
    fn profile_sums_match_search_stats() {
        // Contended multiplier chains force real exploration so every
        // counter is exercised.
        let mut b = BlockBuilder::new("profiled");
        for i in 0..4 {
            let l = b.load(&format!("x{i}"));
            let m = b.mul(l, l);
            b.store(&format!("y{i}"), m);
        }
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = ctx_for(&block, &dag, &machine);
        let cfg = SearchConfig {
            terminate_on_lower_bound: false,
            ..SearchConfig::default()
        };

        let plain = search(&ctx, &cfg);
        let mut profile = SearchProfile::new();
        let out = search_with_profile(&ctx, &cfg, &mut profile);

        // Profiling must be pure observation.
        assert_eq!(out.nops, plain.nops);
        assert_eq!(out.order, plain.order);
        assert_eq!(out.stats, plain.stats);

        // Every per-depth column sums to its whole-run counter.
        let sum = |f: fn(&DepthStats) -> u64| profile.depths.iter().map(f).sum::<u64>();
        assert_eq!(profile.total_nodes(), out.stats.nodes_visited);
        assert_eq!(sum(|d| d.omega_calls), out.stats.omega_calls);
        assert_eq!(sum(|d| d.pruned_quick), out.stats.pruned_quick);
        assert_eq!(sum(|d| d.pruned_legality), out.stats.pruned_legality);
        assert_eq!(sum(|d| d.pruned_equivalence), out.stats.pruned_equivalence);
        assert_eq!(sum(|d| d.pruned_bound), out.stats.pruned_bound);
        assert!(out.stats.nodes_visited > 1, "search did not explore");

        // Inclusive time: depth d+1 nests inside depth d.
        for w in profile.depths.windows(2) {
            assert!(w[0].time_ns >= w[1].time_ns);
        }

        // JSON rendering covers every depth.
        if let pipesched_json::Json::Array(rows) = profile.to_json() {
            assert_eq!(rows.len(), profile.depths.len());
        } else {
            panic!("profile JSON is an array");
        }
    }

    #[test]
    fn profile_of_trivial_searches_stays_consistent() {
        // The n == 0 and proved-by-bound early returns record nothing;
        // the sum identity must still hold (both sides zero).
        let block = BlockBuilder::new("empty").finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = ctx_for(&block, &dag, &machine);
        let mut profile = SearchProfile::new();
        let out = search_with_profile(&ctx, &SearchConfig::default(), &mut profile);
        assert!(out.optimal);
        assert_eq!(profile.total_nodes(), out.stats.nodes_visited);
        assert_eq!(profile.total_nodes(), 0);
    }
}
