//! Shared incumbent seeding for every exact backend.
//!
//! All exact schedulers — the serial branch-and-bound, the parallel
//! branch-and-bound, and the SAT portfolio backend in `pipesched-solve` —
//! start the same way: build an initial schedule from a heuristic (step
//! [1] of §4.2.3), price it with the timing engine to obtain the incumbent
//! μ, and compute the admissible whole-block lower bound that lets an
//! incumbent be *proved* optimal without exploring anything. This module is
//! that common prologue, hoisted out of the individual search kernels so
//! the three backends cannot drift apart (first slice of the ROADMAP's
//! kernel unification).

use pipesched_ir::TupleId;

use crate::bnb::InitialHeuristic;
use crate::bounds::LowerBound;
use crate::context::SchedContext;
use crate::list_sched::list_schedule;
use crate::timing::{evaluate_schedule_from, BoundaryState, TimingEngine};

/// The common starting state of an exact search: the heuristic incumbent
/// and the admissible lower bound it is measured against.
#[derive(Debug, Clone)]
pub struct SearchSeed {
    /// The initial (heuristic) instruction order.
    pub order: Vec<TupleId>,
    /// η per position of `order` under the default pipeline assignment.
    pub etas: Vec<u32>,
    /// μ of the initial schedule — the incumbent the search must beat.
    pub nops: u32,
    /// Admissible lower bound on μ over *all* legal schedules of the
    /// block from `boundary`: an incumbent at or below it is provably
    /// optimal before any search runs.
    pub global_lb: u32,
}

impl SearchSeed {
    /// True when the incumbent already matches the lower bound, i.e. the
    /// seed schedule is provably optimal without any search.
    pub fn proved_by_bound(&self) -> bool {
        self.nops <= self.global_lb
    }
}

/// Build the incumbent + lower-bound seed every exact backend starts from.
///
/// `pipeline_selection` must mirror the search's own setting: when the
/// search may choose among several units, ops with a choice are excluded
/// from the per-pipe resource counts and ready instructions are priced at
/// their cheapest unit, keeping the bound admissible (exactly the rule the
/// branch-and-bound kernels applied individually before this was hoisted).
pub fn seed_incumbent(
    ctx: &SchedContext<'_>,
    initial: InitialHeuristic,
    boundary: &BoundaryState,
    pipeline_selection: bool,
) -> SearchSeed {
    let n = ctx.len();
    let order = match initial {
        InitialHeuristic::MaxDistance => list_schedule(ctx.dag, &ctx.analysis),
        InitialHeuristic::SourceOrder => ctx.block.ids().collect(),
        InitialHeuristic::Greedy => crate::baselines::greedy_schedule(ctx).0,
    };
    let (etas, nops) = evaluate_schedule_from(ctx, boundary, &order);

    let global_lb = {
        let lb = LowerBound::new(ctx);
        let engine = TimingEngine::with_boundary(ctx, boundary);
        let ready = (0..n as u32)
            .map(TupleId)
            .filter(|t| ctx.preds[t.index()].is_empty());
        let mut counts = vec![0u32; ctx.machine.pipeline_count()];
        for i in 0..n {
            if pipeline_selection && ctx.allowed[i].len() > 1 {
                continue;
            }
            if let Some(p) = ctx.sigma[i] {
                counts[p.index()] += 1;
            }
        }
        lb.bound_with_selection(ctx, &engine, ready, &counts, pipeline_selection)
    };

    SearchSeed {
        order,
        etas,
        nops,
        global_lb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnb::{search, SearchConfig};
    use pipesched_ir::{BlockBuilder, DepDag};
    use pipesched_machine::presets;

    #[test]
    fn seed_matches_search_prologue() {
        let mut b = BlockBuilder::new("seed");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        b.store("z", m);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let boundary = BoundaryState::cold(machine.pipeline_count());

        let seed = seed_incumbent(&ctx, InitialHeuristic::MaxDistance, &boundary, false);
        let out = search(&ctx, &SearchConfig::default());
        assert_eq!(seed.order, out.initial_order);
        assert_eq!(seed.nops, out.initial_nops);
        // The lower bound is admissible: the proven optimum respects it.
        assert!(out.optimal);
        assert!(seed.global_lb <= out.nops);
        assert_eq!(seed.global_lb, crate::bounds::global_lower_bound(&ctx));
    }

    #[test]
    fn seed_on_empty_block() {
        let block = BlockBuilder::new("e").finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let boundary = BoundaryState::cold(machine.pipeline_count());
        let seed = seed_incumbent(&ctx, InitialHeuristic::MaxDistance, &boundary, false);
        assert!(seed.order.is_empty());
        assert_eq!(seed.nops, 0);
        assert!(seed.proved_by_bound());
    }
}
