//! Lower bounds on the NOPs a partial schedule must still incur.
//!
//! The paper's α-β prune (step [6]) uses μ(Φ) itself as the bound: NOP
//! counts are monotone under extension, so a partial schedule that already
//! matches the incumbent cannot improve on it. [`BoundKind::CriticalPath`]
//! (an extension; ablated in the benches) strengthens this with two
//! admissible terms computed against the current engine state:
//!
//! * **chain term** — every ready instruction ξ cannot issue before
//!   `earliest_issue(ξ)`, and the final instruction of the block cannot
//!   issue before `earliest_issue(ξ) + tail(ξ)`, where `tail(ξ)` is the
//!   minimum issue-to-issue length of the longest dependence chain below ξ;
//! * **resource term** — the `k` unscheduled operations bound to pipeline
//!   `p` need at least `enqueue(p)` cycles between consecutive issues.
//!
//! Both only use constraints that hold in *every* completion of the partial
//! schedule, so the optimum is never pruned (verified by the proptest suite
//! against exhaustive search).

use pipesched_ir::TupleId;

use crate::context::SchedContext;
use crate::timing::TimingEngine;

/// Serializable choice of pruning bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundKind {
    /// The paper's α-β rule: bound = μ(Φ).
    AlphaBeta,
    /// μ(Φ) strengthened with critical-path and resource terms (the
    /// library default: same optimum, far smaller proofs).
    #[default]
    CriticalPath,
}

/// Precomputed static data for the critical-path bound.
#[derive(Debug, Clone)]
pub struct LowerBound {
    /// `tail[i]`: minimum cycles between issuing tuple `i` and issuing the
    /// last instruction on any chain below it (0 for sinks).
    tail: Vec<i64>,
}

impl LowerBound {
    /// Precompute chain tails for `ctx`.
    pub fn new(ctx: &SchedContext<'_>) -> Self {
        let n = ctx.len();
        let mut tail = vec![0i64; n];
        for i in (0..n).rev() {
            let t = TupleId(i as u32);
            // Issue-to-issue distance from `t` to a successor: the flow
            // latency of t's own pipeline, or 1 for anti/output edges and
            // for σ(t)=∅ (conservatively, a successor may issue the next
            // cycle; using the true minimum keeps the bound admissible).
            // Min over the allowed units keeps the tail admissible even
            // when the search may *choose* the unit (pipeline selection);
            // with a single unit per op this is exactly σ(t)'s latency.
            let own_latency: i64 = ctx.allowed[t.index()]
                .iter()
                .map(|&p| i64::from(ctx.latency(p)))
                .min()
                .unwrap_or(1);
            for e in ctx.dag.succs(t) {
                let delay = match e.kind {
                    pipesched_ir::DepKind::Flow => own_latency,
                    _ => 1,
                };
                tail[i] = tail[i].max(delay + tail[e.to.index()]);
            }
        }
        LowerBound { tail }
    }

    /// The static tail of tuple `t`.
    pub fn tail(&self, t: TupleId) -> i64 {
        self.tail[t.index()]
    }

    /// Lower bound on the total NOPs μ of any completion of the engine's
    /// current partial schedule.
    ///
    /// `ready` iterates the unscheduled instructions whose predecessors are
    /// all placed; `remaining_per_pipe[p]` counts unscheduled instructions
    /// bound to pipeline `p`.
    pub fn bound(
        &self,
        ctx: &SchedContext<'_>,
        engine: &TimingEngine<'_, '_>,
        ready: impl Iterator<Item = TupleId>,
        remaining_per_pipe: &[u32],
    ) -> u32 {
        self.bound_with_selection(ctx, engine, ready, remaining_per_pipe, false)
    }

    /// [`LowerBound::bound`] with an explicit pipeline-selection flag: when
    /// the search may choose among several units, a ready instruction's
    /// earliest issue is the *minimum* over its allowed units — using the
    /// default unit would overestimate and could prune the optimum.
    pub fn bound_with_selection(
        &self,
        ctx: &SchedContext<'_>,
        engine: &TimingEngine<'_, '_>,
        ready: impl Iterator<Item = TupleId>,
        remaining_per_pipe: &[u32],
        selection: bool,
    ) -> u32 {
        let n = ctx.len() as i64;
        let placed = engine.placed() as i64;
        let remaining = n - placed;
        if remaining == 0 {
            return engine.total_nops();
        }
        // t_prev reconstructed from μ(Φ) = t_prev - (placed - 1).
        let t_prev = i64::from(engine.total_nops()) + placed - 1;

        // Every remaining instruction takes at least one cycle.
        let mut t_final = t_prev + remaining;

        // Chain term over ready instructions.
        for t in ready {
            let est = if selection && ctx.allowed[t.index()].len() > 1 {
                ctx.allowed[t.index()]
                    .iter()
                    .map(|&p| engine.earliest_issue(t, Some(p)))
                    .min()
                    .expect("non-empty allowed set")
            } else {
                engine.earliest_issue(t, ctx.sigma(t))
            };
            t_final = t_final.max(est + self.tail(t));
        }

        // Resource term per pipeline.
        for (p, &k) in remaining_per_pipe.iter().enumerate() {
            if k == 0 {
                continue;
            }
            let enq = i64::from(ctx.pipe_enqueue[p]);
            // The first of the k issues happens no earlier than the cycle
            // after t_prev (and no earlier than the pipe's own reuse time,
            // which earliest_issue already captures for ready nodes).
            t_final = t_final.max(t_prev + 1 + enq * (i64::from(k) - 1));
        }

        (t_final - (n - 1)).max(0) as u32
    }

    /// The critical-path bound together with the concrete derivation the
    /// proof logger records: `(chain, resource, bound)`, where `chain` is
    /// the chain-term maximum and `resource` the resource-term maximum,
    /// both folded over the shared base `t_prev + remaining` so that
    /// `bound = max(0, max(chain, resource) - (n - 1))`.
    ///
    /// Mirrors [`LowerBound::bound`] exactly (pipeline selection off —
    /// proof logging does not support selection); the independent
    /// certificate checker re-derives the same three values from the
    /// analyze crate's timing oracle and compares them term by term.
    pub fn terms(
        &self,
        ctx: &SchedContext<'_>,
        engine: &TimingEngine<'_, '_>,
        ready: impl Iterator<Item = TupleId>,
        remaining_per_pipe: &[u32],
    ) -> (i64, i64, u32) {
        let n = ctx.len() as i64;
        let placed = engine.placed() as i64;
        let remaining = n - placed;
        let t_prev = i64::from(engine.total_nops()) + placed - 1;
        if remaining == 0 {
            // Degenerate (fully placed): bound = μ; record the base alone.
            return (t_prev, t_prev, engine.total_nops());
        }
        let base = t_prev + remaining;
        let mut chain = base;
        for t in ready {
            let est = engine.earliest_issue(t, ctx.sigma(t));
            chain = chain.max(est + self.tail(t));
        }
        let mut resource = base;
        for (p, &k) in remaining_per_pipe.iter().enumerate() {
            if k == 0 {
                continue;
            }
            let enq = i64::from(ctx.pipe_enqueue[p]);
            resource = resource.max(t_prev + 1 + enq * (i64::from(k) - 1));
        }
        let bound = (chain.max(resource) - (n - 1)).max(0) as u32;
        (chain, resource, bound)
    }
}

/// Admissible lower bound on μ for the whole block, scheduled from a cold
/// boundary with each op on its default unit. This is the bound `search`
/// uses for its optimality pre-check; callers that obtain a schedule by
/// other means (a cache hit, a heuristic tier) can compare against it to
/// prove optimality without running the branch-and-bound at all.
pub fn global_lower_bound(ctx: &SchedContext<'_>) -> u32 {
    let n = ctx.len();
    if n == 0 {
        return 0;
    }
    let lb = LowerBound::new(ctx);
    let engine = TimingEngine::new(ctx);
    let ready = (0..n as u32)
        .map(TupleId)
        .filter(|t| ctx.preds[t.index()].is_empty());
    let mut counts = vec![0u32; ctx.machine.pipeline_count()];
    for i in 0..n {
        if let Some(p) = ctx.sigma[i] {
            counts[p.index()] += 1;
        }
    }
    lb.bound(ctx, &engine, ready, &counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::{BlockBuilder, DepDag};
    use pipesched_machine::presets;

    #[test]
    fn tails_reflect_latency_chains() {
        let mut b = BlockBuilder::new("tails");
        let x = b.load("x"); // loader latency 2
        let m = b.mul(x, x); // multiplier latency 4
        let m2 = b.mul(m, m);
        b.store("z", m2);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let lb = LowerBound::new(&ctx);
        // store: 0; m2: store next-cycle ⇒ its flow succ... m2→store is a
        // flow edge with m2's latency 4: tail(m2) = 4. tail(m) = 4 + 4.
        // tail(x) = 2 + 8.
        assert_eq!(lb.tail(TupleId(3)), 0);
        assert_eq!(lb.tail(TupleId(2)), 4);
        assert_eq!(lb.tail(TupleId(1)), 8);
        assert_eq!(lb.tail(TupleId(0)), 10);
    }

    #[test]
    fn bound_on_empty_prefix_is_admissible() {
        let mut b = BlockBuilder::new("adm");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        b.store("z", m);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let lb = LowerBound::new(&ctx);
        let engine = TimingEngine::new(&ctx);
        let remaining = vec![2u32, 0, 1];
        let ready = [TupleId(0), TupleId(1)];
        let bound = lb.bound(&ctx, &engine, ready.iter().copied(), &remaining);

        // Optimal schedule: x@0, y@1, mul@3 (waits y latency), store@7.
        // μ = 7 - 3 = 4.
        let order: Vec<_> = block.ids().collect();
        let (_, actual) = crate::timing::evaluate_schedule(&ctx, &order);
        assert!(bound <= actual, "bound {bound} exceeds optimum ≤ {actual}");
        assert!(bound > 0, "chain term should see the mul latency");
    }

    #[test]
    fn bound_equals_mu_when_complete() {
        let mut b = BlockBuilder::new("done");
        let x = b.load("x");
        b.store("z", x);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let lb = LowerBound::new(&ctx);
        let mut engine = TimingEngine::new(&ctx);
        engine.push_default(TupleId(0));
        engine.push_default(TupleId(1));
        let bound = lb.bound(&ctx, &engine, std::iter::empty(), &[0, 0, 0]);
        assert_eq!(bound, engine.total_nops());
    }

    #[test]
    fn terms_agree_with_bound() {
        let mut b = BlockBuilder::new("terms");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        let a = b.add(m, x);
        b.store("z", a);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let lb = LowerBound::new(&ctx);
        let mut engine = TimingEngine::new(&ctx);
        let mut remaining = vec![0u32; machine.pipeline_count()];
        for i in 0..ctx.len() {
            if let Some(p) = ctx.sigma[i] {
                remaining[p.index()] += 1;
            }
        }
        // Compare on every prefix of program order (it is a legal order).
        for placed in 0..=ctx.len() {
            let ready: Vec<TupleId> = (0..ctx.len() as u32)
                .map(TupleId)
                .filter(|t| engine.issue_time(*t).is_none())
                .filter(|t| {
                    ctx.preds[t.index()]
                        .iter()
                        .all(|p| engine.issue_time(TupleId(p.from)).is_some())
                })
                .collect();
            let plain = lb.bound(&ctx, &engine, ready.iter().copied(), &remaining);
            let (chain, resource, bound) = lb.terms(&ctx, &engine, ready.into_iter(), &remaining);
            assert_eq!(bound, plain, "terms bound diverges at prefix {placed}");
            let n = ctx.len() as i64;
            if placed < ctx.len() {
                assert_eq!(bound, (chain.max(resource) - (n - 1)).max(0) as u32);
            }
            if placed < ctx.len() {
                let t = TupleId(placed as u32);
                engine.push_default(t);
                if let Some(p) = ctx.sigma(t) {
                    remaining[p.index()] -= 1;
                }
            }
        }
    }
}
