//! Per-block scheduling context: the block's DAG bound to a machine.

use pipesched_ir::{BasicBlock, BlockAnalysis, DepDag, DepKind, TupleId};
use pipesched_machine::{Machine, PipelineId};

/// A dependence of one tuple on an earlier one, preprocessed for the timing
/// engine: `flow` distinguishes true (value) dependences, which wait for the
/// producer's pipeline latency, from anti/output dependences, which only
/// require issuing at least one cycle later.
#[derive(Debug, Clone, Copy)]
pub struct PredDep {
    /// Index of the producing tuple.
    pub from: u32,
    /// True for flow dependences (wait for latency), false for anti/output.
    pub flow: bool,
}

/// Everything the schedulers need to know about one block on one machine.
///
/// The context is immutable during a search; all mutable state lives in
/// [`crate::TimingEngine`] and the search's own bookkeeping.
pub struct SchedContext<'a> {
    /// The block being scheduled.
    pub block: &'a BasicBlock,
    /// Its dependence DAG.
    pub dag: &'a DepDag,
    /// Precomputed closure/slack analysis.
    pub analysis: BlockAnalysis,
    /// The target machine.
    pub machine: &'a Machine,
    /// Default pipeline assignment σ(ζ) per tuple (`None` ⇒ σ = ∅).
    pub sigma: Vec<Option<PipelineId>>,
    /// All pipelines allowed for each tuple (for the selection extension).
    pub allowed: Vec<Vec<PipelineId>>,
    /// Preprocessed immediate predecessors per tuple.
    pub preds: Vec<Vec<PredDep>>,
    /// Interchangeability class for *free* instructions (σ=∅ ∧ ρ=∅):
    /// two free instructions share a class iff they have identical
    /// immediate-successor sets, which makes swapping them a pure
    /// relabeling. `None` for non-free instructions. (Rule [5c] as the
    /// paper prints it — any two free instructions — can prune the optimum
    /// when the two feed different consumers; see the module docs of
    /// `crate::bnb`.)
    pub free_class: Vec<Option<u32>>,
    /// Per-pipeline latency (indexed by pipeline id).
    pub pipe_latency: Vec<u32>,
    /// Per-pipeline enqueue time (indexed by pipeline id).
    pub pipe_enqueue: Vec<u32>,
}

impl<'a> SchedContext<'a> {
    /// Bind `block` (with its `dag`) to `machine`.
    pub fn new(block: &'a BasicBlock, dag: &'a DepDag, machine: &'a Machine) -> Self {
        let analysis = BlockAnalysis::compute(dag);
        let n = block.len();
        let mut sigma = Vec::with_capacity(n);
        let mut allowed = Vec::with_capacity(n);
        let mut preds: Vec<Vec<PredDep>> = Vec::with_capacity(n);
        for t in block.tuples() {
            sigma.push(machine.default_pipeline_for(t.op));
            allowed.push(machine.pipelines_for(t.op).to_vec());
            preds.push(
                dag.preds(t.id)
                    .iter()
                    .map(|e| PredDep {
                        from: e.from.0,
                        flow: e.kind == DepKind::Flow,
                    })
                    .collect(),
            );
        }
        let pipe_latency = machine.pipelines().iter().map(|p| p.latency).collect();
        let pipe_enqueue = machine.pipelines().iter().map(|p| p.enqueue).collect();

        // Free-instruction interchangeability classes, keyed by succ sets.
        let mut class_table: std::collections::HashMap<Vec<u32>, u32> =
            std::collections::HashMap::new();
        let mut free_class = vec![None; n];
        for i in 0..n {
            if sigma[i].is_some() || !preds[i].is_empty() {
                continue;
            }
            let mut succs: Vec<u32> = dag
                .succs(TupleId(i as u32))
                .iter()
                .map(|e| e.to.0)
                .collect();
            succs.sort_unstable();
            let next = class_table.len() as u32;
            free_class[i] = Some(*class_table.entry(succs).or_insert(next));
        }

        SchedContext {
            block,
            dag,
            analysis,
            machine,
            sigma,
            allowed,
            preds,
            free_class,
            pipe_latency,
            pipe_enqueue,
        }
    }

    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.block.len()
    }

    /// True for an empty block.
    pub fn is_empty(&self) -> bool {
        self.block.is_empty()
    }

    /// σ(ζ): the default pipeline of tuple `t`.
    pub fn sigma(&self, t: TupleId) -> Option<PipelineId> {
        self.sigma[t.index()]
    }

    /// Latency of pipeline `p`.
    pub fn latency(&self, p: PipelineId) -> u32 {
        self.pipe_latency[p.index()]
    }

    /// Enqueue time of pipeline `p`.
    pub fn enqueue(&self, p: PipelineId) -> u32 {
        self.pipe_enqueue[p.index()]
    }

    /// The paper's `ρ(ζ) = ∅` test used by the equivalence filter [5c].
    pub fn has_no_preds(&self, t: TupleId) -> bool {
        self.preds[t.index()].is_empty()
    }

    /// True when both σ(ζ)=∅ and ρ(ζ)=∅ — the instruction neither uses a
    /// pipelined resource nor depends on anything.
    pub fn is_free_instruction(&self, t: TupleId) -> bool {
        self.sigma(t).is_none() && self.has_no_preds(t)
    }

    /// True when `a` and `b` are interchangeable free instructions: both
    /// σ=∅ ∧ ρ=∅ *and* gating exactly the same successors. Swapping such a
    /// pair is a relabeling with identical timing and identical readiness
    /// consequences, so exploring only one order is safe.
    pub fn interchangeable_free(&self, a: TupleId, b: TupleId) -> bool {
        match (self.free_class[a.index()], self.free_class[b.index()]) {
            (Some(ca), Some(cb)) => ca == cb,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::{BlockBuilder, Op};
    use pipesched_machine::presets;

    #[test]
    fn context_binds_sigma_and_preds() {
        let mut b = BlockBuilder::new("ctx");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        b.store("z", m);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);

        assert_eq!(ctx.len(), 4);
        // Loads map to the loader, mul to the multiplier, store to nothing.
        assert_eq!(
            ctx.sigma(TupleId(0)),
            machine.default_pipeline_for(Op::Load)
        );
        assert!(ctx.sigma(TupleId(3)).is_none());
        // Mul has two flow preds.
        assert_eq!(ctx.preds[2].len(), 2);
        assert!(ctx.preds[2].iter().all(|p| p.flow));
        // Store depends on mul.
        assert_eq!(ctx.preds[3].len(), 1);
    }

    #[test]
    fn free_instruction_classification() {
        let mut b = BlockBuilder::new("free");
        let c = b.constant(1); // Const: σ=∅, ρ=∅ → free
        let x = b.load("x"); // Load: σ=loader → not free
        let s = b.add(c, x);
        b.store("z", s);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        assert!(ctx.is_free_instruction(TupleId(0)));
        assert!(!ctx.is_free_instruction(TupleId(1)));
        assert!(!ctx.is_free_instruction(TupleId(3)), "store has preds");
    }
}
