//! The list-scheduling heuristic that seeds the search (§3.2).
//!
//! The paper uses the heuristic of [ZaD90] to "arrange the tuples into a
//! sequential order so that the distance between each instruction and the
//! instructions that depend on it is as large as possible", and stresses
//! (§4.1) that the list scheduler does **not** look at the pipeline tables —
//! the initial schedule is machine-independent.
//!
//! We realize that objective as greedy highest-first topological ordering:
//! at each position pick the ready instruction with the greatest *height*
//! (longest chain of dependents below it). Scheduling tall instructions
//! early pushes their consumers as far away as possible. Ties are broken by
//! the number of immediate successors (more consumers ⇒ earlier), then by
//! original program position (for determinism).

use pipesched_ir::{BlockAnalysis, DepDag, TupleId};

/// Compute the machine-independent initial schedule for `dag`.
///
/// Returns a legal topological order of all instructions.
pub fn list_schedule(dag: &DepDag, analysis: &BlockAnalysis) -> Vec<TupleId> {
    let n = dag.len();
    let mut unplaced_preds: Vec<u32> = (0..n)
        .map(|i| dag.preds(TupleId(i as u32)).len() as u32)
        .collect();
    let mut ready: Vec<TupleId> = (0..n as u32)
        .map(TupleId)
        .filter(|&t| unplaced_preds[t.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);

    while let Some(pos) = pick(&ready, dag, analysis) {
        let t = ready.swap_remove(pos);
        order.push(t);
        for e in dag.succs(t) {
            let c = &mut unplaced_preds[e.to.index()];
            *c -= 1;
            if *c == 0 {
                ready.push(e.to);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "DAG must be acyclic");
    order
}

fn pick(ready: &[TupleId], dag: &DepDag, analysis: &BlockAnalysis) -> Option<usize> {
    ready
        .iter()
        .enumerate()
        .max_by_key(|&(_, &t)| {
            (
                analysis.height(t),
                dag.succs(t).len(),
                std::cmp::Reverse(t.0),
            )
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::{analysis::verify_schedule, BlockBuilder};

    #[test]
    fn produces_legal_schedule() {
        let mut b = BlockBuilder::new("ls");
        let x = b.load("x");
        let y = b.load("y");
        let s = b.add(x, y);
        let c = b.load("c");
        let m = b.mul(s, c);
        b.store("z", m);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let analysis = BlockAnalysis::compute(&dag);
        let order = list_schedule(&dag, &analysis);
        verify_schedule(&block, &dag, &order).unwrap();
    }

    #[test]
    fn tall_chains_start_first() {
        // Chain: a -> b -> c -> store (height 3 at a)
        // Plus an independent load "solo" (height 1: store).
        let mut b = BlockBuilder::new("tall");
        let a = b.load("a");
        let n1 = b.neg(a);
        let n2 = b.neg(n1);
        b.store("r", n2);
        let solo = b.load("solo");
        b.store("s", solo);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let analysis = BlockAnalysis::compute(&dag);
        let order = list_schedule(&dag, &analysis);
        assert_eq!(order[0], a, "tallest ready node first: {order:?}");
    }

    #[test]
    fn separates_producer_from_consumer() {
        // load a; neg a; load b; neg b — heights equal; the heuristic should
        // still interleave rather than keep producer/consumer adjacent,
        // because after scheduling `load a` the ready node with max height
        // is `load b` (height 1... both negs have height 1 via store).
        let mut b = BlockBuilder::new("sep");
        let a = b.load("a");
        let na = b.neg(a);
        b.store("ra", na);
        let bb_ = b.load("b");
        let nb = b.neg(bb_);
        b.store("rb", nb);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let analysis = BlockAnalysis::compute(&dag);
        let order = list_schedule(&dag, &analysis);
        let pos = |t: TupleId| order.iter().position(|&x| x == t).unwrap();
        // Both loads precede both negs: producers are maximally separated
        // from their consumers.
        assert!(pos(a) < pos(na));
        assert!(pos(bb_) < pos(nb));
        assert!(
            pos(bb_) < pos(na) || pos(a) < pos(nb),
            "loads interleave ahead of negs: {order:?}"
        );
    }

    #[test]
    fn deterministic() {
        let mut b = BlockBuilder::new("det");
        for name in ["a", "b", "c", "d"] {
            let l = b.load(name);
            b.store(&format!("s{name}"), l);
        }
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let analysis = BlockAnalysis::compute(&dag);
        let o1 = list_schedule(&dag, &analysis);
        let o2 = list_schedule(&dag, &analysis);
        assert_eq!(o1, o2);
    }

    #[test]
    fn empty_dag() {
        let block = BlockBuilder::new("e").finish().unwrap();
        let dag = DepDag::build(&block);
        let analysis = BlockAnalysis::compute(&dag);
        assert!(list_schedule(&dag, &analysis).is_empty());
    }
}
