//! Per-depth search profiling.
//!
//! A [`SearchProfile`] breaks every [`crate::SearchStats`] counter down by
//! search-tree depth and adds inclusive wall time per depth, answering
//! *where* the branch-and-bound spends its work: which depths visit the
//! most nodes, which prune rule carries the load near the root versus the
//! leaves, and how much time each level costs.
//!
//! Profiling follows the proof logger's `Option`-gated hook: the search
//! takes `Option<&mut SearchProfile>` and the disabled path costs one
//! branch per counter bump. Timing is only read when a profile is
//! attached, so plain [`crate::search`] never touches the clock.

use pipesched_json::{json_object, Json};

/// Counters for one search-tree depth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DepthStats {
    /// Nodes visited at this depth (prefix length = depth).
    pub nodes: u64,
    /// Ω calls made while extending prefixes of this length.
    pub omega_calls: u64,
    /// Candidates rejected by the quick [5a] check.
    pub pruned_quick: u64,
    /// Candidates rejected by the readiness test [5b].
    pub pruned_legality: u64,
    /// Candidates rejected by the equivalence filter [5c].
    pub pruned_equivalence: u64,
    /// Subtrees abandoned by the α-β / lower-bound test [6].
    pub pruned_bound: u64,
    /// Inclusive wall time spent in `dfs` calls at this depth, ns. A
    /// depth-`d+1` call nests in exactly one depth-`d` call, so
    /// `time_ns` is monotonically nonincreasing in `d`.
    pub time_ns: u64,
}

/// Per-depth breakdown of one branch-and-bound run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchProfile {
    /// Stats indexed by depth; grown on demand, so `depths.len()` is one
    /// more than the deepest prefix the search committed.
    pub depths: Vec<DepthStats>,
}

impl SearchProfile {
    /// Empty profile, ready to attach to a search.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable stats for `depth`, growing the vector as needed.
    pub fn at(&mut self, depth: usize) -> &mut DepthStats {
        if depth >= self.depths.len() {
            self.depths.resize(depth + 1, DepthStats::default());
        }
        &mut self.depths[depth]
    }

    /// Total nodes across depths; equals the run's
    /// [`crate::SearchStats::nodes_visited`].
    pub fn total_nodes(&self) -> u64 {
        self.depths.iter().map(|d| d.nodes).sum()
    }

    /// *Self* time of a depth: its inclusive time minus the inclusive time
    /// of the next depth (every depth-`d+1` call nests in a depth-`d`
    /// call, so the difference is the time spent at exactly this level).
    pub fn self_time_ns(&self, depth: usize) -> u64 {
        let own = self.depths.get(depth).map_or(0, |d| d.time_ns);
        let nested = self.depths.get(depth + 1).map_or(0, |d| d.time_ns);
        own.saturating_sub(nested)
    }

    /// JSON rendering: an array of per-depth objects.
    pub fn to_json(&self) -> Json {
        Json::Array(
            self.depths
                .iter()
                .enumerate()
                .map(|(depth, d)| {
                    json_object![
                        ("depth", depth as i64),
                        ("nodes", d.nodes as i64),
                        ("omega_calls", d.omega_calls as i64),
                        ("pruned_quick", d.pruned_quick as i64),
                        ("pruned_legality", d.pruned_legality as i64),
                        ("pruned_equivalence", d.pruned_equivalence as i64),
                        ("pruned_bound", d.pruned_bound as i64),
                        ("time_ns", d.time_ns as i64),
                    ]
                })
                .collect(),
        )
    }
}
