//! High-level scheduling facade.
//!
//! ```
//! use pipesched_ir::BlockBuilder;
//! use pipesched_machine::presets;
//! use pipesched_core::Scheduler;
//!
//! let mut b = BlockBuilder::new("demo");
//! let x = b.load("x");
//! let y = b.load("y");
//! let m = b.mul(x, y);
//! b.store("r", m);
//! let block = b.finish().unwrap();
//!
//! let scheduler = Scheduler::new(presets::paper_simulation());
//! let scheduled = scheduler.schedule(&block);
//! assert!(scheduled.optimal);
//! assert!(scheduled.nops <= scheduled.initial_nops);
//! ```

use pipesched_ir::{BasicBlock, DepDag, TupleId};
use pipesched_machine::{Machine, PipelineId};

use crate::bnb::{search, SearchConfig, SearchStats};
use crate::context::SchedContext;
use crate::parallel::{parallel_search, ParallelConfig};

/// Which exact scheduling backend answers a request.
///
/// `pipesched-core` implements the classic search family (serial and
/// parallel branch-and-bound, windowed); the SAT portfolio lives in
/// `pipesched-solve`, which depends on this crate. The selector therefore
/// lives here — the lowest layer every consumer (CLI, service, bench)
/// already sees — while dispatch happens at call sites that can see both
/// backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// The paper's branch-and-bound search (default).
    #[default]
    Bnb,
    /// The CDCL SAT backend: descending time-indexed feasibility queries.
    Sat,
    /// Race branch-and-bound against SAT; first provably-optimal answer
    /// wins and, when both finish, their optima are cross-checked.
    Race,
}

impl Backend {
    /// Stable lowercase name, used in JSON records and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Bnb => "bnb",
            Backend::Sat => "sat",
            Backend::Race => "race",
        }
    }

    /// Parse a backend from its stable name.
    pub fn from_name(name: &str) -> Option<Backend> {
        match name {
            "bnb" => Some(Backend::Bnb),
            "sat" => Some(Backend::Sat),
            "race" => Some(Backend::Race),
            _ => None,
        }
    }

    /// All backends, in stable order.
    pub const ALL: [Backend; 3] = [Backend::Bnb, Backend::Sat, Backend::Race];
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A configured scheduler bound to a target machine.
#[derive(Debug, Clone)]
pub struct Scheduler {
    machine: Machine,
    config: SearchConfig,
    parallel_threads: Option<usize>,
}

impl Scheduler {
    /// Create a scheduler with the paper's default search configuration.
    pub fn new(machine: Machine) -> Self {
        Scheduler {
            machine,
            config: SearchConfig::default(),
            parallel_threads: None,
        }
    }

    /// Override the full search configuration.
    pub fn with_config(mut self, config: SearchConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the curtail point λ.
    pub fn with_lambda(mut self, lambda: u64) -> Self {
        self.config.lambda = lambda;
        self
    }

    /// Set an anytime wall-clock deadline for every schedule call.
    pub fn with_deadline(mut self, deadline: Option<std::time::Instant>) -> Self {
        self.config.deadline = deadline;
        self
    }

    /// Use the work-stealing parallel branch-and-bound with `threads`
    /// workers (0 ⇒ one per CPU). The full search configuration — λ,
    /// deadline, bound and equivalence ablations — applies unchanged.
    pub fn parallel(mut self, threads: usize) -> Self {
        self.parallel_threads = Some(threads);
        self
    }

    /// The machine this scheduler targets.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The active search configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Schedule one basic block.
    pub fn schedule(&self, block: &BasicBlock) -> ScheduledBlock {
        let dag = DepDag::build(block);
        self.schedule_with_dag(block, &dag)
    }

    /// Schedule a block whose DAG the caller already built.
    pub fn schedule_with_dag(&self, block: &BasicBlock, dag: &DepDag) -> ScheduledBlock {
        let ctx = SchedContext::new(block, dag, &self.machine);
        self.schedule_context(&ctx)
    }

    /// Schedule from a prebuilt [`SchedContext`] — the cheapest entry point
    /// when one block is scheduled repeatedly (escalation tiers, serving):
    /// the DAG, dependence analysis and machine tables are all reused. The
    /// context must target the same machine as this scheduler.
    pub fn schedule_context(&self, ctx: &SchedContext<'_>) -> ScheduledBlock {
        let outcome = match self.parallel_threads {
            Some(threads) => {
                parallel_search(ctx, &self.config, &ParallelConfig::with_threads(threads))
            }
            None => search(ctx, &self.config),
        };
        ScheduledBlock {
            order: outcome.order,
            assignment: outcome.assignment,
            etas: outcome.etas,
            nops: outcome.nops,
            initial_order: outcome.initial_order,
            initial_nops: outcome.initial_nops,
            optimal: outcome.optimal,
            stats: outcome.stats,
        }
    }
}

/// A scheduled basic block: the order, its per-position NOP padding, and
/// provenance of the result.
#[derive(Debug, Clone)]
pub struct ScheduledBlock {
    /// Instruction order (a permutation of the block's tuple ids).
    pub order: Vec<TupleId>,
    /// Pipeline unit per tuple (indexed by tuple id).
    pub assignment: Vec<Option<PipelineId>>,
    /// NOPs inserted immediately before each *position* of `order`.
    pub etas: Vec<u32>,
    /// Total NOPs μ(Π).
    pub nops: u32,
    /// The initial list schedule the search started from.
    pub initial_order: Vec<TupleId>,
    /// μ of the initial schedule.
    pub initial_nops: u32,
    /// True when the search completed: the schedule is provably optimal.
    pub optimal: bool,
    /// Search counters.
    pub stats: SearchStats,
}

impl ScheduledBlock {
    /// Iterate `(tuple, nops-before-it)` pairs in schedule order.
    pub fn iter_with_nops(&self) -> impl Iterator<Item = (TupleId, u32)> + '_ {
        self.order.iter().copied().zip(self.etas.iter().copied())
    }

    /// Total execution cycles of the padded schedule
    /// (instructions + NOPs; the last instruction's issue cycle + 1).
    pub fn total_cycles(&self) -> u64 {
        self.order.len() as u64 + u64::from(self.nops)
    }

    /// NOPs eliminated relative to the initial list schedule.
    pub fn nops_removed(&self) -> u32 {
        self.initial_nops.saturating_sub(self.nops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::BlockBuilder;
    use pipesched_machine::presets;

    fn demo_block() -> BasicBlock {
        let mut b = BlockBuilder::new("demo");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        let a = b.add(x, y);
        b.store("m", m);
        b.store("a", a);
        b.finish().unwrap()
    }

    #[test]
    fn facade_schedules_optimally() {
        let s = Scheduler::new(presets::paper_simulation());
        let out = s.schedule(&demo_block());
        assert!(out.optimal);
        assert_eq!(out.order.len(), 6);
        assert_eq!(out.etas.len(), 6);
        assert_eq!(out.etas.iter().sum::<u32>(), out.nops);
        assert_eq!(out.total_cycles(), 6 + u64::from(out.nops));
    }

    #[test]
    fn parallel_facade_agrees_with_serial() {
        let block = demo_block();
        let serial = Scheduler::new(presets::paper_simulation()).schedule(&block);
        let par = Scheduler::new(presets::paper_simulation())
            .parallel(2)
            .schedule(&block);
        assert_eq!(serial.nops, par.nops);
    }

    #[test]
    fn lambda_plumbs_through() {
        let s = Scheduler::new(presets::paper_simulation()).with_lambda(3);
        let out = s.schedule(&demo_block());
        assert!(out.stats.omega_calls <= 3);
    }

    #[test]
    fn nops_removed_reports_improvement() {
        let s = Scheduler::new(presets::paper_simulation());
        let out = s.schedule(&demo_block());
        assert_eq!(out.nops_removed(), out.initial_nops - out.nops);
    }
}
