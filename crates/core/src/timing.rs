//! The NOP-insertion algorithm (§4.2.2) as an incremental engine.
//!
//! The engine maintains, for a growing partial schedule Φ, the issue cycle
//! of every placed instruction. Pushing instruction ζ computes the earliest
//! cycle at which it may issue:
//!
//! ```text
//! t(ζ) = max( t(prev) + 1,                                  // 1 issue/cycle
//!             t(last op in σ(ζ)) + enqueue(σ(ζ)),           // conflict
//!             max over δ∈ρ(ζ): t(δ) + delay(δ) )            // dependence
//! delay(δ) = latency(pipeline assigned to δ)  for flow dependences
//!          = 1                                 for anti/output dependences
//!          = 1                                 when σ(δ) = ∅
//! ```
//!
//! and the NOPs inserted immediately before ζ are
//! `η(ζ) = t(ζ) - t(prev) - 1` (paper definition 4). The total NOP count of
//! the partial schedule, `μ(Φ) = Σ η` (definition 5), is maintained
//! incrementally; it is monotone non-decreasing under extension, which is
//! what makes the α-β prune of step [6] sound.
//!
//! The printed TR's τ(j) formula sums only the NOPs between instructions j
//! and i, omitting the issue cycle each intervening instruction itself
//! consumes; with that reading the paper's own §2.1 worked examples come out
//! wrong, so we implement the arithmetically consistent elapsed-time model
//! above (see DESIGN.md §3). Both §2.1 examples are regression-tested here.
//!
//! Every `push` can be undone in O(1) with `pop`, so the branch-and-bound
//! search explores the schedule tree without any re-evaluation.

use pipesched_ir::TupleId;
use pipesched_machine::PipelineId;

use crate::context::SchedContext;

const NO_ISSUE: i64 = i64::MIN / 2;

#[derive(Debug, Clone, Copy)]
struct Frame {
    tuple: u32,
    prev_t_prev: i64,
    /// Pipeline whose `last_in_pipe` entry was overwritten (`u32::MAX` ⇒ none).
    pipe: u32,
    prev_last_in_pipe: i64,
    eta: u32,
}

/// Pipeline state carried across a basic-block boundary (the paper's
/// footnote 1: "interactions between adjacent blocks can be managed ...
/// essentially by modifying the initial conditions in the analysis for
/// each block"). `pipe_age[p]` is the number of cycles that have elapsed,
/// at the next block's first issue slot, since the last operation was
/// enqueued in pipeline `p` (`None` ⇒ the pipeline was never used).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundaryState {
    /// Cycles since each pipeline's last enqueue, at the block-entry slot.
    pub pipe_age: Vec<Option<u32>>,
}

impl BoundaryState {
    /// A cold boundary: no pipeline has any operation in flight.
    pub fn cold(pipeline_count: usize) -> Self {
        BoundaryState {
            pipe_age: vec![None; pipeline_count],
        }
    }
}

/// Incremental issue-time / NOP calculator with O(1) undo.
pub struct TimingEngine<'c, 'a> {
    ctx: &'c SchedContext<'a>,
    issue: Vec<i64>,
    assignment: Vec<Option<PipelineId>>,
    last_in_pipe: Vec<i64>,
    t_prev: i64,
    placed: usize,
    total_nops: u32,
    undo: Vec<Frame>,
}

impl<'c, 'a> TimingEngine<'c, 'a> {
    /// Create an engine for `ctx` with an empty partial schedule.
    pub fn new(ctx: &'c SchedContext<'a>) -> Self {
        Self::with_boundary(ctx, &BoundaryState::cold(ctx.machine.pipeline_count()))
    }

    /// Create an engine whose pipelines start with the in-flight state of a
    /// preceding block: pipeline `p`'s most recent enqueue is treated as
    /// having happened `pipe_age[p]` cycles before this block's cycle 0.
    pub fn with_boundary(ctx: &'c SchedContext<'a>, boundary: &BoundaryState) -> Self {
        let n = ctx.len();
        assert_eq!(boundary.pipe_age.len(), ctx.machine.pipeline_count());
        let last_in_pipe = boundary
            .pipe_age
            .iter()
            .map(|age| match age {
                Some(a) => -i64::from(*a),
                None => NO_ISSUE,
            })
            .collect();
        TimingEngine {
            ctx,
            issue: vec![NO_ISSUE; n],
            assignment: vec![None; n],
            last_in_pipe,
            t_prev: -1,
            placed: 0,
            total_nops: 0,
            undo: Vec::with_capacity(n),
        }
    }

    /// Capture the boundary state a *successor* block would start from,
    /// assuming it begins issuing at the cycle after this engine's last
    /// issue.
    pub fn capture_boundary(&self) -> BoundaryState {
        let next_cycle = self.t_prev + 1;
        BoundaryState {
            pipe_age: self
                .last_in_pipe
                .iter()
                .map(|&last| {
                    if last == NO_ISSUE {
                        None
                    } else {
                        Some((next_cycle - last) as u32)
                    }
                })
                .collect(),
        }
    }

    /// Number of instructions placed so far.
    pub fn placed(&self) -> usize {
        self.placed
    }

    /// μ(Φ): total NOPs required by the current partial schedule.
    pub fn total_nops(&self) -> u32 {
        self.total_nops
    }

    /// Issue cycle of a placed instruction.
    pub fn issue_time(&self, t: TupleId) -> Option<i64> {
        let v = self.issue[t.index()];
        (v != NO_ISSUE).then_some(v)
    }

    /// The pipeline unit `t` was placed on.
    pub fn assigned_pipeline(&self, t: TupleId) -> Option<PipelineId> {
        self.assignment[t.index()]
    }

    /// Earliest cycle `t` could issue *if pushed now* on `pipe`, without
    /// mutating anything. All of `t`'s predecessors must already be placed.
    pub fn earliest_issue(&self, t: TupleId, pipe: Option<PipelineId>) -> i64 {
        let mut earliest = self.t_prev + 1;
        if let Some(p) = pipe {
            let last = self.last_in_pipe[p.index()];
            if last != NO_ISSUE {
                earliest = earliest.max(last + i64::from(self.ctx.enqueue(p)));
            }
        }
        for dep in &self.ctx.preds[t.index()] {
            let pt = self.issue[dep.from as usize];
            debug_assert!(pt != NO_ISSUE, "predecessor must be placed");
            let delay: i64 = if dep.flow {
                match self.assignment[dep.from as usize] {
                    Some(p) => i64::from(self.ctx.latency(p)),
                    None => 1,
                }
            } else {
                1
            };
            earliest = earliest.max(pt + delay);
        }
        earliest
    }

    /// Place `t` next in the schedule on pipeline `pipe` (normally
    /// `ctx.sigma(t)`; the selection extension passes explicit choices).
    /// Returns η(t), the NOPs inserted immediately before it.
    pub fn push(&mut self, t: TupleId, pipe: Option<PipelineId>) -> u32 {
        let earliest = self.earliest_issue(t, pipe);
        let eta = (earliest - (self.t_prev + 1)) as u32;

        let (pipe_idx, prev_last) = match pipe {
            Some(p) => (p.0, self.last_in_pipe[p.index()]),
            None => (u32::MAX, 0),
        };
        self.undo.push(Frame {
            tuple: t.0,
            prev_t_prev: self.t_prev,
            pipe: pipe_idx,
            prev_last_in_pipe: prev_last,
            eta,
        });

        self.issue[t.index()] = earliest;
        self.assignment[t.index()] = pipe;
        if let Some(p) = pipe {
            self.last_in_pipe[p.index()] = earliest;
        }
        self.t_prev = earliest;
        self.placed += 1;
        self.total_nops += eta;
        eta
    }

    /// Place `t` on its default pipeline σ(t).
    pub fn push_default(&mut self, t: TupleId) -> u32 {
        self.push(t, self.ctx.sigma(t))
    }

    /// Undo the most recent `push`.
    pub fn pop(&mut self) {
        let f = self.undo.pop().expect("pop on empty engine");
        self.issue[f.tuple as usize] = NO_ISSUE;
        self.assignment[f.tuple as usize] = None;
        if f.pipe != u32::MAX {
            self.last_in_pipe[f.pipe as usize] = f.prev_last_in_pipe;
        }
        self.t_prev = f.prev_t_prev;
        self.placed -= 1;
        self.total_nops -= f.eta;
    }

    /// Reset to the empty partial schedule.
    pub fn clear(&mut self) {
        while !self.undo.is_empty() {
            self.pop();
        }
    }
}

/// Evaluate a complete schedule on its default pipeline assignment,
/// returning per-position η values and the total NOP count μ(Π).
///
/// This is the paper's procedure Ω applied to one schedule.
pub fn evaluate_schedule(ctx: &SchedContext<'_>, order: &[TupleId]) -> (Vec<u32>, u32) {
    let mut engine = TimingEngine::new(ctx);
    let etas: Vec<u32> = order.iter().map(|&t| engine.push_default(t)).collect();
    let total = engine.total_nops();
    (etas, total)
}

/// [`evaluate_schedule`] starting from a carried block boundary.
pub fn evaluate_schedule_from(
    ctx: &SchedContext<'_>,
    boundary: &BoundaryState,
    order: &[TupleId],
) -> (Vec<u32>, u32) {
    let mut engine = TimingEngine::with_boundary(ctx, boundary);
    let etas: Vec<u32> = order.iter().map(|&t| engine.push_default(t)).collect();
    let total = engine.total_nops();
    (etas, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::{BlockBuilder, DepDag};
    use pipesched_machine::presets;

    /// §2.1 example 1: `Load R1,X ; Add R0,R1` on a latency-4 loader needs
    /// a delay of 3 clock ticks between the two instructions.
    #[test]
    fn dependence_example_needs_three_nops() {
        let mut b = BlockBuilder::new("dep");
        let x = b.load("x");
        let y = b.load("y");
        let s = b.add(x, y);
        b.store("r", s);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::section2_example();
        let ctx = SchedContext::new(&block, &dag, &machine);

        let order: Vec<_> = block.ids().collect();
        let (etas, total) = evaluate_schedule(&ctx, &order);
        // Load x @0; Load y @2 (MAR conflict, 1 NOP); Add waits for y:
        // t ≥ 2 + 4 = 6, previous issued at 2, so 3 NOPs; Store next cycle.
        assert_eq!(etas, vec![0, 1, 3, 0]);
        assert_eq!(total, 4);
    }

    /// §2.1 example 2: two Loads through a MAR held 2 cycles (enqueue 2)
    /// need 1 NOP between them.
    #[test]
    fn conflict_example_needs_one_nop() {
        let mut b = BlockBuilder::new("conf");
        let x = b.load("x");
        let y = b.load("y");
        b.store("a", x);
        b.store("b", y);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::section2_example();
        let ctx = SchedContext::new(&block, &dag, &machine);

        let mut e = TimingEngine::new(&ctx);
        assert_eq!(e.push_default(pipesched_ir::TupleId(0)), 0);
        assert_eq!(e.push_default(pipesched_ir::TupleId(1)), 1, "MAR conflict");
        assert_eq!(e.issue_time(pipesched_ir::TupleId(1)), Some(2));
    }

    #[test]
    fn push_pop_restores_state_exactly() {
        let mut b = BlockBuilder::new("undo");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        b.store("z", m);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);

        let mut e = TimingEngine::new(&ctx);
        let t0 = pipesched_ir::TupleId(0);
        let t1 = pipesched_ir::TupleId(1);
        e.push_default(t0);
        let nops_after_one = e.total_nops();
        let eta1 = e.push_default(t1);
        e.pop();
        assert_eq!(e.placed(), 1);
        assert_eq!(e.total_nops(), nops_after_one);
        // Re-pushing reproduces the same η.
        assert_eq!(e.push_default(t1), eta1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut b = BlockBuilder::new("clr");
        let x = b.load("x");
        b.store("z", x);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);

        let mut e = TimingEngine::new(&ctx);
        e.push_default(pipesched_ir::TupleId(0));
        e.push_default(pipesched_ir::TupleId(1));
        e.clear();
        assert_eq!(e.placed(), 0);
        assert_eq!(e.total_nops(), 0);
        assert_eq!(e.issue_time(pipesched_ir::TupleId(0)), None);
    }

    #[test]
    fn anti_dependence_requires_only_issue_order() {
        // Load x, then Store x: the store may issue the very next cycle —
        // it does not wait out the loader's latency.
        let mut b = BlockBuilder::new("anti");
        let x = b.load("x");
        let c = b.constant(9);
        b.store("x", c);
        b.store("keep", x);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let order: Vec<_> = block.ids().collect();
        let (etas, _) = evaluate_schedule(&ctx, &order);
        assert_eq!(etas[2], 0, "anti dep adds no NOPs: {etas:?}");
    }

    #[test]
    fn unpipelined_machine_needs_no_nops_for_any_order() {
        let mut b = BlockBuilder::new("nopipe");
        let x = b.load("x");
        let y = b.load("y");
        let s = b.add(x, y);
        b.store("z", s);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::unpipelined();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let order: Vec<_> = block.ids().collect();
        let (_, total) = evaluate_schedule(&ctx, &order);
        assert_eq!(total, 0);
    }

    #[test]
    fn scheduling_hides_latency() {
        // load a; load b; mul a,b; load c; load d; mul c,d — in source order
        // the first mul stalls; interleaving hides it.
        let mut b = BlockBuilder::new("hide");
        let a = b.load("a");
        let bb_ = b.load("b");
        let m1 = b.mul(a, bb_);
        let c = b.load("c");
        let d = b.load("d");
        let m2 = b.mul(c, d);
        b.store("r1", m1);
        b.store("r2", m2);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);

        let source: Vec<_> = block.ids().collect();
        let (_, mu_source) = evaluate_schedule(&ctx, &source);
        // Interleaved: a b c d m1 m2 r1 r2
        let ids = [0u32, 1, 3, 4, 2, 5, 6, 7].map(pipesched_ir::TupleId);
        let (_, mu_inter) = evaluate_schedule(&ctx, &ids);
        assert!(
            mu_inter < mu_source,
            "interleaving should help: {mu_inter} vs {mu_source}"
        );
    }

    #[test]
    fn enqueue_conflict_only_against_same_pipeline() {
        // Load then Mul: different pipelines — no conflict beyond deps.
        let mut b = BlockBuilder::new("cross");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        let m2 = b.mul(m, m);
        b.store("z", m2);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let order: Vec<_> = block.ids().collect();
        let (etas, _) = evaluate_schedule(&ctx, &order);
        // loads back-to-back (enqueue 1): no NOP before load y.
        assert_eq!(etas[1], 0);
        // first mul waits for load y's latency (2): issued at 1, mul ≥ 3 → 1 NOP.
        assert_eq!(etas[2], 1);
        // second mul: dep on first mul latency 4 (t=3 → ≥7) and multiplier
        // enqueue 2 (≥5); dep dominates: ≥7; prev issued 3 → 3 NOPs.
        assert_eq!(etas[3], 3);
    }
}
