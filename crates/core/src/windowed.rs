//! Windowed scheduling of very large blocks (§5.3's future work).
//!
//! "For very large basic blocks, it might be useful to split the basic
//! blocks into smaller sections (containing, say, twenty instructions or
//! less each) and find solutions which are locally optimal. A good
//! heuristic for the split might be to simply partition the list schedule."
//!
//! That is exactly what this module does: compute the machine-independent
//! list schedule, partition it into windows of `window` instructions, and
//! run the branch-and-bound search *within* each window while the timing
//! engine carries the committed prefix's pipeline state across the window
//! boundary (the paper's footnote 1: adjacent regions interact only through
//! "the initial conditions in the analysis").
//!
//! Windowed schedules are locally optimal per window, globally heuristic:
//! `μ(optimal) ≤ μ(windowed) ≤ μ(list schedule)` — both inequalities are
//! asserted by the test suite.

use pipesched_ir::TupleId;

use crate::bnb::SearchStats;
use crate::context::SchedContext;
use crate::list_sched::list_schedule;
use crate::timing::TimingEngine;

/// Result of a windowed scheduling run.
#[derive(Debug, Clone)]
pub struct WindowedOutcome {
    /// The complete schedule (all windows concatenated).
    pub order: Vec<TupleId>,
    /// η per position of `order`.
    pub etas: Vec<u32>,
    /// Total NOPs of the stitched schedule.
    pub nops: u32,
    /// μ of the plain list schedule (the starting point).
    pub initial_nops: u32,
    /// Window length used.
    pub window: usize,
    /// Number of windows.
    pub windows: usize,
    /// Combined search counters across windows.
    pub stats: SearchStats,
}

/// Schedule `ctx`'s block by locally-optimal windows of `window`
/// instructions (λ is a whole-block budget shared by the windows).
pub fn windowed_schedule(ctx: &SchedContext<'_>, window: usize, lambda: u64) -> WindowedOutcome {
    windowed_schedule_bounded(ctx, window, lambda, None)
}

/// [`windowed_schedule`] with an anytime wall-clock deadline: windows whose
/// search exhausts the deadline (and all later windows) fall back to the
/// list-schedule order, so a legal full schedule is always returned.
pub fn windowed_schedule_bounded(
    ctx: &SchedContext<'_>,
    window: usize,
    lambda: u64,
    deadline: Option<std::time::Instant>,
) -> WindowedOutcome {
    assert!(window >= 1, "window must be at least 1 instruction");
    let n = ctx.len();
    let base = list_schedule(ctx.dag, &ctx.analysis);
    let (_, initial_nops) = crate::timing::evaluate_schedule(ctx, &base);

    let mut engine = TimingEngine::new(ctx);
    let mut order: Vec<TupleId> = Vec::with_capacity(n);
    let mut etas: Vec<u32> = Vec::with_capacity(n);
    let mut stats = SearchStats::default();
    let mut windows = 0usize;

    for chunk in base.chunks(window) {
        windows += 1;
        let best = optimize_window(ctx, &mut engine, chunk, lambda, deadline, &mut stats);
        // Commit the window's best order permanently.
        for &t in &best {
            let eta = engine.push_default(t);
            order.push(t);
            etas.push(eta);
        }
    }
    let nops = engine.total_nops();

    WindowedOutcome {
        order,
        etas,
        nops,
        initial_nops,
        window,
        windows,
        stats,
    }
}

/// Find the minimum-NOP ordering of `chunk`'s instructions given the
/// engine's committed prefix. The chunk is a contiguous slice of a
/// topological order, so every predecessor of a chunk member is either
/// already committed or inside the chunk.
fn optimize_window<'c, 'a>(
    ctx: &'c SchedContext<'a>,
    engine: &mut TimingEngine<'c, 'a>,
    chunk: &[TupleId],
    lambda: u64,
    deadline: Option<std::time::Instant>,
    stats: &mut SearchStats,
) -> Vec<TupleId> {
    let k = chunk.len();
    if k <= 1 {
        return chunk.to_vec();
    }
    if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
        // Out of time: keep the list order for this and later windows.
        stats.truncated = true;
        stats.deadline_hit = true;
        return chunk.to_vec();
    }

    // Pending-predecessor counts *within the chunk*.
    let in_chunk = |t: TupleId| chunk.contains(&t);
    let mut pending: Vec<u32> = chunk
        .iter()
        .map(|&t| {
            ctx.preds[t.index()]
                .iter()
                .filter(|p| in_chunk(TupleId(p.from)))
                .count() as u32
        })
        .collect();

    // Incumbent: the chunk in list-schedule order.
    let base_mu = {
        let mark = engine.placed();
        for &t in chunk {
            engine.push_default(t);
        }
        let mu = engine.total_nops();
        while engine.placed() > mark {
            engine.pop();
        }
        mu
    };

    let mut dfs = WindowDfs {
        ctx,
        chunk,
        engine,
        pending: &mut pending,
        placed: vec![false; k],
        current: Vec::with_capacity(k),
        best_order: chunk.to_vec(),
        best_mu: base_mu,
        lambda,
        deadline,
        stats,
        stop: false,
    };
    dfs.run(0);
    dfs.best_order
}

struct WindowDfs<'w, 'c, 'a> {
    ctx: &'c SchedContext<'a>,
    chunk: &'w [TupleId],
    engine: &'w mut TimingEngine<'c, 'a>,
    pending: &'w mut [u32],
    placed: Vec<bool>,
    current: Vec<TupleId>,
    best_order: Vec<TupleId>,
    best_mu: u32,
    lambda: u64,
    deadline: Option<std::time::Instant>,
    stats: &'w mut SearchStats,
    stop: bool,
}

impl WindowDfs<'_, '_, '_> {
    fn run(&mut self, depth: usize) {
        let k = self.chunk.len();
        if depth == k {
            self.stats.complete_schedules += 1;
            let mu = self.engine.total_nops();
            if mu < self.best_mu {
                self.stats.improvements += 1;
                self.best_mu = mu;
                self.best_order.clone_from(&self.current);
            }
            return;
        }
        let mut seen_classes: Vec<u32> = Vec::new();
        for i in 0..k {
            if self.stop {
                return;
            }
            if self.placed[i] || self.pending[i] > 0 {
                self.stats.pruned_legality += 1;
                continue;
            }
            let t = self.chunk[i];
            // Restricted rule [5c]: one representative per
            // interchangeable-free class.
            if let Some(class) = self.ctx.free_class[t.index()] {
                if seen_classes.contains(&class) {
                    self.stats.pruned_equivalence += 1;
                    continue;
                }
                seen_classes.push(class);
            }

            self.stats.omega_calls += 1;
            if self.stats.omega_calls >= self.lambda {
                self.stats.truncated = true;
                self.stop = true;
            }
            if let Some(deadline) = self.deadline {
                if self
                    .stats
                    .omega_calls
                    .is_multiple_of(crate::bnb::DEADLINE_CHECK_INTERVAL)
                    && std::time::Instant::now() >= deadline
                {
                    self.stats.truncated = true;
                    self.stats.deadline_hit = true;
                    self.stop = true;
                }
            }

            self.placed[i] = true;
            for e in self.ctx.dag.succs(t) {
                if let Some(j) = self.chunk.iter().position(|&c| c == e.to) {
                    self.pending[j] -= 1;
                }
            }
            self.engine.push_default(t);
            self.current.push(t);

            if self.engine.total_nops() < self.best_mu && !self.stop {
                self.run(depth + 1);
            } else if !self.stop {
                self.stats.pruned_bound += 1;
            }

            self.current.pop();
            self.engine.pop();
            for e in self.ctx.dag.succs(t) {
                if let Some(j) = self.chunk.iter().position(|&c| c == e.to) {
                    self.pending[j] += 1;
                }
            }
            self.placed[i] = false;
            if self.stop {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnb::{search, SearchConfig};
    use pipesched_ir::{analysis::verify_schedule, BlockBuilder, DepDag};
    use pipesched_machine::presets;

    fn big_block() -> pipesched_ir::BasicBlock {
        let mut b = BlockBuilder::new("big");
        for i in 0..6 {
            let x = b.load(&format!("x{i}"));
            let y = b.load(&format!("y{i}"));
            let m = b.mul(x, y);
            b.store(&format!("r{i}"), m);
        }
        b.finish().unwrap()
    }

    #[test]
    fn windowed_is_legal_and_bounded_by_list_and_optimal() {
        let block = big_block();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);

        let optimal = search(&ctx, &SearchConfig::with_lambda(u64::MAX));
        assert!(optimal.optimal);

        for window in [4usize, 8, 12, 24] {
            let w = windowed_schedule(&ctx, window, 100_000);
            verify_schedule(&block, &dag, &w.order).unwrap();
            assert!(
                w.nops >= optimal.nops,
                "window {window}: windowed beat the optimum?!"
            );
            assert!(
                w.nops <= w.initial_nops,
                "window {window}: worse than the list schedule"
            );
            assert_eq!(w.etas.iter().sum::<u32>(), w.nops);
        }
    }

    #[test]
    fn full_window_equals_optimal() {
        let block = big_block();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let optimal = search(&ctx, &SearchConfig::with_lambda(u64::MAX));
        let w = windowed_schedule(&ctx, block.len(), u64::MAX / 2);
        assert_eq!(w.windows, 1);
        assert_eq!(w.nops, optimal.nops);
    }

    #[test]
    fn window_of_one_is_exactly_the_list_schedule() {
        let block = big_block();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let w = windowed_schedule(&ctx, 1, 1_000);
        assert_eq!(w.nops, w.initial_nops);
        assert_eq!(w.windows, block.len());
    }

    #[test]
    fn quality_improves_with_window_size() {
        // Not guaranteed in general (windowing is a heuristic) but holds on
        // this symmetric block: wider windows never hurt here.
        let block = big_block();
        let dag = DepDag::build(&block);
        let machine = presets::deep_pipeline();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let w4 = windowed_schedule(&ctx, 4, 200_000);
        let w24 = windowed_schedule(&ctx, 24, 200_000);
        assert!(w24.nops <= w4.nops);
    }

    #[test]
    fn empty_block() {
        let block = BlockBuilder::new("e").finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let w = windowed_schedule(&ctx, 8, 100);
        assert_eq!(w.nops, 0);
        assert!(w.order.is_empty());
    }
}
