//! Brute-force validation of the pipeline-*selection* extension: for tiny
//! blocks on machines with duplicated units, enumerate every legal
//! (schedule order × unit assignment) pair and check the search with
//! `pipeline_selection` finds exactly that global optimum.

use proptest::prelude::*;

use pipesched_core::{search, SchedContext, SearchConfig, TimingEngine};
use pipesched_ir::{BasicBlock, BlockBuilder, DepDag, Op, TupleId};
use pipesched_machine::{presets, PipelineId};

/// Exhaustive minimum over all orders × assignments.
fn brute_force_selection(ctx: &SchedContext<'_>) -> u32 {
    let n = ctx.len();
    let mut pending: Vec<u32> = (0..n).map(|i| ctx.preds[i].len() as u32).collect();
    let mut placed = vec![false; n];
    let mut engine = TimingEngine::new(ctx);
    let mut best = u32::MAX;
    recurse(ctx, &mut engine, &mut pending, &mut placed, 0, &mut best);
    best
}

fn recurse(
    ctx: &SchedContext<'_>,
    engine: &mut TimingEngine<'_, '_>,
    pending: &mut [u32],
    placed: &mut [bool],
    depth: usize,
    best: &mut u32,
) {
    let n = ctx.len();
    if depth == n {
        *best = (*best).min(engine.total_nops());
        return;
    }
    for i in 0..n {
        if placed[i] || pending[i] > 0 {
            continue;
        }
        let t = TupleId(i as u32);
        // Every allowed unit (or no unit at all).
        let choices: Vec<Option<PipelineId>> = if ctx.allowed[i].is_empty() {
            vec![None]
        } else {
            ctx.allowed[i].iter().map(|&p| Some(p)).collect()
        };
        placed[i] = true;
        for e in ctx.dag.succs(t) {
            pending[e.to.index()] -= 1;
        }
        for pipe in choices {
            engine.push(t, pipe);
            recurse(ctx, engine, pending, placed, depth + 1, best);
            engine.pop();
        }
        for e in ctx.dag.succs(t) {
            pending[e.to.index()] += 1;
        }
        placed[i] = false;
    }
}

fn tiny_block(script: &[u8]) -> BasicBlock {
    let mut b = BlockBuilder::new("sel");
    let vars = ["a", "b", "c"];
    for chunk in script.chunks(2) {
        if b.len() >= 6 {
            break;
        }
        let (op, x) = (chunk[0], chunk.get(1).copied().unwrap_or(0));
        let n = b.len();
        match op % 4 {
            0 => {
                b.load(vars[x as usize % 3]);
            }
            1 | 2 if n > 0 => {
                // Reference the latest value-producing tuples.
                let producers: Vec<TupleId> = {
                    let blk = b.clone().finish_unchecked();
                    blk.ids()
                        .filter(|&i| blk.tuple(i).op.produces_value())
                        .collect()
                };
                if producers.is_empty() {
                    b.load(vars[x as usize % 3]);
                } else {
                    let l = producers[x as usize % producers.len()];
                    let r = producers[(x / 3) as usize % producers.len()];
                    let ops = [Op::Add, Op::Sub, Op::Mul];
                    b.binary(ops[x as usize % 3], l, r);
                }
            }
            _ if n > 0 => {
                let blk = b.clone().finish_unchecked();
                let producers: Vec<TupleId> = blk
                    .ids()
                    .filter(|&i| blk.tuple(i).op.produces_value())
                    .collect();
                if let Some(&v) = producers.last() {
                    b.store(vars[x as usize % 3], v);
                } else {
                    b.load(vars[x as usize % 3]);
                }
            }
            _ => {
                b.load(vars[x as usize % 3]);
            }
        }
    }
    if b.is_empty() {
        b.load("a");
    }
    b.finish().expect("valid by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn selection_search_matches_brute_force(script in proptest::collection::vec(any::<u8>(), 0..14)) {
        let block = tiny_block(&script);
        let dag = DepDag::build(&block);
        let machine = presets::table2_example(); // two loaders, two adders
        let ctx = SchedContext::new(&block, &dag, &machine);

        let brute = brute_force_selection(&ctx);
        let cfg = SearchConfig {
            pipeline_selection: true,
            lambda: u64::MAX,
            ..SearchConfig::default()
        };
        let out = search(&ctx, &cfg);
        prop_assert!(out.optimal);
        prop_assert_eq!(out.nops, brute, "selection search missed the optimum on\n{}", block);

        // And fixed-assignment search can never beat the selecting one.
        let fixed = search(&ctx, &SearchConfig::with_lambda(u64::MAX));
        prop_assert!(fixed.nops >= out.nops);
    }
}

#[test]
fn selection_strictly_helps_on_contended_adders() {
    // Deterministic witness that selection finds strictly fewer NOPs when
    // independent adds contend for one adder's enqueue time.
    let mut b = BlockBuilder::new("contend");
    let x = b.load("x");
    let y = b.load("y");
    for i in 0..4 {
        let s = b.add(x, y);
        b.store(&format!("r{i}"), s);
    }
    let block = b.finish().unwrap();
    let dag = DepDag::build(&block);
    let machine = presets::table2_example();
    let ctx = SchedContext::new(&block, &dag, &machine);

    let fixed = search(&ctx, &SearchConfig::with_lambda(u64::MAX));
    let cfg = SearchConfig {
        pipeline_selection: true,
        lambda: u64::MAX,
        ..SearchConfig::default()
    };
    let selecting = search(&ctx, &cfg);
    assert!(
        selecting.nops < fixed.nops,
        "expected strict improvement: {} vs {}",
        selecting.nops,
        fixed.nops
    );
    assert_eq!(selecting.nops, brute_force_selection(&ctx));
}
