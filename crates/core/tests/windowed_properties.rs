//! Property tests for the windowed scheduler: on random blocks, for any
//! window size, the stitched schedule is legal and its quality sits
//! between the full optimum and the bare list schedule.

use proptest::prelude::*;

use pipesched_core::{search, windowed_schedule, SchedContext, SearchConfig};
use pipesched_ir::{analysis::verify_schedule, BasicBlock, BlockBuilder, DepDag, Op, TupleId};
use pipesched_machine::presets;

/// Build a random block of at most `max_len` instructions. The cap keeps the
/// reference `λ = ∞` optimal search tractable (cf. the 8–10 instruction caps
/// in `optimality.rs`): sparse ~20-instruction blocks on the unpipelined
/// functional-units machine make the exhaustive search blow up.
fn block_from_script(script: &[u8], max_len: usize) -> BasicBlock {
    let mut b = BlockBuilder::new("wprop");
    let vars = ["a", "b", "c", "d"];
    for chunk in script.chunks(2) {
        if b.len() >= max_len {
            break;
        }
        let (op, x) = (chunk[0], chunk.get(1).copied().unwrap_or(0));
        let blk = b.clone().finish_unchecked();
        let producers: Vec<TupleId> = blk
            .ids()
            .filter(|&i| blk.tuple(i).op.produces_value())
            .collect();
        match op % 5 {
            0 => {
                b.load(vars[x as usize % vars.len()]);
            }
            1 => {
                b.constant(i64::from(x));
            }
            2 | 3 if !producers.is_empty() => {
                let l = producers[x as usize % producers.len()];
                let r = producers[(x / 5) as usize % producers.len()];
                let ops = [Op::Add, Op::Sub, Op::Mul, Op::Div];
                b.binary(ops[x as usize % 4], l, r);
            }
            4 if !producers.is_empty() => {
                let v = producers[x as usize % producers.len()];
                b.store(vars[(x / 3) as usize % vars.len()], v);
            }
            _ => {
                b.load(vars[x as usize % vars.len()]);
            }
        }
    }
    if b.is_empty() {
        b.load("a");
    }
    b.finish().expect("valid by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn windowed_is_sandwiched_between_optimal_and_list(
        script in proptest::collection::vec(any::<u8>(), 2..40),
        window in 1usize..12,
        machine_sel in 0usize..3,
    ) {
        let block = block_from_script(&script, 12);
        let dag = DepDag::build(&block);
        let machines = [
            presets::paper_simulation(),
            presets::deep_pipeline(),
            presets::functional_units(),
        ];
        let machine = &machines[machine_sel];
        let ctx = SchedContext::new(&block, &dag, machine);

        let optimal = search(&ctx, &SearchConfig::with_lambda(u64::MAX));
        prop_assert!(optimal.optimal);

        let w = windowed_schedule(&ctx, window, 200_000);
        verify_schedule(&block, &dag, &w.order).unwrap();
        prop_assert!(w.nops >= optimal.nops, "windowed beat the optimum");
        prop_assert!(w.nops <= w.initial_nops, "worse than the list schedule");
        prop_assert_eq!(w.etas.iter().sum::<u32>(), w.nops);
        prop_assert_eq!(w.order.len(), block.len());
    }
}
