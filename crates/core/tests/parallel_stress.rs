//! Deterministic forced-steal stress for the work-stealing pool.
//!
//! `split_depth >= block length` turns *every* placement into a
//! stealable task, maximizing deque traffic and contention on the
//! shared incumbent/stop/pending protocol — the configuration the
//! model-checked harnesses in `crates/check/tests/model_*.rs` explore
//! at small scale, here driven end-to-end at 8 threads. The assertions
//! are the pool's shutdown contract: the scope joins (no wedged
//! worker), the result is exactly the serial optimum, and the merged
//! stats account for every split.

use pipesched_core::parallel::{parallel_prove, parallel_search, ParallelConfig};
use pipesched_core::{search, SchedContext, SearchConfig};
use pipesched_machine::presets;
use pipesched_proof::check_certificate;
use pipesched_synth::{generate_block, GeneratorConfig};

/// Every placement a task, fixed 8-thread pool.
fn forced_steal(threads: usize, n: usize) -> ParallelConfig {
    ParallelConfig {
        threads,
        split_depth: n,
    }
}

#[test]
fn forced_steal_pool_shuts_down_clean_at_8_threads() {
    for seed in [11u64, 23, 47] {
        let block = generate_block(&GeneratorConfig::new(6, 3, 2, seed));
        let dag = pipesched_ir::DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);

        let serial = search(&ctx, &SearchConfig::with_lambda(u64::MAX));
        assert!(serial.optimal);

        let par = parallel_search(
            &ctx,
            &SearchConfig::with_lambda(u64::MAX),
            &forced_steal(8, ctx.len()),
        );
        assert!(par.optimal, "forced-steal pool truncated on\n{block}");
        assert_eq!(par.nops, serial.nops, "disagrees with serial on\n{block}");
        pipesched_ir::analysis::verify_schedule(&block, &dag, &par.order).unwrap();
        // Shutdown accounting: whenever the pool actually explored (the
        // seed can prove optimality outright, skipping it), maximal
        // splitting must have produced subtree tasks; and the η
        // decomposition of the returned schedule is consistent.
        assert!(
            par.stats.nodes_visited == 0 || par.stats.splits > 0,
            "split_depth = n produced no subtree tasks over {} nodes",
            par.stats.nodes_visited
        );
        assert_eq!(par.etas.iter().sum::<u32>(), par.nops);
    }
}

#[test]
fn forced_steal_prover_still_certifies() {
    let block = generate_block(&GeneratorConfig::new(5, 3, 2, 31));
    let dag = pipesched_ir::DepDag::build(&block);
    let machine = presets::deep_pipeline();
    let ctx = SchedContext::new(&block, &dag, &machine);

    let serial = search(&ctx, &SearchConfig::with_lambda(u64::MAX));
    let (out, proof) = parallel_prove(
        &ctx,
        &SearchConfig::with_lambda(u64::MAX),
        &forced_steal(8, ctx.len()),
    );
    assert!(out.optimal);
    assert_eq!(out.nops, serial.nops);
    let check = check_certificate(&block, &machine, &proof.merge());
    assert!(
        check.is_certified(),
        "forced-steal certificate rejected:\n{}",
        check.report
    );
}

/// The threads=1 counter-exactness contract survives maximal splitting:
/// with LIFO pops the task order is the serial DFS order, so node and Ω
/// counters match the serial kernel bit for bit.
#[test]
fn forced_steal_single_thread_is_counter_exact() {
    for seed in [3u64, 17] {
        let block = generate_block(&GeneratorConfig::new(6, 3, 2, seed));
        let dag = pipesched_ir::DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);

        let serial = search(&ctx, &SearchConfig::with_lambda(u64::MAX));
        let par = parallel_search(
            &ctx,
            &SearchConfig::with_lambda(u64::MAX),
            &forced_steal(1, ctx.len()),
        );
        assert_eq!(par.nops, serial.nops);
        assert_eq!(
            par.stats.omega_calls, serial.stats.omega_calls,
            "Ω counter drift at threads=1 on\n{block}"
        );
        assert_eq!(
            par.stats.nodes_visited, serial.stats.nodes_visited,
            "node counter drift at threads=1 on\n{block}"
        );
    }
}
