//! Differential property suite for the work-stealing parallel search.
//!
//! Three independent exact engines — the serial branch-and-bound, the
//! parallel pool at every thread count, and the SAT/B&B race — must agree
//! on the optimal NOP count of every random block on every machine
//! preset. When the parallel prover runs, its per-worker transcripts must
//! merge into one certificate the independent checker accepts, and the
//! race's SAT outcome must survive the full audit.

use proptest::prelude::*;

use pipesched_core::parallel::{parallel_prove, parallel_search};
use pipesched_core::{search, ParallelConfig, SchedContext, SearchConfig};
use pipesched_machine::{presets, Machine};
use pipesched_proof::{check_certificate, ProofVerdict};
use pipesched_solve::audit::audit_outcome;
use pipesched_solve::{race, RaceConfig};
use pipesched_synth::{generate_block, GeneratorConfig};

fn machines() -> Vec<Machine> {
    vec![
        presets::paper_simulation(),
        presets::deep_pipeline(),
        presets::functional_units(),
        presets::section2_example(),
    ]
}

const THREADS: [usize; 4] = [1, 2, 4, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serial, parallel (at every thread count), and the race agree.
    #[test]
    fn parallel_agrees_with_serial_and_race(seed in 0u64..10_000,
                                            statements in 1usize..7,
                                            machine_sel in 0usize..4) {
        let block = generate_block(&GeneratorConfig::new(statements, 3, 2, seed));
        let dag = pipesched_ir::DepDag::build(&block);
        let machine = &machines()[machine_sel];
        let ctx = SchedContext::new(&block, &dag, machine);

        let serial = search(&ctx, &SearchConfig::with_lambda(u64::MAX));
        prop_assert!(serial.optimal);

        for threads in THREADS {
            let par = parallel_search(
                &ctx,
                &SearchConfig::with_lambda(u64::MAX),
                &ParallelConfig::with_threads(threads),
            );
            prop_assert!(par.optimal, "parallel({threads}) truncated on\n{block}");
            prop_assert_eq!(
                par.nops, serial.nops,
                "parallel({}) disagrees with serial on\n{}", threads, block
            );
            pipesched_ir::analysis::verify_schedule(&block, &dag, &par.order).unwrap();
            prop_assert_eq!(par.etas.iter().sum::<u32>(), par.nops);
        }

        // Third opinion: the SAT/B&B race, independently audited.
        let raced = race(&ctx, &RaceConfig::default());
        prop_assert!(!raced.disagreement);
        prop_assert!(raced.optimal());
        prop_assert_eq!(raced.nops(), serial.nops, "race disagrees on\n{}", block);
        let report = audit_outcome(&block, machine, &raced.sat);
        prop_assert!(!report.has_errors(), "audit rejected honest run on\n{}\n{:?}",
                     block, report);
    }

    /// The merged multi-worker certificate passes the independent checker
    /// and certifies exactly the serial optimum.
    #[test]
    fn merged_certificate_is_checker_clean(seed in 0u64..10_000,
                                           statements in 1usize..7,
                                           machine_sel in 0usize..4,
                                           threads_sel in 0usize..4) {
        let block = generate_block(&GeneratorConfig::new(statements, 3, 2, seed));
        let dag = pipesched_ir::DepDag::build(&block);
        let machine = &machines()[machine_sel];
        let ctx = SchedContext::new(&block, &dag, machine);

        let serial = search(&ctx, &SearchConfig::with_lambda(u64::MAX));
        prop_assert!(serial.optimal);

        let (out, proof) = parallel_prove(
            &ctx,
            &SearchConfig::with_lambda(u64::MAX),
            &ParallelConfig::with_threads(THREADS[threads_sel]),
        );
        prop_assert!(out.optimal);
        prop_assert_eq!(out.nops, serial.nops, "prover disagrees on\n{}", block);

        let cert = proof.merge();
        let check = check_certificate(&block, machine, &cert);
        prop_assert!(
            check.is_certified(),
            "merged certificate rejected on\n{}\n{}", block, check.report
        );
        prop_assert_eq!(
            check.verdict,
            ProofVerdict::OptimalCertified { nops: serial.nops }
        );
    }
}
