//! Property tests: the pruned search never sacrifices optimality.
//!
//! For random small blocks (where exhaustive enumeration of all legal
//! topological orders is feasible), the branch-and-bound search must return
//! exactly the brute-force optimum under every combination of pruning
//! devices, and the timing engine's incremental μ must agree with an
//! independent re-evaluation.

use proptest::prelude::*;

use pipesched_core::baselines::enumerate_legal;
use pipesched_core::{search, BoundKind, EquivalenceMode, SchedContext, SearchConfig};
use pipesched_ir::{analysis::verify_schedule, BasicBlock, BlockBuilder, DepDag, Op, TupleId};
use pipesched_machine::{presets, Machine};

/// A random basic block built from a byte script, with at most `max_len`
/// instructions. Every generated block is valid by construction.
fn block_from_script(script: &[u8], max_len: usize) -> BasicBlock {
    let mut b = BlockBuilder::new("prop");
    let vars = ["a", "b", "c", "d"];
    for chunk in script.chunks(3) {
        if b.len() >= max_len {
            break;
        }
        let (op, x, y) = (
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        );
        let n = b.len();
        let pick = |sel: u8| TupleId((sel as usize % n) as u32);
        // Pick a value-producing tuple for operands; if the chosen tuple is
        // a store (no value), fall back to emitting a load.
        match op % 6 {
            0 => {
                b.load(vars[x as usize % vars.len()]);
            }
            1 => {
                b.constant(i64::from(x));
            }
            2 | 3 if n > 0 => {
                let ops = [Op::Add, Op::Sub, Op::Mul, Op::Div];
                let o = ops[y as usize % ops.len()];
                let lhs = pick(x);
                let rhs = pick(y);
                // Only reference value-producing tuples.
                let lhs_ok = producing(&b, lhs);
                let rhs_ok = producing(&b, rhs);
                match (lhs_ok, rhs_ok) {
                    (Some(l), Some(r)) => {
                        b.binary(o, l, r);
                    }
                    _ => {
                        b.load(vars[x as usize % vars.len()]);
                    }
                }
            }
            4 if n > 0 => {
                if let Some(v) = producing(&b, pick(x)) {
                    b.store(vars[y as usize % vars.len()], v);
                } else {
                    b.load(vars[y as usize % vars.len()]);
                }
            }
            _ => {
                b.load(vars[y as usize % vars.len()]);
            }
        }
    }
    if b.is_empty() {
        b.load("a");
    }
    b.finish().expect("generated blocks are valid")
}

/// Find a value-producing tuple at or before `t` (scanning backwards).
fn producing(b: &BlockBuilder, t: TupleId) -> Option<TupleId> {
    // BlockBuilder doesn't expose tuples; rebuild via clone-finish.
    let block = b.clone().finish_unchecked();
    (0..=t.index())
        .rev()
        .map(|i| TupleId(i as u32))
        .find(|&i| block.tuple(i).op.produces_value())
}

fn machines() -> Vec<Machine> {
    vec![
        presets::paper_simulation(),
        presets::deep_pipeline(),
        presets::functional_units(),
        presets::section2_example(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The pruned search equals brute force for every pruning configuration.
    #[test]
    fn bnb_is_optimal(script in proptest::collection::vec(any::<u8>(), 0..30),
                      machine_sel in 0usize..4) {
        let block = block_from_script(&script, 8);
        let dag = DepDag::build(&block);
        let machine = &machines()[machine_sel];
        let ctx = SchedContext::new(&block, &dag, machine);
        let brute = enumerate_legal(&ctx, u64::MAX);
        prop_assert!(!brute.truncated);

        for bound in [BoundKind::AlphaBeta, BoundKind::CriticalPath] {
            for equivalence in [EquivalenceMode::Off, EquivalenceMode::Paper,
                                EquivalenceMode::Structural] {
                let cfg = SearchConfig { bound, equivalence, lambda: u64::MAX,
                                         ..SearchConfig::default() };
                let out = search(&ctx, &cfg);
                prop_assert!(out.optimal);
                prop_assert_eq!(
                    out.nops, brute.best_nops,
                    "pruning {:?}/{:?} lost the optimum on\n{}",
                    bound, equivalence, block
                );
                verify_schedule(&block, &dag, &out.order).unwrap();
                // The reported etas must sum to the reported μ.
                prop_assert_eq!(out.etas.iter().sum::<u32>(), out.nops);
            }
        }
    }

    /// μ is monotone under prefix extension (the α-β soundness argument).
    #[test]
    fn mu_is_monotone_under_extension(script in proptest::collection::vec(any::<u8>(), 0..36)) {
        let block = block_from_script(&script, 10);
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let order = pipesched_core::list_schedule(&dag, &ctx.analysis);
        let mut engine = pipesched_core::TimingEngine::new(&ctx);
        let mut prev = 0;
        for &t in &order {
            engine.push_default(t);
            let mu = engine.total_nops();
            prop_assert!(mu >= prev, "μ decreased: {} -> {}", prev, mu);
            prev = mu;
        }
    }

    /// Push/pop leaves the engine exactly where it was (checked via replay).
    #[test]
    fn engine_undo_is_exact(script in proptest::collection::vec(any::<u8>(), 0..36),
                            probe in 0usize..8) {
        let block = block_from_script(&script, 10);
        let dag = DepDag::build(&block);
        let machine = presets::deep_pipeline();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let order = pipesched_core::list_schedule(&dag, &ctx.analysis);
        let k = probe % (order.len() + 1);

        // Reference: straight-line evaluation.
        let (ref_etas, _) = pipesched_core::timing::evaluate_schedule(&ctx, &order);

        // Perturbed: at position k, push/pop every later instruction whose
        // preds happen to be placed, then continue.
        let mut engine = pipesched_core::TimingEngine::new(&ctx);
        for (i, &t) in order.iter().enumerate() {
            if i == k {
                for &probe_t in &order[i..] {
                    let ready = ctx.preds[probe_t.index()]
                        .iter()
                        .all(|p| engine.issue_time(TupleId(p.from)).is_some());
                    if ready {
                        engine.push_default(probe_t);
                        engine.pop();
                    }
                }
            }
            let eta = engine.push_default(t);
            prop_assert_eq!(eta, ref_etas[i], "divergence at position {}", i);
        }
    }

    /// The greedy baseline and list schedule are never better than B&B.
    #[test]
    fn heuristics_never_beat_optimal(script in proptest::collection::vec(any::<u8>(), 0..30)) {
        let block = block_from_script(&script, 8);
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let out = search(&ctx, &SearchConfig::with_lambda(u64::MAX));
        prop_assert!(out.optimal);
        let (_, greedy_nops) = pipesched_core::baselines::greedy_schedule(&ctx);
        prop_assert!(greedy_nops >= out.nops);
        prop_assert!(out.initial_nops >= out.nops);
    }
}

/// Regression: the paper's rule [5c] *as printed* (skip swapping any two
/// σ=∅ ∧ ρ=∅ instructions) prunes the true optimum on this block — found
/// by the brute-force property suite. Two constants feed *different*
/// consumers, so their order decides which instructions become ready at
/// intermediate depths; on the functional-units machine that difference is
/// worth one NOP. Our restricted rule (identical successor sets) must get
/// the exact optimum.
#[test]
fn rule_5c_counterexample_regression() {
    use pipesched_ir::BlockBuilder;

    // 1: Const 0        (feeds Add, Mul@1@3)
    // 2: Add @1, @1
    // 3: Const 0        (feeds Mul@3@3, Mul@1@3)
    // 4: Mul @3, @3
    // 5: Mul @1, @3
    // 6: Load #a
    // 7: Load #a
    let mut b = BlockBuilder::new("cex");
    let c1 = b.constant(0);
    let _add = b.add(c1, c1);
    let c3 = b.constant(0);
    let _m1 = b.mul(c3, c3);
    let _m2 = b.mul(c1, c3);
    b.load("a");
    b.load("a");
    let block = b.finish().unwrap();
    let dag = DepDag::build(&block);

    let mut some_machine_rejects = false;
    for machine in machines() {
        let ctx = SchedContext::new(&block, &dag, &machine);
        let brute = enumerate_legal(&ctx, u64::MAX);
        assert!(!brute.truncated);
        for equivalence in [EquivalenceMode::Paper, EquivalenceMode::Structural] {
            let cfg = SearchConfig {
                equivalence,
                lambda: u64::MAX,
                ..SearchConfig::default()
            };
            let out = search(&ctx, &cfg);
            assert_eq!(
                out.nops, brute.best_nops,
                "{equivalence:?} lost the optimum on {}",
                machine.name
            );

            // The sound rules' searches also certify: the checker accepts
            // their transcripts and confirms the brute-force μ.
            let (out, cert) = pipesched_core::prove(&ctx, &cfg);
            assert!(out.optimal);
            let check = pipesched_proof::check_certificate(&block, &machine, &cert);
            assert!(
                check.is_certified(),
                "{equivalence:?} certificate rejected on {}:\n{}",
                machine.name,
                check.report
            );
            assert_eq!(
                check.verdict,
                pipesched_proof::ProofVerdict::OptimalCertified {
                    nops: brute.best_nops
                }
            );
        }

        // The paper's rule [5c] *as printed* must not sneak an optimality
        // certificate past the checker. On machines where the unrestricted
        // swap is harmless here, its prunes still satisfy the restricted
        // condition and the certificate checks; where it over-prunes, the
        // checker rejects with A0405 (stale equivalence witness). It must
        // never certify a μ above the brute-force optimum.
        let cfg = SearchConfig {
            equivalence: EquivalenceMode::UnrestrictedPaper,
            lambda: u64::MAX,
            ..SearchConfig::default()
        };
        let (_, forged) = pipesched_core::prove(&ctx, &cfg);
        let check = pipesched_proof::check_certificate(&block, &machine, &forged);
        match check.verdict {
            pipesched_proof::ProofVerdict::OptimalCertified { nops } => {
                assert_eq!(
                    nops, brute.best_nops,
                    "unrestricted rule certified a non-optimum on {}",
                    machine.name
                );
            }
            pipesched_proof::ProofVerdict::Rejected => {
                some_machine_rejects = true;
                assert!(
                    check
                        .report
                        .has_code(pipesched_analyze::DiagCode::StaleEquivalenceWitness),
                    "expected A0405 on {}:\n{}",
                    machine.name,
                    check.report
                );
            }
        }
    }
    // The counterexample earns its name: at least one machine's
    // unrestricted-rule certificate must actually be rejected.
    assert!(some_machine_rejects);
}

/// The per-device prune counters account for every visited node: each Ω
/// call either descends (a new node) or is cut by the bound test, so a
/// completed fixed-σ search satisfies
/// `nodes_visited == 1 + omega_calls - pruned_bound`.
#[test]
fn prune_counters_sum_to_nodes_visited() {
    for (seed, machine) in machines().into_iter().enumerate() {
        let script: Vec<u8> = (0..30u16)
            .map(|i| (i * 37 + seed as u16 * 11) as u8)
            .collect();
        let block = block_from_script(&script, 8);
        let dag = DepDag::build(&block);
        let ctx = SchedContext::new(&block, &dag, &machine);
        let cfg = SearchConfig {
            lambda: u64::MAX,
            terminate_on_lower_bound: false,
            ..SearchConfig::default()
        };
        let out = search(&ctx, &cfg);
        assert!(out.optimal && !out.stats.truncated);
        assert_eq!(
            out.stats.nodes_visited,
            1 + out.stats.omega_calls - out.stats.pruned_bound,
            "counter identity broken on {}: {:?}",
            machine.name,
            out.stats
        );
    }
}
