//! Deterministic certificate tests for the parallel prover: merged
//! multi-worker transcripts must check clean, and every class of tampering
//! — a dropped worker transcript, a truncated run passed off as complete —
//! must be rejected by the independent checker.

use pipesched_core::parallel::{parallel_prove, parallel_search};
use pipesched_core::{search, ParallelConfig, SchedContext, SearchConfig};
use pipesched_ir::{BasicBlock, BlockBuilder, DepDag};
use pipesched_machine::{presets, Machine};
use pipesched_proof::{check_certificate, ProofVerdict};

/// Independent chains of load/load/mul/store — enough root candidates
/// that phase 2 of the prover produces several per-subtree transcripts.
fn chained_block(chains: usize) -> BasicBlock {
    let mut b = BlockBuilder::new("chains");
    for i in 0..chains {
        let x = b.load(&format!("x{i}"));
        let y = b.load(&format!("y{i}"));
        let m = b.mul(x, y);
        b.store(&format!("r{i}"), m);
    }
    b.finish().unwrap()
}

fn machines() -> Vec<Machine> {
    vec![
        presets::paper_simulation(),
        presets::deep_pipeline(),
        presets::functional_units(),
        presets::section2_example(),
    ]
}

/// The merged certificate is accepted on every machine preset and
/// certifies exactly the serial optimum.
#[test]
fn merged_certificates_check_clean_across_machines() {
    let block = chained_block(3);
    let dag = DepDag::build(&block);
    for machine in machines() {
        let ctx = SchedContext::new(&block, &dag, &machine);
        let serial = search(&ctx, &SearchConfig::with_lambda(u64::MAX));
        assert!(serial.optimal);

        for threads in [1usize, 2, 4, 8] {
            let (out, proof) = parallel_prove(
                &ctx,
                &SearchConfig::with_lambda(u64::MAX),
                &ParallelConfig::with_threads(threads),
            );
            assert!(out.optimal, "{}: prover truncated", machine.name);
            assert_eq!(out.nops, serial.nops, "{}: wrong optimum", machine.name);

            let check = check_certificate(&block, &machine, &proof.merge());
            assert!(
                check.is_certified(),
                "{} at {} threads rejected:\n{}",
                machine.name,
                threads,
                check.report
            );
            assert_eq!(
                check.verdict,
                ProofVerdict::OptimalCertified { nops: serial.nops }
            );
        }
    }
}

/// Tamper: dropping any single per-worker transcript from the merged
/// certificate breaks the checker's coverage replay.
#[test]
fn dropped_worker_transcript_is_rejected() {
    let block = chained_block(3);
    let dag = DepDag::build(&block);
    let machine = presets::functional_units();
    let ctx = SchedContext::new(&block, &dag, &machine);

    let (out, proof) = parallel_prove(
        &ctx,
        &SearchConfig::with_lambda(u64::MAX),
        &ParallelConfig::with_threads(4),
    );
    assert!(out.optimal);
    assert!(
        proof.parts.len() >= 3,
        "tamper test needs several parts, got {}",
        proof.parts.len()
    );
    assert!(check_certificate(&block, &machine, &proof.merge()).is_certified());

    for drop_at in 0..proof.parts.len() {
        let mut tampered = proof.clone();
        tampered.parts.remove(drop_at);
        let check = check_certificate(&block, &machine, &tampered.merge());
        assert_eq!(
            check.verdict,
            ProofVerdict::Rejected,
            "certificate with part {drop_at} dropped was accepted"
        );
        assert!(check.report.has_errors());
    }
}

/// A λ-truncated parallel run must not produce a checkable certificate:
/// the trailer records `complete = false` and the checker rejects it, and
/// the outcome itself reports `optimal = false` with a legal incumbent.
#[test]
fn truncated_run_is_not_certifiable() {
    let block = chained_block(4);
    let dag = DepDag::build(&block);
    let machine = presets::paper_simulation();
    let ctx = SchedContext::new(&block, &dag, &machine);

    let (out, proof) = parallel_prove(
        &ctx,
        &SearchConfig {
            lambda: 5,
            terminate_on_lower_bound: false,
            ..SearchConfig::default()
        },
        &ParallelConfig::with_threads(2),
    );
    assert!(!out.optimal, "a five-Ω budget cannot prove this block");
    assert!(!proof.trailer.complete);
    pipesched_ir::analysis::verify_schedule(&block, &dag, &out.order).unwrap();

    let check = check_certificate(&block, &machine, &proof.merge());
    assert_eq!(check.verdict, ProofVerdict::Rejected);
}

/// The non-proving pool and the prover land on the same optimum (the
/// prover's phase split must not change the answer).
#[test]
fn prover_and_pool_agree() {
    let block = chained_block(3);
    let dag = DepDag::build(&block);
    for machine in machines() {
        let ctx = SchedContext::new(&block, &dag, &machine);
        let cfg = SearchConfig::with_lambda(u64::MAX);
        let pool = parallel_search(&ctx, &cfg, &ParallelConfig::with_threads(4));
        let (proved, _) = parallel_prove(&ctx, &cfg, &ParallelConfig::with_threads(4));
        assert!(pool.optimal && proved.optimal);
        assert_eq!(
            pool.nops, proved.nops,
            "{}: phase split drift",
            machine.name
        );
    }
}
