//! The complete machine description: pipelines + op→pipeline mapping.

use std::collections::BTreeMap;
use std::fmt;

use pipesched_ir::Op;

use crate::pipeline::{Pipeline, PipelineId};

/// Errors detected while building or validating a machine description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A mapping entry names a pipeline id that does not exist.
    UnknownPipeline {
        /// The operation whose mapping is broken.
        op: Op,
        /// The missing pipeline id.
        id: PipelineId,
    },
    /// A pipeline has zero latency or zero enqueue time.
    InvalidTiming {
        /// The offending pipeline.
        id: PipelineId,
        /// What is wrong.
        reason: String,
    },
    /// The machine has no pipelines at all but maps an op to one.
    Empty,
    /// `Nop` may not be mapped to a pipeline.
    NopMapped,
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::UnknownPipeline { op, id } => {
                write!(f, "operation {op} mapped to unknown pipeline {id}")
            }
            MachineError::InvalidTiming { id, reason } => {
                write!(f, "pipeline {id} has invalid timing: {reason}")
            }
            MachineError::Empty => write!(f, "machine maps operations but has no pipelines"),
            MachineError::NopMapped => write!(f, "Nop must not be mapped to a pipeline"),
        }
    }
}

impl std::error::Error for MachineError {}

/// A validated machine description.
///
/// Operations not present in the mapping use **no pipelined resource**
/// (`σ(ζ) = ∅` in the paper): they issue in one cycle, never conflict, and
/// impose no latency on consumers. The paper's presets leave `Const` and
/// `Store` unmapped on these grounds (§3.1 notes stores "typically do not
/// interfere with any pipelined operations").
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Diagnostic name of the machine.
    pub name: String,
    pipelines: Vec<Pipeline>,
    /// Op → set of pipelines able to execute it (paper Tables 3 and 5).
    mapping: BTreeMap<Op, Vec<PipelineId>>,
}

impl Machine {
    /// Start building a machine.
    pub fn builder(name: impl Into<String>) -> MachineBuilder {
        MachineBuilder {
            machine: Machine {
                name: name.into(),
                pipelines: Vec::new(),
                mapping: BTreeMap::new(),
            },
        }
    }

    /// All pipelines, indexed by [`PipelineId`].
    pub fn pipelines(&self) -> &[Pipeline] {
        &self.pipelines
    }

    /// The pipeline with the given id.
    pub fn pipeline(&self, id: PipelineId) -> &Pipeline {
        &self.pipelines[id.index()]
    }

    /// Number of pipelines.
    pub fn pipeline_count(&self) -> usize {
        self.pipelines.len()
    }

    /// The set of pipelines able to execute `op` (empty slice ⇒ `σ = ∅`).
    pub fn pipelines_for(&self, op: Op) -> &[PipelineId] {
        self.mapping.get(&op).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The *default* pipeline for `op`: the first mapped unit.
    ///
    /// This is what the base algorithm uses — §4.1 footnote 3 notes the
    /// paper's algorithm does not choose among multiple units; the search's
    /// pipeline-selection extension does.
    pub fn default_pipeline_for(&self, op: Op) -> Option<PipelineId> {
        self.pipelines_for(op).first().copied()
    }

    /// Latency of the pipeline executing `op` on its default unit
    /// (`None` when `σ(op) = ∅`).
    pub fn latency_for(&self, op: Op) -> Option<u32> {
        self.default_pipeline_for(op)
            .map(|p| self.pipeline(p).latency)
    }

    /// Enqueue time of the default unit for `op`.
    pub fn enqueue_for(&self, op: Op) -> Option<u32> {
        self.default_pipeline_for(op)
            .map(|p| self.pipeline(p).enqueue)
    }

    /// True when some operation can choose among several pipelines.
    pub fn has_pipeline_choice(&self) -> bool {
        self.mapping.values().any(|v| v.len() > 1)
    }

    /// The op→pipelines mapping table.
    pub fn mapping(&self) -> &BTreeMap<Op, Vec<PipelineId>> {
        &self.mapping
    }

    /// The largest latency of any pipeline (0 for a machine with none).
    pub fn max_latency(&self) -> u32 {
        self.pipelines.iter().map(|p| p.latency).max().unwrap_or(0)
    }

    /// Validate the description.
    pub fn validate(&self) -> Result<(), MachineError> {
        for (i, p) in self.pipelines.iter().enumerate() {
            let id = PipelineId(i as u32);
            if p.latency == 0 {
                return Err(MachineError::InvalidTiming {
                    id,
                    reason: "latency must be ≥ 1".into(),
                });
            }
            if p.enqueue == 0 {
                return Err(MachineError::InvalidTiming {
                    id,
                    reason: "enqueue time must be ≥ 1".into(),
                });
            }
        }
        for (&op, ids) in &self.mapping {
            if op == Op::Nop {
                return Err(MachineError::NopMapped);
            }
            if self.pipelines.is_empty() && !ids.is_empty() {
                return Err(MachineError::Empty);
            }
            for &id in ids {
                if id.index() >= self.pipelines.len() {
                    return Err(MachineError::UnknownPipeline { op, id });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "machine `{}`", self.name)?;
        writeln!(
            f,
            "  {:<12} {:>4} {:>8} {:>8}",
            "function", "id", "latency", "enqueue"
        )?;
        for (i, p) in self.pipelines.iter().enumerate() {
            writeln!(
                f,
                "  {:<12} {:>4} {:>8} {:>8}",
                p.function,
                PipelineId(i as u32),
                p.latency,
                p.enqueue
            )?;
        }
        for (op, ids) in &self.mapping {
            let list: Vec<String> = ids.iter().map(ToString::to_string).collect();
            writeln!(f, "  {:<6} -> {{{}}}", op.to_string(), list.join(", "))?;
        }
        Ok(())
    }
}

/// Fluent builder for [`Machine`].
pub struct MachineBuilder {
    machine: Machine,
}

impl MachineBuilder {
    /// Add a pipeline row; returns its id.
    pub fn pipeline(&mut self, function: &str, latency: u32, enqueue: u32) -> PipelineId {
        let id = PipelineId(self.machine.pipelines.len() as u32);
        self.machine
            .pipelines
            .push(Pipeline::new(function, latency, enqueue));
        id
    }

    /// Map `op` to the given set of pipelines.
    pub fn map(&mut self, op: Op, ids: &[PipelineId]) -> &mut Self {
        self.machine.mapping.insert(op, ids.to_vec());
        self
    }

    /// Finish, validating the description.
    pub fn build(self) -> Result<Machine, MachineError> {
        self.machine.validate()?;
        Ok(self.machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Machine {
        let mut b = Machine::builder("sample");
        let loader = b.pipeline("loader", 2, 1);
        let adder = b.pipeline("adder", 4, 3);
        let mul = b.pipeline("multiplier", 4, 2);
        b.map(Op::Load, &[loader]);
        b.map(Op::Add, &[adder]);
        b.map(Op::Sub, &[adder]);
        b.map(Op::Mul, &[mul]);
        b.map(Op::Div, &[mul]);
        b.build().unwrap()
    }

    #[test]
    fn lookups() {
        let m = sample();
        assert_eq!(m.pipeline_count(), 3);
        assert_eq!(m.latency_for(Op::Load), Some(2));
        assert_eq!(m.enqueue_for(Op::Mul), Some(2));
        assert_eq!(m.latency_for(Op::Store), None, "unmapped op has σ=∅");
        assert_eq!(m.default_pipeline_for(Op::Add), Some(PipelineId(1)));
        assert_eq!(m.max_latency(), 4);
        assert!(!m.has_pipeline_choice());
    }

    #[test]
    fn add_and_sub_share_a_unit() {
        let m = sample();
        assert_eq!(m.pipelines_for(Op::Add), m.pipelines_for(Op::Sub));
    }

    #[test]
    fn validation_rejects_unknown_pipeline() {
        let mut b = Machine::builder("bad");
        b.map(Op::Add, &[PipelineId(7)]);
        b.pipeline("adder", 1, 1);
        assert!(matches!(
            b.build(),
            Err(MachineError::UnknownPipeline { .. })
        ));
    }

    #[test]
    fn validation_rejects_zero_latency() {
        let mut b = Machine::builder("bad");
        b.pipeline("zero", 0, 1);
        assert!(matches!(b.build(), Err(MachineError::InvalidTiming { .. })));
    }

    #[test]
    fn validation_rejects_zero_enqueue() {
        let mut b = Machine::builder("bad");
        b.pipeline("zero", 3, 0);
        assert!(matches!(b.build(), Err(MachineError::InvalidTiming { .. })));
    }

    #[test]
    fn validation_rejects_mapped_nop() {
        let mut b = Machine::builder("bad");
        let p = b.pipeline("p", 1, 1);
        b.map(Op::Nop, &[p]);
        assert!(matches!(b.build(), Err(MachineError::NopMapped)));
    }

    #[test]
    fn display_renders_both_tables() {
        let m = sample();
        let text = m.to_string();
        assert!(text.contains("loader"), "{text}");
        assert!(text.contains("Add"), "{text}");
        assert!(text.contains("{2}"), "{text}");
    }
}
