//! A single hardware pipeline: function, latency, enqueue time.

use std::fmt;

/// Identifier of a pipeline within a [`crate::Machine`].
///
/// Internally 0-based; `Display` uses the paper's 1-based identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PipelineId(pub u32);

impl PipelineId {
    /// The pipeline's position as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PipelineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0 + 1)
    }
}

/// One row of the paper's pipeline description table (Tables 2 and 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pipeline {
    /// Human-readable function name ("loader", "adder", "multiplier", ...).
    pub function: String,
    /// Pipeline latency: clock ticks between enqueuing an operation and its
    /// result becoming available (§2.1). Minimum issue distance to a
    /// *dependent* instruction.
    pub latency: u32,
    /// Pipeline enqueue time: minimum clock ticks between enqueuing two
    /// operations in this same pipeline (§2.1). Minimum issue distance to a
    /// *conflicting* instruction.
    pub enqueue: u32,
}

impl Pipeline {
    /// Construct a pipeline row.
    pub fn new(function: impl Into<String>, latency: u32, enqueue: u32) -> Self {
        Pipeline {
            function: function.into(),
            latency,
            enqueue,
        }
    }

    /// A functional unit that is *not* internally pipelined is modeled with
    /// `enqueue == latency` (§2.1): the unit is busy for its whole latency.
    pub fn is_unpipelined_unit(&self) -> bool {
        self.enqueue == self.latency
    }

    /// A classical pipeline accepts one operation per tick (`enqueue == 1`).
    pub fn is_classical(&self) -> bool {
        self.enqueue == 1
    }
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (latency {}, enqueue {})",
            self.function, self.latency, self.enqueue
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let classical = Pipeline::new("loader", 2, 1);
        assert!(classical.is_classical());
        assert!(!classical.is_unpipelined_unit());

        let unit = Pipeline::new("divider", 8, 8);
        assert!(unit.is_unpipelined_unit());
        assert!(!unit.is_classical());
    }

    #[test]
    fn display_is_one_based_for_ids() {
        assert_eq!(PipelineId(0).to_string(), "1");
        assert_eq!(PipelineId(4).to_string(), "5");
    }
}
