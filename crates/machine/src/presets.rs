//! Machine presets: every configuration the paper mentions plus a few
//! stress-test machines for the extended experiments.

use pipesched_ir::Op;

use crate::machine::Machine;

/// The paper's Table 2 / Table 3 example machine: two loaders, two adders,
/// one multiplier. `Add`/`Sub` share the adder pair; `Mul`/`Div` share the
/// multiplier. This machine exercises the pipeline-*selection* extension
/// because loads and adds can choose between two identical units.
pub fn table2_example() -> Machine {
    let mut b = Machine::builder("paper-table2");
    let l1 = b.pipeline("loader", 2, 1);
    let l2 = b.pipeline("loader", 2, 1);
    let a1 = b.pipeline("adder", 4, 3);
    let a2 = b.pipeline("adder", 4, 3);
    let m = b.pipeline("multiplier", 4, 2);
    b.map(Op::Load, &[l1, l2]);
    b.map(Op::Add, &[a1, a2]);
    b.map(Op::Sub, &[a1, a2]);
    b.map(Op::Mul, &[m]);
    b.map(Op::Div, &[m]);
    b.build().expect("preset is valid")
}

/// The machine used for all the paper's simulations (§5.1, Tables 4/5):
/// a "very straightforward pipeline design" with a **single pipeline unit
/// per function**.
///
/// The scanned TR truncates Table 4 after the loader (latency 2, enqueue 1)
/// and multiplier (latency 4, enqueue 2) rows and omits Table 5 entirely;
/// the adder row and the op→pipeline map are reconstructed here (see
/// DESIGN.md §5): adder latency 3, enqueue 1; `Load`→loader,
/// `Add`/`Sub`/`Neg`/`Mov`→adder, `Mul`/`Div`→multiplier; `Const` and
/// `Store` use no pipelined resource.
pub fn paper_simulation() -> Machine {
    let mut b = Machine::builder("paper-simulation");
    let loader = b.pipeline("loader", 2, 1);
    let adder = b.pipeline("adder", 3, 1);
    let mul = b.pipeline("multiplier", 4, 2);
    b.map(Op::Load, &[loader]);
    b.map(Op::Add, &[adder]);
    b.map(Op::Sub, &[adder]);
    b.map(Op::Neg, &[adder]);
    b.map(Op::Mov, &[adder]);
    b.map(Op::Mul, &[mul]);
    b.map(Op::Div, &[mul]);
    b.build().expect("preset is valid")
}

/// A machine with **no** pipelined resources: every instruction issues in
/// one cycle and every schedule needs zero NOPs. Useful as a degenerate
/// case in tests.
pub fn unpipelined() -> Machine {
    Machine::builder("unpipelined")
        .build()
        .expect("preset is valid")
}

/// A deeply pipelined RISC-style machine (longer latencies, classical
/// enqueue of 1 everywhere): stresses dependence-induced delays.
pub fn deep_pipeline() -> Machine {
    let mut b = Machine::builder("deep-pipeline");
    let loader = b.pipeline("loader", 5, 1);
    let alu = b.pipeline("alu", 4, 1);
    let mul = b.pipeline("multiplier", 8, 1);
    b.map(Op::Load, &[loader]);
    b.map(Op::Add, &[alu]);
    b.map(Op::Sub, &[alu]);
    b.map(Op::Neg, &[alu]);
    b.map(Op::Mov, &[alu]);
    b.map(Op::Mul, &[mul]);
    b.map(Op::Div, &[mul]);
    b.build().expect("preset is valid")
}

/// A machine of non-pipelined functional units (`enqueue == latency`,
/// §2.1's remark about modeling parallel functional units): stresses
/// conflict-induced delays.
pub fn functional_units() -> Machine {
    let mut b = Machine::builder("functional-units");
    let loader = b.pipeline("loader", 3, 3);
    let alu = b.pipeline("alu", 2, 2);
    let mul = b.pipeline("multiplier", 6, 6);
    b.map(Op::Load, &[loader]);
    b.map(Op::Add, &[alu]);
    b.map(Op::Sub, &[alu]);
    b.map(Op::Neg, &[alu]);
    b.map(Op::Mov, &[alu]);
    b.map(Op::Mul, &[mul]);
    b.map(Op::Div, &[mul]);
    b.build().expect("preset is valid")
}

/// A machine with a *recovery-time* multiplier: its result is ready after
/// 2 cycles but the unit needs 6 cycles before accepting another operation
/// (`enqueue > latency`, as in iterative dividers that must drain). This is
/// the configuration where cross-block pipeline state (footnote 1) visibly
/// matters: a block ending in a multiply leaves the unit recovering into
/// the next block.
pub fn recovery_unit() -> Machine {
    let mut b = Machine::builder("recovery-unit");
    let loader = b.pipeline("loader", 2, 1);
    let alu = b.pipeline("alu", 2, 1);
    let mul = b.pipeline("recovering-multiplier", 2, 6);
    b.map(Op::Load, &[loader]);
    b.map(Op::Add, &[alu]);
    b.map(Op::Sub, &[alu]);
    b.map(Op::Neg, &[alu]);
    b.map(Op::Mov, &[alu]);
    b.map(Op::Mul, &[mul]);
    b.map(Op::Div, &[mul]);
    b.build().expect("preset is valid")
}

/// The §2.1 worked-example machine: a loader whose latency is 4 (the
/// `Load`/`Add` dependence example needing 3 NOPs) and whose MAR is held
/// for 2 cycles (the `Load`/`Load` conflict example needing 1 NOP).
pub fn section2_example() -> Machine {
    let mut b = Machine::builder("section2-example");
    let loader = b.pipeline("loader", 4, 2);
    let adder = b.pipeline("adder", 1, 1);
    b.map(Op::Load, &[loader]);
    b.map(Op::Add, &[adder]);
    b.map(Op::Sub, &[adder]);
    b.build().expect("preset is valid")
}

/// All named presets, for sweeping experiments over machines.
pub fn all_presets() -> Vec<Machine> {
    vec![
        table2_example(),
        paper_simulation(),
        unpipelined(),
        deep_pipeline(),
        functional_units(),
        recovery_unit(),
        section2_example(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineId;

    #[test]
    fn table2_matches_the_paper() {
        let m = table2_example();
        assert_eq!(m.pipeline_count(), 5);
        // Row 3 of Table 2: adder, id 3, latency 4, enqueue 3.
        let adder = m.pipeline(PipelineId(2));
        assert_eq!(adder.function, "adder");
        assert_eq!(adder.latency, 4);
        assert_eq!(adder.enqueue, 3);
        // Table 3: Add → {3, 4}; Mul → {5}.
        assert_eq!(m.pipelines_for(Op::Add), &[PipelineId(2), PipelineId(3)]);
        assert_eq!(m.pipelines_for(Op::Mul), &[PipelineId(4)]);
        assert!(m.has_pipeline_choice());
    }

    #[test]
    fn simulation_machine_is_single_unit_per_function() {
        let m = paper_simulation();
        for op in Op::BLOCK_OPS {
            assert!(
                m.pipelines_for(op).len() <= 1,
                "{op} must map to at most one unit"
            );
        }
        assert_eq!(m.latency_for(Op::Load), Some(2));
        assert_eq!(m.enqueue_for(Op::Load), Some(1));
        assert_eq!(m.latency_for(Op::Mul), Some(4));
        assert_eq!(m.enqueue_for(Op::Mul), Some(2));
        assert_eq!(m.latency_for(Op::Const), None);
        assert_eq!(m.latency_for(Op::Store), None);
        assert!(!m.has_pipeline_choice());
    }

    #[test]
    fn every_preset_validates() {
        for m in all_presets() {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
    }

    #[test]
    fn functional_units_model_enqueue_equals_latency() {
        let m = functional_units();
        for p in m.pipelines() {
            assert!(p.is_unpipelined_unit());
        }
    }

    #[test]
    fn unpipelined_machine_has_no_resources() {
        let m = unpipelined();
        assert_eq!(m.pipeline_count(), 0);
        for op in Op::BLOCK_OPS {
            assert!(m.pipelines_for(op).is_empty());
        }
    }
}
