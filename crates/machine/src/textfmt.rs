//! A human-readable text format for machine descriptions, mirroring the
//! paper's two tables (§4.1). Round-trips with [`render`]/[`parse`].
//!
//! ```text
//! machine paper-simulation
//! ; Pipeline description table (Table 4)
//! pipeline loader      latency=2 enqueue=1
//! pipeline adder       latency=3 enqueue=1
//! pipeline multiplier  latency=4 enqueue=2
//! ; Operation-to-pipeline mapping table (Table 5)
//! map Load           -> loader
//! map Add, Sub       -> adder
//! map Mul, Div       -> multiplier
//! ```
//!
//! `map ... -> name` binds the ops to *every* pipeline whose function is
//! `name` (so duplicated units — two loaders — need just one line);
//! `map ... -> #3` binds to the pipeline with (1-based) identifier 3.

use std::fmt::Write as _;

use pipesched_ir::Op;

use crate::machine::{Machine, MachineError};
use crate::pipeline::PipelineId;

/// Errors from parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextFmtError {
    /// Malformed line.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// The finished machine failed validation.
    Invalid(MachineError),
}

impl std::fmt::Display for TextFmtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TextFmtError::Syntax { line, message } => {
                write!(f, "machine file line {line}: {message}")
            }
            TextFmtError::Invalid(e) => write!(f, "machine file invalid: {e}"),
        }
    }
}

impl std::error::Error for TextFmtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TextFmtError::Syntax { .. } => None,
            TextFmtError::Invalid(e) => Some(e),
        }
    }
}

/// Parse the text format.
pub fn parse(text: &str) -> Result<Machine, TextFmtError> {
    let mut name = "unnamed".to_string();
    let mut pipelines: Vec<(String, u32, u32)> = Vec::new();
    let mut maps: Vec<(Vec<Op>, String, usize)> = Vec::new();

    for (lineno0, raw) in text.lines().enumerate() {
        let line = lineno0 + 1;
        let content = raw.split(';').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let syntax = |message: String| TextFmtError::Syntax { line, message };

        if let Some(rest) = content.strip_prefix("machine ") {
            name = rest.trim().to_string();
        } else if let Some(rest) = content.strip_prefix("pipeline ") {
            let mut parts = rest.split_whitespace();
            let func = parts
                .next()
                .ok_or_else(|| syntax("missing pipeline function name".into()))?
                .to_string();
            let (mut latency, mut enqueue) = (None, None);
            for p in parts {
                if let Some(v) = p.strip_prefix("latency=") {
                    latency = Some(
                        v.parse::<u32>()
                            .map_err(|e| syntax(format!("latency: {e}")))?,
                    );
                } else if let Some(v) = p.strip_prefix("enqueue=") {
                    enqueue = Some(
                        v.parse::<u32>()
                            .map_err(|e| syntax(format!("enqueue: {e}")))?,
                    );
                } else {
                    return Err(syntax(format!("unexpected token `{p}`")));
                }
            }
            let latency = latency.ok_or_else(|| syntax("missing latency=".into()))?;
            let enqueue = enqueue.ok_or_else(|| syntax("missing enqueue=".into()))?;
            pipelines.push((func, latency, enqueue));
        } else if let Some(rest) = content.strip_prefix("map ") {
            let (ops_part, target) = rest
                .split_once("->")
                .ok_or_else(|| syntax("expected `map Ops -> target`".into()))?;
            let ops: Vec<Op> = ops_part
                .split(',')
                .map(|o| o.trim().parse::<Op>())
                .collect::<Result<_, _>>()
                .map_err(|e| syntax(e.to_string()))?;
            maps.push((ops, target.trim().to_string(), line));
        } else {
            return Err(syntax(format!("unrecognized directive `{content}`")));
        }
    }

    let mut b = Machine::builder(name);
    let mut accumulated: std::collections::BTreeMap<Op, Vec<PipelineId>> =
        std::collections::BTreeMap::new();
    let ids: Vec<PipelineId> = pipelines
        .iter()
        .map(|(func, lat, enq)| b.pipeline(func, *lat, *enq))
        .collect();

    for (ops, target, line) in maps {
        let targets: Vec<PipelineId> = if let Some(idx) = target.strip_prefix('#') {
            let k: usize = idx.parse().map_err(|_| TextFmtError::Syntax {
                line,
                message: format!("bad pipeline id `{target}`"),
            })?;
            if k == 0 || k > ids.len() {
                return Err(TextFmtError::Syntax {
                    line,
                    message: format!("pipeline #{k} does not exist"),
                });
            }
            vec![ids[k - 1]]
        } else {
            let matching: Vec<PipelineId> = pipelines
                .iter()
                .zip(&ids)
                .filter(|((func, _, _), _)| func == &target)
                .map(|(_, &id)| id)
                .collect();
            if matching.is_empty() {
                return Err(TextFmtError::Syntax {
                    line,
                    message: format!("no pipeline with function `{target}`"),
                });
            }
            matching
        };
        for op in ops {
            accumulated.entry(op).or_default().extend(&targets);
        }
    }
    for (op, mut targets) in accumulated {
        targets.sort_unstable();
        targets.dedup();
        b.map(op, &targets);
    }

    b.build().map_err(TextFmtError::Invalid)
}

/// Render a machine in the text format ([`parse`] ∘ [`render`] = identity
/// up to mapping granularity).
pub fn render(machine: &Machine) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "machine {}", machine.name);
    for p in machine.pipelines() {
        let _ = writeln!(
            out,
            "pipeline {:<12} latency={} enqueue={}",
            p.function, p.latency, p.enqueue
        );
    }
    for (op, ids) in machine.mapping() {
        for id in ids {
            let _ = writeln!(out, "map {op} -> #{id}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    const SAMPLE: &str = "\
machine paper-simulation
; Table 4
pipeline loader      latency=2 enqueue=1
pipeline adder       latency=3 enqueue=1
pipeline multiplier  latency=4 enqueue=2
; Table 5
map Load             -> loader
map Add, Sub, Neg, Mov -> adder
map Mul, Div         -> multiplier
";

    #[test]
    fn parses_the_paper_simulation_machine() {
        let m = parse(SAMPLE).unwrap();
        let reference = presets::paper_simulation();
        assert_eq!(m.pipeline_count(), 3);
        for op in pipesched_ir::Op::BLOCK_OPS {
            assert_eq!(
                m.latency_for(op),
                reference.latency_for(op),
                "latency mismatch for {op}"
            );
            assert_eq!(m.enqueue_for(op), reference.enqueue_for(op));
        }
    }

    #[test]
    fn invalid_machine_exposes_the_machine_error_as_source() {
        use std::error::Error as _;
        let text = "\
machine bad
pipeline loader latency=0 enqueue=1
map Load -> loader
";
        let err = parse(text).unwrap_err();
        assert!(matches!(err, TextFmtError::Invalid(_)));
        let source = err.source().expect("Invalid wraps a MachineError");
        assert!(source.downcast_ref::<MachineError>().is_some());
    }

    #[test]
    fn duplicated_function_names_map_to_all_units() {
        let text = "\
machine two-loaders
pipeline loader latency=2 enqueue=1
pipeline loader latency=2 enqueue=1
map Load -> loader
";
        let m = parse(text).unwrap();
        assert_eq!(m.pipelines_for(pipesched_ir::Op::Load).len(), 2);
    }

    #[test]
    fn explicit_id_targets() {
        let text = "\
machine byid
pipeline alpha latency=1 enqueue=1
pipeline beta  latency=2 enqueue=2
map Add -> #2
";
        let m = parse(text).unwrap();
        assert_eq!(m.latency_for(pipesched_ir::Op::Add), Some(2));
    }

    #[test]
    fn round_trips_through_render() {
        for machine in presets::all_presets() {
            let text = render(&machine);
            let back = parse(&text).unwrap();
            assert_eq!(back.pipeline_count(), machine.pipeline_count());
            for op in pipesched_ir::Op::BLOCK_OPS {
                assert_eq!(back.pipelines_for(op), machine.pipelines_for(op), "{op}");
            }
        }
    }

    #[test]
    fn error_reporting() {
        assert!(matches!(
            parse("pipeline loader latency=2\n"),
            Err(TextFmtError::Syntax { line: 1, .. })
        ));
        assert!(matches!(
            parse("map Load -> ghost\n"),
            Err(TextFmtError::Syntax { .. })
        ));
        assert!(matches!(
            parse("pipeline p latency=0 enqueue=1\n"),
            Err(TextFmtError::Invalid(_))
        ));
        assert!(parse("frobnicate\n").is_err());
        assert!(parse("map Load -> #9\npipeline l latency=1 enqueue=1\n").is_err());
    }
}
