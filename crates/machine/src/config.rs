//! JSON (de)serialization of machine descriptions.
//!
//! The serde derives on [`Machine`](crate::Machine) define the schema; this
//! module adds convenience entry points with validation, so an experiment
//! can load a machine table from disk:
//!
//! ```
//! use pipesched_machine::{config, presets};
//!
//! let m = presets::paper_simulation();
//! let json = config::to_json(&m).unwrap();
//! let back = config::from_json(&json).unwrap();
//! assert_eq!(m, back);
//! ```

use crate::machine::{Machine, MachineError};

/// Errors from loading a machine config.
#[derive(Debug)]
pub enum ConfigError {
    /// The JSON was malformed or did not match the schema.
    Json(serde_json::Error),
    /// The decoded machine failed validation.
    Machine(MachineError),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Json(e) => write!(f, "machine config JSON error: {e}"),
            ConfigError::Machine(e) => write!(f, "machine config invalid: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Serialize a machine to pretty-printed JSON.
pub fn to_json(machine: &Machine) -> Result<String, ConfigError> {
    serde_json::to_string_pretty(machine).map_err(ConfigError::Json)
}

/// Deserialize and validate a machine from JSON.
pub fn from_json(json: &str) -> Result<Machine, ConfigError> {
    let machine: Machine = serde_json::from_str(json).map_err(ConfigError::Json)?;
    machine.validate().map_err(ConfigError::Machine)?;
    Ok(machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn round_trip_every_preset() {
        for m in presets::all_presets() {
            let json = to_json(&m).unwrap();
            let back = from_json(&json).unwrap();
            assert_eq!(m, back, "{}", m.name);
        }
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(matches!(from_json("{ not json"), Err(ConfigError::Json(_))));
    }

    #[test]
    fn rejects_invalid_machine() {
        // Valid JSON, but the mapping references pipeline id 9.
        let json = r#"{
            "name": "bad",
            "pipelines": [{"function": "loader", "latency": 2, "enqueue": 1}],
            "mapping": {"Load": [9]}
        }"#;
        assert!(matches!(from_json(json), Err(ConfigError::Machine(_))));
    }
}
