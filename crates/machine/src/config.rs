//! JSON (de)serialization of machine descriptions.
//!
//! The schema is hand-written over [`pipesched_json`] (the build environment
//! has no registry access, so serde is unavailable) and matches the original
//! serde-derived layout byte-for-byte in structure:
//!
//! ```json
//! {
//!   "name": "paper-simulation",
//!   "pipelines": [{"function": "loader", "latency": 2, "enqueue": 1}],
//!   "mapping": {"Load": [0]}
//! }
//! ```
//!
//! ```
//! use pipesched_machine::{config, presets};
//!
//! let m = presets::paper_simulation();
//! let json = config::to_json(&m).unwrap();
//! let back = config::from_json(&json).unwrap();
//! assert_eq!(m, back);
//! ```

use pipesched_ir::Op;
use pipesched_json::{json_object, Json, JsonError};

use crate::machine::{Machine, MachineError};
use crate::pipeline::PipelineId;

/// Errors from loading a machine config.
#[derive(Debug)]
pub enum ConfigError {
    /// The JSON was malformed or did not match the schema.
    Json(JsonError),
    /// The decoded machine failed validation.
    Machine(MachineError),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Json(e) => write!(f, "machine config JSON error: {e}"),
            ConfigError::Machine(e) => write!(f, "machine config invalid: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Json(e) => Some(e),
            ConfigError::Machine(e) => Some(e),
        }
    }
}

fn schema_error(message: impl Into<String>) -> ConfigError {
    ConfigError::Json(JsonError {
        offset: 0,
        message: message.into(),
    })
}

/// Serialize a machine to pretty-printed JSON.
pub fn to_json(machine: &Machine) -> Result<String, ConfigError> {
    let pipelines: Vec<Json> = machine
        .pipelines()
        .iter()
        .map(|p| {
            json_object![
                ("function", p.function.as_str()),
                ("latency", p.latency),
                ("enqueue", p.enqueue),
            ]
        })
        .collect();
    let mapping: Vec<(String, Json)> = machine
        .mapping()
        .iter()
        .map(|(op, ids)| {
            let ids: Vec<Json> = ids.iter().map(|id| Json::from(id.0)).collect();
            (op.to_string(), Json::Array(ids))
        })
        .collect();
    let doc = json_object![
        ("name", machine.name.as_str()),
        ("pipelines", Json::Array(pipelines)),
        ("mapping", Json::Object(mapping)),
    ];
    Ok(doc.to_pretty())
}

/// Deserialize and validate a machine from JSON.
pub fn from_json(json: &str) -> Result<Machine, ConfigError> {
    let doc = pipesched_json::parse(json).map_err(ConfigError::Json)?;
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| schema_error("missing string field `name`"))?;
    let mut builder = Machine::builder(name);

    let pipelines = doc
        .get("pipelines")
        .and_then(Json::as_array)
        .ok_or_else(|| schema_error("missing array field `pipelines`"))?;
    for (i, p) in pipelines.iter().enumerate() {
        let function = p
            .get("function")
            .and_then(Json::as_str)
            .ok_or_else(|| schema_error(format!("pipeline {i}: missing string `function`")))?;
        let latency = field_u32(p, "latency", i)?;
        let enqueue = field_u32(p, "enqueue", i)?;
        builder.pipeline(function, latency, enqueue);
    }

    let mapping = doc
        .get("mapping")
        .and_then(Json::as_object)
        .ok_or_else(|| schema_error("missing object field `mapping`"))?;
    for (key, ids) in mapping {
        let op: Op = key
            .parse()
            .map_err(|_| schema_error(format!("mapping key `{key}` is not an operation")))?;
        let ids = ids
            .as_array()
            .ok_or_else(|| schema_error(format!("mapping for `{key}` must be an array")))?;
        let ids: Vec<PipelineId> = ids
            .iter()
            .map(|id| {
                id.as_i64()
                    .filter(|&n| (0..=i64::from(u32::MAX)).contains(&n))
                    .map(|n| PipelineId(n as u32))
                    .ok_or_else(|| schema_error(format!("bad pipeline id for `{key}`")))
            })
            .collect::<Result<_, _>>()?;
        builder.map(op, &ids);
    }

    builder.build().map_err(ConfigError::Machine)
}

fn field_u32(obj: &Json, field: &str, index: usize) -> Result<u32, ConfigError> {
    obj.get(field)
        .and_then(Json::as_i64)
        .filter(|&n| (0..=i64::from(u32::MAX)).contains(&n))
        .map(|n| n as u32)
        .ok_or_else(|| schema_error(format!("pipeline {index}: missing integer `{field}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn round_trip_every_preset() {
        for m in presets::all_presets() {
            let json = to_json(&m).unwrap();
            let back = from_json(&json).unwrap();
            assert_eq!(m, back, "{}", m.name);
        }
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(matches!(from_json("{ not json"), Err(ConfigError::Json(_))));
    }

    #[test]
    fn rejects_schema_mismatch() {
        // Well-formed JSON that is not a machine description.
        assert!(matches!(from_json("[1, 2]"), Err(ConfigError::Json(_))));
        assert!(matches!(
            from_json(r#"{"name": "m", "pipelines": [], "mapping": {"Load": 3}}"#),
            Err(ConfigError::Json(_))
        ));
    }

    #[test]
    fn rejects_invalid_machine() {
        // Valid JSON, but the mapping references pipeline id 9.
        let json = r#"{
            "name": "bad",
            "pipelines": [{"function": "loader", "latency": 2, "enqueue": 1}],
            "mapping": {"Load": [9]}
        }"#;
        assert!(matches!(from_json(json), Err(ConfigError::Machine(_))));
    }
}
