#![warn(missing_docs)]

//! Pipeline machine descriptions for `pipesched`.
//!
//! Section 4.1 of the paper describes the scheduling problem input as two
//! tables: a *pipeline description table* (one row per hardware pipeline,
//! giving its function, identifier, **latency** and **enqueue time**) and an
//! *operation-to-pipeline mapping table* (the set of pipelines able to
//! execute each operation type). This crate implements both, plus presets
//! for every machine the paper mentions and a JSON config format so
//! new machines require no code changes — "changing the pipeline structure
//! changes only the entries in these tables, not the structure of the
//! scheduling algorithm".

pub mod config;
pub mod machine;
pub mod pipeline;
pub mod presets;
pub mod textfmt;

pub use machine::{Machine, MachineBuilder, MachineError};
pub use pipeline::{Pipeline, PipelineId};
