//! Property tests for the backend: for random blocks and random legal
//! schedules, liveness, allocation and code generation obey their
//! invariants, and the emitted code computes the same memory state as a
//! straight-line reference evaluation of the tuples.

use std::collections::HashMap;

use proptest::prelude::*;

use pipesched_ir::{BasicBlock, BlockBuilder, DepDag, Op, Operand, TupleId, VarId};
use pipesched_regalloc::{allocate, emit, live_intervals, max_pressure};

fn block_from_script(script: &[u8]) -> BasicBlock {
    let mut b = BlockBuilder::new("prop");
    let vars = ["m", "n", "o", "p"];
    for chunk in script.chunks(2) {
        let (op, x) = (chunk[0], chunk.get(1).copied().unwrap_or(0));
        let blk = b.clone().finish_unchecked();
        let producers: Vec<TupleId> = blk
            .ids()
            .filter(|&i| blk.tuple(i).op.produces_value())
            .collect();
        match op % 5 {
            0 => {
                b.load(vars[x as usize % vars.len()]);
            }
            1 => {
                b.constant(i64::from(x) - 100);
            }
            2 | 3 if !producers.is_empty() => {
                let l = producers[x as usize % producers.len()];
                let r = producers[(x / 7) as usize % producers.len()];
                let ops = [Op::Add, Op::Sub, Op::Mul, Op::Div];
                b.binary(ops[x as usize % 4], l, r);
            }
            4 if !producers.is_empty() => {
                let v = producers[x as usize % producers.len()];
                b.store(vars[(x / 3) as usize % vars.len()], v);
            }
            _ => {
                b.load(vars[x as usize % vars.len()]);
            }
        }
    }
    if b.is_empty() {
        b.load("m");
    }
    b.finish().expect("valid by construction")
}

/// Straight-line reference evaluation (independent of the frontend crate).
fn reference_memory(block: &BasicBlock, initial: &HashMap<String, i64>) -> HashMap<String, i64> {
    let mut memory = initial.clone();
    let mut values = vec![0i64; block.len()];
    for t in block.tuples() {
        let read = |o: Operand, values: &[i64]| match o {
            Operand::Tuple(r) => values[r.index()],
            Operand::Imm(v) => v,
            _ => unreachable!(),
        };
        let name = |v: VarId| block.symbols().name(v).unwrap().to_string();
        let result = match t.op {
            Op::Const => t.a.as_imm().unwrap(),
            Op::Load => *memory.entry(name(t.a.as_var().unwrap())).or_insert(0),
            Op::Store => {
                let v = read(t.b, &values);
                memory.insert(name(t.a.as_var().unwrap()), v);
                v
            }
            Op::Add => read(t.a, &values).wrapping_add(read(t.b, &values)),
            Op::Sub => read(t.a, &values).wrapping_sub(read(t.b, &values)),
            Op::Mul => read(t.a, &values).wrapping_mul(read(t.b, &values)),
            Op::Div => {
                let d = read(t.b, &values);
                if d == 0 {
                    0
                } else {
                    read(t.a, &values).wrapping_div(d)
                }
            }
            Op::Neg => read(t.a, &values).wrapping_neg(),
            Op::Mov => read(t.a, &values),
            Op::Nop => 0,
        };
        values[t.id.index()] = result;
    }
    memory
}

fn random_topo_order(dag: &DepDag, selectors: &[u8]) -> Vec<TupleId> {
    let n = dag.len();
    let mut pending: Vec<u32> = (0..n)
        .map(|i| dag.preds(TupleId(i as u32)).len() as u32)
        .collect();
    let mut placed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for step in 0..n {
        let ready: Vec<usize> = (0..n).filter(|&i| !placed[i] && pending[i] == 0).collect();
        let pick = ready[selectors.get(step).copied().unwrap_or(0) as usize % ready.len()];
        placed[pick] = true;
        for e in dag.succs(TupleId(pick as u32)) {
            pending[e.to.index()] -= 1;
        }
        order.push(TupleId(pick as u32));
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn allocation_succeeds_exactly_at_pressure(
        script in proptest::collection::vec(any::<u8>(), 2..40),
        selectors in proptest::collection::vec(any::<u8>(), 20),
    ) {
        let block = block_from_script(&script);
        let dag = DepDag::build(&block);
        let order = random_topo_order(&dag, &selectors);
        let pressure = max_pressure(&block, &order);

        // Succeeds at exactly the measured pressure.
        let regs = allocate(&block, &order, pressure.max(1));
        prop_assert!(regs.is_ok(), "failed at pressure {pressure}");
        // Fails strictly below it (when pressure > 0).
        if pressure > 1 {
            prop_assert!(allocate(&block, &order, pressure - 1).is_err());
        }

        // No two overlapping intervals share a register.
        let regs = regs.unwrap();
        let ivs = live_intervals(&block, &order);
        for i in 0..block.len() {
            for j in (i + 1)..block.len() {
                let (Some(ri), Some(rj)) = (regs[i], regs[j]) else { continue };
                if ri != rj { continue; }
                let (a, b) = (ivs[i].unwrap(), ivs[j].unwrap());
                let a_end = a.last_use.max(a.def + 1);
                let b_end = b.last_use.max(b.def + 1);
                prop_assert!(a_end <= b.def || b_end <= a.def,
                    "tuples {i},{j} overlap in register {ri:?}");
            }
        }
    }

    #[test]
    fn emitted_code_preserves_semantics_for_any_legal_order(
        script in proptest::collection::vec(any::<u8>(), 2..40),
        selectors in proptest::collection::vec(any::<u8>(), 20),
        inputs in proptest::collection::vec(-50i64..50, 4),
    ) {
        let block = block_from_script(&script);
        let dag = DepDag::build(&block);
        let order = random_topo_order(&dag, &selectors);
        let pressure = max_pressure(&block, &order).max(1);
        let regs = allocate(&block, &order, pressure).unwrap();
        let etas = vec![0u32; order.len()];
        let program = emit(&block, &order, &etas, &regs).unwrap();

        let initial: HashMap<String, i64> = ["m", "n", "o", "p"]
            .iter()
            .zip(&inputs)
            .map(|(k, &v)| (k.to_string(), v))
            .collect();
        // Reference uses *program order*; the emitted code runs in the
        // random legal order — dependences guarantee the same result.
        let reference = reference_memory(&block, &initial);
        let executed = program.execute(&initial);
        for (var, &v) in &reference {
            prop_assert_eq!(
                executed.get(var).copied().unwrap_or(0), v,
                "variable {} diverged under reordering", var
            );
        }
    }
}
