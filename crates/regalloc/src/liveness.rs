//! Live intervals of tuple values under a given schedule order.

use pipesched_ir::{BasicBlock, TupleId};

/// The live interval of one tuple's value, in *schedule positions*:
/// the value exists from just after `def` until its last use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Position (in the schedule) where the value is defined.
    pub def: usize,
    /// Position of the last use (`def` itself when the value is unused —
    /// a zero-length interval needing no register past its def).
    pub last_use: usize,
}

/// Compute per-tuple live intervals for `block` scheduled as `order`.
///
/// `intervals[tuple.index()]` is `None` for tuples that produce no value
/// (`Store`).
pub fn live_intervals(block: &BasicBlock, order: &[TupleId]) -> Vec<Option<Interval>> {
    let n = block.len();
    assert_eq!(order.len(), n, "order must be a complete schedule");
    let mut position = vec![usize::MAX; n];
    for (pos, &t) in order.iter().enumerate() {
        position[t.index()] = pos;
    }

    let mut intervals: Vec<Option<Interval>> = (0..n)
        .map(|i| {
            let t = &block.tuples()[i];
            t.op.produces_value().then(|| Interval {
                def: position[i],
                last_use: position[i],
            })
        })
        .collect();

    for t in block.tuples() {
        let use_pos = position[t.id.index()];
        for r in t.tuple_refs() {
            let iv = intervals[r.index()]
                .as_mut()
                .expect("verified blocks only reference value-producing tuples");
            iv.last_use = iv.last_use.max(use_pos);
        }
    }
    intervals
}

/// Maximum number of simultaneously live values under `order` — the number
/// of registers a spill-free allocation needs.
pub fn max_pressure(block: &BasicBlock, order: &[TupleId]) -> usize {
    let intervals = live_intervals(block, order);
    let n = order.len();
    // Sweep positions; a value occupies a register from its def position
    // through its last use (inclusive).
    let mut delta = vec![0isize; n + 1];
    for iv in intervals.into_iter().flatten() {
        // A value occupies a register from its def up to (exclusive) its
        // last use — the consuming instruction may reuse the register for
        // its own result. A dead def still occupies its register for the
        // defining cycle itself.
        delta[iv.def] += 1;
        delta[iv.last_use.max(iv.def + 1)] -= 1;
    }
    let mut cur = 0isize;
    let mut max = 0isize;
    for d in delta {
        cur += d;
        max = max.max(cur);
    }
    max as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::BlockBuilder;

    #[test]
    fn intervals_span_def_to_last_use() {
        let mut b = BlockBuilder::new("iv");
        let x = b.load("x"); // pos 0, used at 2 and 3
        let y = b.load("y"); // pos 1, used at 2
        let s = b.add(x, y); // pos 2, used at 4
        let m = b.mul(s, x); // pos 3, used at 4... no: mul(s, x) uses s and x
        b.store("r", m); // pos 4
        let block = b.finish().unwrap();
        let order: Vec<_> = block.ids().collect();
        let iv = live_intervals(&block, &order);
        assert_eq!(
            iv[0],
            Some(Interval {
                def: 0,
                last_use: 3
            })
        );
        assert_eq!(
            iv[1],
            Some(Interval {
                def: 1,
                last_use: 2
            })
        );
        assert_eq!(
            iv[2],
            Some(Interval {
                def: 2,
                last_use: 3
            })
        );
        assert_eq!(
            iv[3],
            Some(Interval {
                def: 3,
                last_use: 4
            })
        );
        assert_eq!(iv[4], None, "stores produce no value");
    }

    #[test]
    fn intervals_follow_the_schedule_not_program_order() {
        let mut b = BlockBuilder::new("ord");
        let x = b.load("x");
        let y = b.load("y");
        let s = b.add(x, y);
        b.store("r", s);
        let block = b.finish().unwrap();
        // Schedule y first.
        let order = [1u32, 0, 2, 3].map(pipesched_ir::TupleId);
        let iv = live_intervals(&block, &order);
        assert_eq!(iv[1].unwrap().def, 0, "y defined first in this schedule");
        assert_eq!(iv[0].unwrap().def, 1);
    }

    #[test]
    fn pressure_counts_overlaps() {
        let mut b = BlockBuilder::new("pr");
        let x = b.load("x");
        let y = b.load("y");
        let z = b.load("z");
        let s1 = b.add(x, y);
        let s2 = b.add(s1, z);
        b.store("r", s2);
        let block = b.finish().unwrap();
        let order: Vec<_> = block.ids().collect();
        // x, y, z all live at position 2 (z defined, x/y still pending use).
        assert_eq!(max_pressure(&block, &order), 3);
    }

    #[test]
    fn dead_def_occupies_only_its_own_cycle() {
        let mut b = BlockBuilder::new("u");
        let x = b.load("x");
        b.load("unused");
        b.store("r", x);
        let block = b.finish().unwrap();
        let order: Vec<_> = block.ids().collect();
        // At position 1 both x and the dead load hold registers; the dead
        // value is free again by position 2.
        assert_eq!(max_pressure(&block, &order), 2);
    }

    #[test]
    fn empty_block_has_zero_pressure() {
        let block = BlockBuilder::new("e").finish().unwrap();
        assert_eq!(max_pressure(&block, &[]), 0);
    }
}
