//! Linear-scan register assignment over schedule-order live intervals.

use std::fmt;

use pipesched_ir::{BasicBlock, TupleId};

use crate::codegen::Reg;
use crate::liveness::live_intervals;

/// Allocation failure: the schedule needs more registers than the target
/// has. The paper's front end prevents this by pre-spilling (§3.1); see
/// [`crate::spill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegAllocError {
    /// Schedule position where the register file overflowed.
    pub position: usize,
    /// Registers available.
    pub available: usize,
}

impl fmt::Display for RegAllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of registers at schedule position {} ({} available); pre-spill the block",
            self.position, self.available
        )
    }
}

impl std::error::Error for RegAllocError {}

/// Assign one of `num_regs` registers to every value-producing tuple of
/// `block` under schedule `order`.
///
/// Returns `regs[tuple.index()] = Some(register)` for value-producing
/// tuples, `None` for stores.
pub fn allocate(
    block: &BasicBlock,
    order: &[TupleId],
    num_regs: usize,
) -> Result<Vec<Option<Reg>>, RegAllocError> {
    let intervals = live_intervals(block, order);
    let n = order.len();
    let mut assignment: Vec<Option<Reg>> = vec![None; n];
    // Free list kept sorted so allocation is deterministic (lowest first).
    let mut free: Vec<u16> = (0..num_regs as u16).rev().collect();
    // (release position, register) of live values; release = max(last_use, def+1).
    let mut active: Vec<(usize, u16)> = Vec::new();

    for (pos, &t) in order.iter().enumerate() {
        // Expire intervals whose last use has been read.
        active.retain(|&(release, r)| {
            if release <= pos {
                free.push(r);
                false
            } else {
                true
            }
        });
        free.sort_unstable_by(|a, b| b.cmp(a));

        let Some(iv) = intervals[t.index()] else {
            continue; // Store: no destination register.
        };
        let Some(r) = free.pop() else {
            return Err(RegAllocError {
                position: pos,
                available: num_regs,
            });
        };
        assignment[t.index()] = Some(Reg(r));
        active.push((iv.last_use.max(iv.def + 1), r));
    }
    Ok(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liveness::max_pressure;
    use pipesched_ir::BlockBuilder;

    fn sample() -> BasicBlock {
        let mut b = BlockBuilder::new("ls");
        let x = b.load("x");
        let y = b.load("y");
        let s = b.add(x, y);
        let z = b.load("z");
        let m = b.mul(s, z);
        b.store("r", m);
        b.finish().unwrap()
    }

    #[test]
    fn allocates_within_pressure() {
        let block = sample();
        let order: Vec<_> = block.ids().collect();
        let pressure = max_pressure(&block, &order);
        let regs = allocate(&block, &order, pressure).unwrap();
        // Stores get no register; everything else does.
        assert!(regs[5].is_none());
        assert!(regs[..5].iter().all(Option::is_some));
    }

    #[test]
    fn fails_below_pressure() {
        let block = sample();
        let order: Vec<_> = block.ids().collect();
        let pressure = max_pressure(&block, &order);
        assert!(allocate(&block, &order, pressure - 1).is_err());
    }

    #[test]
    fn no_two_overlapping_values_share_a_register() {
        let block = sample();
        let order: Vec<_> = block.ids().collect();
        let regs = allocate(&block, &order, 8).unwrap();
        let ivs = live_intervals(&block, &order);
        for i in 0..block.len() {
            for j in (i + 1)..block.len() {
                let (Some(ri), Some(rj)) = (regs[i], regs[j]) else {
                    continue;
                };
                if ri != rj {
                    continue;
                }
                let (a, b) = (ivs[i].unwrap(), ivs[j].unwrap());
                let a_end = a.last_use.max(a.def + 1);
                let b_end = b.last_use.max(b.def + 1);
                assert!(
                    a_end <= b.def || b_end <= a.def,
                    "tuples {i} and {j} share {ri:?} while overlapping"
                );
            }
        }
    }

    #[test]
    fn registers_are_reused_after_expiry() {
        // Long chain of independent load/store pairs: 2 registers suffice
        // regardless of length... actually 1 value live at a time + dead
        // window ⇒ pressure 1.
        let mut b = BlockBuilder::new("reuse");
        for i in 0..6 {
            let l = b.load(&format!("x{i}"));
            b.store(&format!("y{i}"), l);
        }
        let block = b.finish().unwrap();
        let order: Vec<_> = block.ids().collect();
        let regs = allocate(&block, &order, 1).unwrap();
        // Every load got the single register R0.
        for t in block.tuples() {
            if t.op == pipesched_ir::Op::Load {
                assert_eq!(regs[t.id.index()], Some(Reg(0)));
            }
        }
    }

    #[test]
    fn deterministic_lowest_register_first() {
        let block = sample();
        let order: Vec<_> = block.ids().collect();
        let a = allocate(&block, &order, 16).unwrap();
        let b2 = allocate(&block, &order, 16).unwrap();
        assert_eq!(a, b2);
        assert_eq!(a[0], Some(Reg(0)));
        assert_eq!(a[1], Some(Reg(1)));
    }
}
