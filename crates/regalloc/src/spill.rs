//! Pre-scheduling spill insertion (§3.1).
//!
//! "If there are more live values than registers in the target machine,
//! then all values beyond the number of registers will be explicitly
//! re-loaded... we insure that when registers are actually allocated later,
//! there will be no need to introduce new spill instructions, since these
//! could invalidate the optimality of the schedule."
//!
//! `reduce_pressure` rewrites a block whose program-order register pressure
//! exceeds the budget: the live value with the furthest next use is stored
//! to a compiler temporary and re-loaded before each later use. Pressure is
//! computed over *program order*; the scheduler can still raise pressure by
//! reordering, so callers that schedule afterwards should budget headroom
//! (the paper's prototype side-steps this by assuming enough registers, and
//! our experiments do the same — this pass exists for the API's
//! completeness and is exercised by its own tests).

use pipesched_ir::{BasicBlock, Op, Operand, TupleId};

use crate::liveness::{live_intervals, max_pressure};

/// Rewrite `block` so its program-order register pressure is at most
/// `budget`. Returns the rewritten block and how many values were spilled.
/// `budget` must be at least 2 (one value plus one reload slot).
pub fn reduce_pressure(block: &BasicBlock, budget: usize) -> (BasicBlock, usize) {
    assert!(budget >= 2, "cannot allocate with fewer than 2 registers");
    let mut current = block.clone();
    let mut spills = 0usize;
    // Iterate: each round spills the single worst value, then re-measures.
    // Termination: every spill strictly reduces the pressure peak count or
    // shortens an interval; bounded by a generous iteration cap.
    for _ in 0..block.len() * 2 {
        let order: Vec<TupleId> = current.ids().collect();
        if max_pressure(&current, &order) <= budget {
            break;
        }
        current = spill_one(&current);
        spills += 1;
    }
    (current, spills)
}

/// Spill the live value with the furthest next use at the first pressure
/// peak: store it to a fresh temporary right after its def and reload it
/// immediately before each subsequent use.
fn spill_one(block: &BasicBlock) -> BasicBlock {
    let order: Vec<TupleId> = block.ids().collect();
    let intervals = live_intervals(block, &order);

    // Find the victim: the value with the longest live interval.
    let victim = intervals
        .iter()
        .enumerate()
        .filter_map(|(i, iv)| iv.map(|iv| (i, iv.last_use - iv.def)))
        .max_by_key(|&(_, len)| len)
        .map(|(i, _)| TupleId(i as u32))
        .expect("a block with pressure has values");

    // Rebuild the block: after the victim's def, store it to a fresh temp;
    // before each use, insert a reload and rewire the use.
    let temp_name = format!("$spill{}", victim.0);
    let mut out = BasicBlock::new(block.name.clone());
    // Intern all existing symbols first to keep ids stable for readers.
    for i in 0..block.symbols().len() {
        let name = block.symbols().name(pipesched_ir::VarId(i as u32)).unwrap();
        out.intern(name);
    }
    let temp = out.intern(&temp_name);

    // Map old tuple id → new tuple id of the value to use.
    let mut remap: Vec<Option<TupleId>> = vec![None; block.len()];
    for t in block.tuples() {
        let map_op = |o: Operand, remap: &[Option<TupleId>], out: &mut BasicBlock| -> Operand {
            match o {
                Operand::Tuple(r) if r == victim => {
                    // Reload before this use.
                    let reload = out.push(Op::Load, Operand::Var(temp), Operand::None);
                    Operand::Tuple(reload)
                }
                Operand::Tuple(r) => Operand::Tuple(remap[r.index()].expect("forward refs")),
                other => other,
            }
        };
        let a = map_op(t.a, &remap, &mut out);
        let b = map_op(t.b, &remap, &mut out);
        let new_id = out.push(t.op, a, b);
        remap[t.id.index()] = Some(new_id);
        if t.id == victim {
            out.push(Op::Store, Operand::Var(temp), Operand::Tuple(new_id));
        }
    }
    debug_assert!(out.verify().is_ok());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::BlockBuilder;

    /// A block with pressure = number of parallel loads.
    fn wide_block(width: usize) -> BasicBlock {
        let mut b = BlockBuilder::new("wide");
        let loads: Vec<_> = (0..width).map(|i| b.load(&format!("x{i}"))).collect();
        let mut acc = loads[0];
        for &l in &loads[1..] {
            acc = b.add(acc, l);
        }
        b.store("r", acc);
        b.finish().unwrap()
    }

    #[test]
    fn wide_block_pressure_matches_width() {
        let block = wide_block(6);
        let order: Vec<TupleId> = block.ids().collect();
        assert_eq!(max_pressure(&block, &order), 6);
    }

    #[test]
    fn reduce_pressure_meets_budget() {
        let block = wide_block(6);
        let (reduced, spills) = reduce_pressure(&block, 3);
        assert!(spills > 0);
        let order: Vec<TupleId> = reduced.ids().collect();
        assert!(max_pressure(&reduced, &order) <= 3);
        reduced.verify().unwrap();
    }

    #[test]
    fn no_spill_when_within_budget() {
        let block = wide_block(3);
        let (reduced, spills) = reduce_pressure(&block, 4);
        assert_eq!(spills, 0);
        assert_eq!(reduced, block);
    }

    #[test]
    fn spilled_block_preserves_semantics() {
        use pipesched_frontend_interp::*;
        let block = wide_block(5);
        let (reduced, _) = reduce_pressure(&block, 3);
        let initial: std::collections::HashMap<String, i64> = (0..5)
            .map(|i| (format!("x{i}"), (i as i64 + 1) * 10))
            .collect();
        let a = interp_memory(&block, &initial);
        let b = interp_memory(&reduced, &initial);
        assert_eq!(a.get("r"), b.get("r"));
    }

    /// A minimal local interpreter (the full one lives in the frontend
    /// crate, which regalloc does not depend on).
    mod pipesched_frontend_interp {
        use pipesched_ir::{BasicBlock, Op, Operand};
        use std::collections::HashMap;

        pub fn interp_memory(
            block: &BasicBlock,
            initial: &HashMap<String, i64>,
        ) -> HashMap<String, i64> {
            let mut memory = initial.clone();
            let mut values = vec![0i64; block.len()];
            for t in block.tuples() {
                let read = |o: Operand, values: &[i64], _memory: &HashMap<String, i64>| match o {
                    Operand::Tuple(r) => values[r.index()],
                    Operand::Imm(v) => v,
                    Operand::Var(_) | Operand::None => unreachable!(),
                };
                let v = match t.op {
                    Op::Const => t.a.as_imm().unwrap(),
                    Op::Load => {
                        let name = block.symbols().name(t.a.as_var().unwrap()).unwrap();
                        memory.get(name).copied().unwrap_or(0)
                    }
                    Op::Store => {
                        let name = block
                            .symbols()
                            .name(t.a.as_var().unwrap())
                            .unwrap()
                            .to_string();
                        let v = read(t.b, &values, &memory);
                        memory.insert(name, v);
                        v
                    }
                    Op::Add => {
                        read(t.a, &values, &memory).wrapping_add(read(t.b, &values, &memory))
                    }
                    _ => read(t.a, &values, &memory),
                };
                values[t.id.index()] = v;
            }
            memory
        }
    }
}
