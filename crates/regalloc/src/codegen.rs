//! Code generation: tuples → target instructions (§3.4), with NOP padding,
//! plus an executable model of the target used to validate the backend.
//!
//! "It is assumed that the tuple operations are defined so that each tuple
//! corresponds directly to one target machine instruction, hence this
//! transformation is easily accomplished."

use std::collections::HashMap;
use std::fmt;

use pipesched_ir::{BasicBlock, Op, TupleId};

use crate::linear_scan::RegAllocError;

/// A physical register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// One target-machine instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmInstr {
    /// `Load Rd, var`
    Load {
        /// Destination register.
        rd: Reg,
        /// Source variable.
        var: String,
    },
    /// `Store var, Rs`
    Store {
        /// Destination variable.
        var: String,
        /// Source register.
        rs: Reg,
    },
    /// `Const Rd, imm`
    Const {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// A two-operand ALU instruction (`Add/Sub/Mul/Div Rd, Ra, Rb`).
    Alu {
        /// The operation (Add/Sub/Mul/Div only).
        op: Op,
        /// Destination register.
        rd: Reg,
        /// First source.
        ra: Reg,
        /// Second source.
        rb: Reg,
    },
    /// A one-operand instruction (`Neg/Mov Rd, Ra`).
    Unary {
        /// The operation (Neg/Mov only).
        op: Op,
        /// Destination register.
        rd: Reg,
        /// Source register.
        ra: Reg,
    },
    /// `Nop`
    Nop,
}

impl fmt::Display for AsmInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmInstr::Load { rd, var } => write!(f, "Load  {rd},{var}"),
            AsmInstr::Store { var, rs } => write!(f, "Store {var},{rs}"),
            AsmInstr::Const { rd, imm } => write!(f, "Const {rd},{imm}"),
            AsmInstr::Alu { op, rd, ra, rb } => write!(f, "{:<5} {rd},{ra},{rb}", op.mnemonic()),
            AsmInstr::Unary { op, rd, ra } => write!(f, "{:<5} {rd},{ra}", op.mnemonic()),
            AsmInstr::Nop => write!(f, "Nop"),
        }
    }
}

/// A complete emitted program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmProgram {
    /// The instructions, one per issue slot (NOPs included).
    pub instrs: Vec<AsmInstr>,
}

impl AsmProgram {
    /// Number of NOP slots.
    pub fn nop_count(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| matches!(i, AsmInstr::Nop))
            .count()
    }

    /// Execute the program: registers start at 0, memory from `initial`.
    /// Semantics match the tuple interpreter (wrapping arithmetic, division
    /// by zero yields 0).
    pub fn execute(&self, initial: &HashMap<String, i64>) -> HashMap<String, i64> {
        let mut regs: HashMap<Reg, i64> = HashMap::new();
        let mut memory = initial.clone();
        let get = |regs: &HashMap<Reg, i64>, r: Reg| regs.get(&r).copied().unwrap_or(0);
        for instr in &self.instrs {
            match instr {
                AsmInstr::Load { rd, var } => {
                    let v = memory.get(var).copied().unwrap_or(0);
                    regs.insert(*rd, v);
                }
                AsmInstr::Store { var, rs } => {
                    memory.insert(var.clone(), get(&regs, *rs));
                }
                AsmInstr::Const { rd, imm } => {
                    regs.insert(*rd, *imm);
                }
                AsmInstr::Alu { op, rd, ra, rb } => {
                    let a = get(&regs, *ra);
                    let b = get(&regs, *rb);
                    let v = match op {
                        Op::Add => a.wrapping_add(b),
                        Op::Sub => a.wrapping_sub(b),
                        Op::Mul => a.wrapping_mul(b),
                        Op::Div => {
                            if b == 0 {
                                0
                            } else {
                                a.wrapping_div(b)
                            }
                        }
                        other => unreachable!("not an ALU op: {other}"),
                    };
                    regs.insert(*rd, v);
                }
                AsmInstr::Unary { op, rd, ra } => {
                    let a = get(&regs, *ra);
                    let v = match op {
                        Op::Neg => a.wrapping_neg(),
                        Op::Mov => a,
                        other => unreachable!("not a unary op: {other}"),
                    };
                    regs.insert(*rd, v);
                }
                AsmInstr::Nop => {}
            }
        }
        memory
    }
}

impl fmt::Display for AsmProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in &self.instrs {
            writeln!(f, "    {i}")?;
        }
        Ok(())
    }
}

/// Emit target code for `block` scheduled as `order` with `etas[k]` NOPs
/// before position `k`, using the register `assignment` from
/// [`crate::allocate`].
pub fn emit(
    block: &BasicBlock,
    order: &[TupleId],
    etas: &[u32],
    assignment: &[Option<Reg>],
) -> Result<AsmProgram, RegAllocError> {
    assert_eq!(order.len(), etas.len());
    let reg_of = |t: TupleId| -> Reg {
        assignment[t.index()].expect("value-producing tuple has a register")
    };
    let var_name = |t: &pipesched_ir::Tuple| -> String {
        block
            .symbols()
            .name(t.a.as_var().expect("verified"))
            .expect("interned")
            .to_string()
    };

    let mut instrs = Vec::new();
    for (&t, &eta) in order.iter().zip(etas) {
        for _ in 0..eta {
            instrs.push(AsmInstr::Nop);
        }
        let tup = block.tuple(t);
        let instr = match tup.op {
            Op::Load => AsmInstr::Load {
                rd: reg_of(t),
                var: var_name(tup),
            },
            Op::Store => AsmInstr::Store {
                var: var_name(tup),
                rs: reg_of(tup.b.as_tuple().expect("verified store")),
            },
            Op::Const => AsmInstr::Const {
                rd: reg_of(t),
                imm: tup.a.as_imm().expect("verified"),
            },
            Op::Add | Op::Sub | Op::Mul | Op::Div => AsmInstr::Alu {
                op: tup.op,
                rd: reg_of(t),
                ra: reg_of(tup.a.as_tuple().expect("binary ops reference tuples")),
                rb: reg_of(tup.b.as_tuple().expect("binary ops reference tuples")),
            },
            Op::Neg | Op::Mov => AsmInstr::Unary {
                op: tup.op,
                rd: reg_of(t),
                ra: reg_of(tup.a.as_tuple().expect("unary ops reference tuples")),
            },
            Op::Nop => unreachable!("blocks never contain Nop"),
        };
        instrs.push(instr);
    }
    Ok(AsmProgram { instrs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_scan::allocate;
    use pipesched_ir::BlockBuilder;

    fn emit_simple() -> (BasicBlock, AsmProgram) {
        let mut b = BlockBuilder::new("cg");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        b.store("r", m);
        let block = b.finish().unwrap();
        let order: Vec<_> = block.ids().collect();
        let regs = allocate(&block, &order, 8).unwrap();
        let prog = emit(&block, &order, &[0, 0, 1, 3], &regs).unwrap();
        (block, prog)
    }

    #[test]
    fn emits_one_instruction_per_tuple_plus_nops() {
        let (block, prog) = emit_simple();
        assert_eq!(prog.instrs.len(), block.len() + 4);
        assert_eq!(prog.nop_count(), 4);
    }

    #[test]
    fn listing_shows_registers() {
        let (_, prog) = emit_simple();
        let text = prog.to_string();
        assert!(text.contains("Load  R0,x"), "{text}");
        assert!(text.contains("Mul   R"), "{text}");
        assert!(text.contains("Store r,R"), "{text}");
    }

    #[test]
    fn execution_computes_the_product() {
        let (_, prog) = emit_simple();
        let initial: HashMap<String, i64> = [("x".to_string(), 6), ("y".to_string(), 7)].into();
        let memory = prog.execute(&initial);
        assert_eq!(memory["r"], 42);
    }

    #[test]
    fn division_by_zero_matches_interpreter() {
        let mut b = BlockBuilder::new("dz");
        let x = b.load("x");
        let z = b.load("z");
        let d = b.div(x, z);
        b.store("r", d);
        let block = b.finish().unwrap();
        let order: Vec<_> = block.ids().collect();
        let regs = allocate(&block, &order, 4).unwrap();
        let prog = emit(&block, &order, &[0; 4], &regs).unwrap();
        let memory = prog.execute(&[("x".to_string(), 5)].into());
        assert_eq!(memory["r"], 0);
    }
}
