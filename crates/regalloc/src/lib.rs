#![warn(missing_docs)]

//! Post-scheduling register allocation and code generation (§3.1, §3.4).
//!
//! The paper's key structural decision is that **register allocation happens
//! after scheduling**: tuples carry no register names, so the scheduler is
//! never constrained by the "artificial conflicts resulting from
//! coincidental reuse of a register name" that postpass reorganizers (Gross
//! et al.) suffer. Only once the optimal order is fixed are values assigned
//! to registers, and each tuple is translated to one target instruction.
//!
//! The pipeline here is:
//!
//! 1. [`liveness`] — live intervals of every tuple value *in schedule
//!    order*, and the register-pressure profile;
//! 2. [`linear_scan`] — register assignment over those intervals (errors if
//!    the machine's register file is too small — the paper's front end
//!    pre-spills so this cannot happen, and the prototype "simply assumed
//!    that there were always enough registers");
//! 3. [`spill`] — the §3.1 pre-scheduling pressure reducer: explicit
//!    store/re-load of values beyond the register budget;
//! 4. [`codegen`] — emission of target instructions with NOP padding, plus
//!    an executable model of the target machine used to validate the whole
//!    backend end-to-end.

pub mod codegen;
pub mod linear_scan;
pub mod liveness;
pub mod spill;

pub use codegen::{emit, AsmInstr, AsmProgram, Reg};
pub use linear_scan::{allocate, RegAllocError};
pub use liveness::{live_intervals, max_pressure, Interval};
