#![warn(missing_docs)]

//! Synthetic benchmark generation (§5.2).
//!
//! The paper evaluates the scheduler on 16,000 randomly generated basic
//! blocks: "a C program was developed to randomly generate basic blocks...
//! This program requires as input the number of statements, variables, and
//! constants desired in the generated code. It then generates a random
//! sequence of assignment statements satisfying the desired conditions",
//! with statement-type frequencies "loosely corresponding to the
//! instruction frequency distributions found in [AlW75]" (Table 6).
//!
//! The scanned TR truncates Table 6; the default frequencies here are a
//! documented reconstruction (DESIGN.md §5). Everything is seeded and
//! reproducible: the same [`GeneratorConfig`] always yields the same block.

pub mod corpus;
pub mod freq;
pub mod generator;

pub use corpus::{CorpusSpec, CorpusStats};
pub use freq::FrequencyTable;
pub use generator::{generate_block, generate_program, GeneratorConfig};
