//! Statement-type frequency tables (the paper's Table 6).

use rand::Rng;

/// Relative frequencies of the assignment-statement forms the generator
/// emits. `Load` and `Store` are not listed — as the paper notes, "these
/// instructions are provided as necessary during code generation and
//  optimization".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyTable {
    /// `v = w;` — a simple copy.
    pub simple_copy: f64,
    /// `v = x + y;`
    pub add: f64,
    /// `v = x - y;`
    pub sub: f64,
    /// `v = x * y;`
    pub mul: f64,
    /// `v = x / y;`
    pub div: f64,
    /// Probability that an operand is a constant rather than a variable.
    pub const_operand: f64,
}

impl FrequencyTable {
    /// The reconstruction of the paper's Table 6 (see DESIGN.md §5):
    /// weights loosely following Alexander & Wortman's XPL statistics —
    /// copies and additions dominate, division is rare.
    pub fn default_paper() -> Self {
        FrequencyTable {
            simple_copy: 0.30,
            add: 0.30,
            sub: 0.15,
            mul: 0.15,
            div: 0.10,
            const_operand: 0.25,
        }
    }

    /// A multiplication-heavy mix (stresses the long-latency pipeline).
    pub fn mul_heavy() -> Self {
        FrequencyTable {
            simple_copy: 0.10,
            add: 0.20,
            sub: 0.10,
            mul: 0.45,
            div: 0.15,
            const_operand: 0.20,
        }
    }

    /// Total weight (used for normalization).
    pub fn total(&self) -> f64 {
        self.simple_copy + self.add + self.sub + self.mul + self.div
    }

    /// Sample a statement kind.
    pub fn sample_kind<R: Rng>(&self, rng: &mut R) -> StatementKind {
        let x: f64 = rng.gen::<f64>() * self.total();
        let mut acc = self.simple_copy;
        if x < acc {
            return StatementKind::Copy;
        }
        acc += self.add;
        if x < acc {
            return StatementKind::Add;
        }
        acc += self.sub;
        if x < acc {
            return StatementKind::Sub;
        }
        acc += self.mul;
        if x < acc {
            return StatementKind::Mul;
        }
        StatementKind::Div
    }
}

/// The statement forms of Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatementKind {
    /// `v = w;`
    Copy,
    /// `v = x + y;`
    Add,
    /// `v = x - y;`
    Sub,
    /// `v = x * y;`
    Mul,
    /// `v = x / y;`
    Div,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_weights_sum_to_one() {
        let t = FrequencyTable::default_paper();
        assert!((t.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_roughly_matches_weights() {
        let t = FrequencyTable::default_paper();
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = std::collections::HashMap::new();
        let n = 40_000;
        for _ in 0..n {
            *counts.entry(t.sample_kind(&mut rng)).or_insert(0u32) += 1;
        }
        let frac = |k: StatementKind| f64::from(counts[&k]) / n as f64;
        assert!((frac(StatementKind::Copy) - 0.30).abs() < 0.02);
        assert!((frac(StatementKind::Add) - 0.30).abs() < 0.02);
        assert!((frac(StatementKind::Sub) - 0.15).abs() < 0.02);
        assert!((frac(StatementKind::Mul) - 0.15).abs() < 0.02);
        assert!((frac(StatementKind::Div) - 0.10).abs() < 0.02);
    }

    #[test]
    fn every_kind_is_reachable() {
        let t = FrequencyTable::mul_heavy();
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(t.sample_kind(&mut rng));
        }
        assert_eq!(seen.len(), 5);
    }
}
