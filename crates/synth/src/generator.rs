//! The random block generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pipesched_frontend::ast::{Assign, BinOp, Expr, Program};
use pipesched_frontend::lower;
use pipesched_frontend::opt::{optimize, OptConfig};
use pipesched_ir::BasicBlock;

use crate::freq::{FrequencyTable, StatementKind};

/// Inputs of the generator — exactly the paper's three knobs plus a seed
/// and the frequency table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Number of assignment statements to generate.
    pub statements: usize,
    /// Size of the variable pool (`v0..v{n-1}`).
    pub variables: usize,
    /// Size of the constant pool (distinct literal values).
    pub constants: usize,
    /// RNG seed: the same config always generates the same block.
    pub seed: u64,
    /// Statement-type frequencies.
    pub frequencies: FrequencyTable,
    /// Run the §3.1 optimizer on the lowered block (the paper does; it
    /// makes scheduling *harder* by removing slack).
    pub optimize: bool,
}

impl GeneratorConfig {
    /// A config with the paper's default frequency table.
    pub fn new(statements: usize, variables: usize, constants: usize, seed: u64) -> Self {
        GeneratorConfig {
            statements,
            variables,
            constants,
            seed,
            frequencies: FrequencyTable::default_paper(),
            optimize: true,
        }
    }
}

/// Generate the random source program (AST) for `config`.
pub fn generate_program(config: &GeneratorConfig) -> Program {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let variables: Vec<String> = (0..config.variables.max(1))
        .map(|i| format!("v{i}"))
        .collect();
    // A fixed pool of distinct constants, as the paper's generator takes
    // "the number of ... constants desired".
    let constants: Vec<i64> = (0..config.constants.max(1))
        .map(|i| i as i64 + 1 + (i as i64) * 3)
        .collect();

    let operand = |rng: &mut StdRng| -> Expr {
        if rng.gen::<f64>() < config.frequencies.const_operand {
            Expr::Literal(constants[rng.gen_range(0..constants.len())])
        } else {
            Expr::Var(variables[rng.gen_range(0..variables.len())].clone())
        }
    };

    let mut statements = Vec::with_capacity(config.statements);
    for _ in 0..config.statements {
        let target = variables[rng.gen_range(0..variables.len())].clone();
        let value = match config.frequencies.sample_kind(&mut rng) {
            StatementKind::Copy => operand(&mut rng),
            kind => {
                let op = match kind {
                    StatementKind::Add => BinOp::Add,
                    StatementKind::Sub => BinOp::Sub,
                    StatementKind::Mul => BinOp::Mul,
                    StatementKind::Div => BinOp::Div,
                    StatementKind::Copy => unreachable!(),
                };
                Expr::Binary {
                    op,
                    lhs: Box::new(operand(&mut rng)),
                    rhs: Box::new(operand(&mut rng)),
                }
            }
        };
        statements.push(Assign {
            target,
            value,
            line: 0,
        });
    }
    Program { statements }
}

/// Generate, lower and (optionally) optimize one benchmark block.
pub fn generate_block(config: &GeneratorConfig) -> BasicBlock {
    let program = generate_program(config);
    let name = format!(
        "synth-s{}v{}c{}-{}",
        config.statements, config.variables, config.constants, config.seed
    );
    let block = lower(&name, &program);
    if config.optimize {
        let (optimized, _) = optimize(&block, &OptConfig::default());
        optimized
    } else {
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = GeneratorConfig::new(10, 5, 3, 42);
        let a = generate_block(&cfg);
        let b = generate_block(&cfg);
        assert_eq!(a, b);
        let c = generate_block(&GeneratorConfig { seed: 43, ..cfg });
        assert_ne!(a, c, "different seeds give different blocks");
    }

    #[test]
    fn respects_statement_count() {
        let cfg = GeneratorConfig::new(12, 4, 2, 1);
        let program = generate_program(&cfg);
        assert_eq!(program.statements.len(), 12);
    }

    #[test]
    fn variables_and_constants_come_from_pools() {
        let cfg = GeneratorConfig::new(40, 3, 2, 9);
        let program = generate_program(&cfg);
        for s in &program.statements {
            assert!(s.target.starts_with('v'));
            let idx: usize = s.target[1..].parse().unwrap();
            assert!(idx < 3);
        }
    }

    #[test]
    fn generated_blocks_verify() {
        for seed in 0..50 {
            let cfg = GeneratorConfig::new(8, 4, 3, seed);
            let block = generate_block(&cfg);
            block.verify().unwrap();
        }
    }

    #[test]
    fn optimization_makes_blocks_no_larger() {
        for seed in 0..20 {
            let mut cfg = GeneratorConfig::new(10, 4, 3, seed);
            cfg.optimize = false;
            let raw = generate_block(&cfg);
            cfg.optimize = true;
            let opt = generate_block(&cfg);
            assert!(opt.len() <= raw.len());
        }
    }

    #[test]
    fn zero_statement_config_yields_empty_block() {
        let cfg = GeneratorConfig::new(0, 3, 2, 5);
        let block = generate_block(&cfg);
        assert!(block.is_empty());
    }
}
