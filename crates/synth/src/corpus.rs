//! The 16,000-block benchmark corpus (§5.2–5.3).
//!
//! The original random blocks are unavailable, so the corpus is *regenerated*
//! with the same procedure: a deterministic sweep over (statements,
//! variables, constants) whose default ranges are tuned so the block-size
//! distribution matches the paper's Figure 5 — mean ≈ 20.6 instructions,
//! with a tail past 40 ("though programs with basic blocks that have more
//! than forty instructions are very rare, we have even included such blocks
//! in our study").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pipesched_ir::BasicBlock;

use crate::generator::{generate_block, GeneratorConfig};

/// A reproducible corpus specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusSpec {
    /// Number of blocks.
    pub runs: usize,
    /// Inclusive range of statement counts.
    pub statements: (usize, usize),
    /// Inclusive range of variable-pool sizes.
    pub variables: (usize, usize),
    /// Inclusive range of constant-pool sizes.
    pub constants: (usize, usize),
    /// Master seed; run `k` derives its own seed from it.
    pub base_seed: u64,
}

impl CorpusSpec {
    /// The paper-scale corpus: 16,000 blocks.
    pub fn paper_default() -> Self {
        CorpusSpec {
            runs: 16_000,
            statements: (5, 38),
            variables: (4, 14),
            constants: (1, 6),
            base_seed: 0x1990_0101,
        }
    }

    /// A smaller corpus with the same distribution, for quick runs.
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// The generator config of run `k`.
    pub fn config(&self, k: usize) -> GeneratorConfig {
        // Derive per-run parameters from a splitmix-style hash of the seed
        // so the sweep covers the ranges uniformly but reproducibly.
        let mut rng =
            StdRng::seed_from_u64(self.base_seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let pick = |rng: &mut StdRng, (lo, hi): (usize, usize)| -> usize { rng.gen_range(lo..=hi) };
        let mut statements = pick(&mut rng, self.statements);
        let mut variables = pick(&mut rng, self.variables);
        let constants = pick(&mut rng, self.constants);
        // Fatten the tail: a few percent of blocks are "very large" (the
        // paper deliberately includes blocks past 40 instructions even
        // though such blocks "are very rare" in real programs, §5.3). A
        // wider variable pool keeps dead-store elimination from collapsing
        // the long block back down.
        if rng.gen::<f64>() < 0.04 {
            statements = statements * 9 / 5;
            variables += 10;
        }
        GeneratorConfig::new(statements, variables, constants, rng.gen())
    }

    /// Iterate over all run configs.
    pub fn configs(&self) -> impl Iterator<Item = GeneratorConfig> + '_ {
        (0..self.runs).map(|k| self.config(k))
    }

    /// Generate block `k`.
    pub fn block(&self, k: usize) -> BasicBlock {
        generate_block(&self.config(k))
    }
}

/// Distribution statistics of a corpus (the paper's Figure 5 data).
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    /// Number of blocks measured.
    pub blocks: usize,
    /// Mean instructions per block.
    pub mean_size: f64,
    /// Largest block.
    pub max_size: usize,
    /// Smallest block.
    pub min_size: usize,
    /// Histogram: `histogram[s]` = number of blocks with `s` instructions.
    pub histogram: Vec<usize>,
}

impl CorpusStats {
    /// Measure the first `sample` blocks of `spec`.
    pub fn measure(spec: &CorpusSpec, sample: usize) -> CorpusStats {
        let n = sample.min(spec.runs);
        let mut sizes = Vec::with_capacity(n);
        for k in 0..n {
            sizes.push(spec.block(k).len());
        }
        let max_size = sizes.iter().copied().max().unwrap_or(0);
        let min_size = sizes.iter().copied().min().unwrap_or(0);
        let mut histogram = vec![0usize; max_size + 1];
        for &s in &sizes {
            histogram[s] += 1;
        }
        CorpusStats {
            blocks: n,
            mean_size: sizes.iter().sum::<usize>() as f64 / n.max(1) as f64,
            max_size,
            min_size,
            histogram,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_reproducible() {
        let spec = CorpusSpec::paper_default().with_runs(50);
        let a: Vec<_> = (0..50).map(|k| spec.block(k)).collect();
        let b: Vec<_> = (0..50).map(|k| spec.block(k)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn runs_differ_from_each_other() {
        let spec = CorpusSpec::paper_default();
        assert_ne!(spec.block(0), spec.block(1));
    }

    #[test]
    fn distribution_matches_figure5_shape() {
        // Mean ≈ 20.6 instructions with a tail past 40 (checked on a
        // 400-block sample; tolerance is generous because the original
        // corpus is unrecoverable).
        let spec = CorpusSpec::paper_default();
        let stats = CorpusStats::measure(&spec, 400);
        assert!(
            (stats.mean_size - 20.6).abs() < 4.0,
            "mean {} too far from the paper's 20.6",
            stats.mean_size
        );
        assert!(
            stats.max_size >= 35,
            "no large-block tail: {}",
            stats.max_size
        );
        assert!(stats.min_size >= 1);
    }

    #[test]
    fn histogram_sums_to_blocks() {
        let spec = CorpusSpec::paper_default().with_runs(100);
        let stats = CorpusStats::measure(&spec, 100);
        assert_eq!(stats.histogram.iter().sum::<usize>(), stats.blocks);
    }
}
