//! The tuple instruction form `Γ(i, O, α, β)`.

use std::fmt;

use crate::op::Op;
use crate::operand::Operand;

/// Index of a tuple within its basic block (0-based internally; the textual
/// form and `Display` use the paper's 1-based reference numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId(pub u32);

impl TupleId {
    /// The tuple's position as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0 + 1)
    }
}

/// One instruction in tuple form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tuple {
    /// The tuple's reference number (its index in the block).
    pub id: TupleId,
    /// Operation type.
    pub op: Op,
    /// First operand (`α`).
    pub a: Operand,
    /// Second operand (`β`).
    pub b: Operand,
}

impl Tuple {
    /// Construct a tuple, checking operand count against the op's arity.
    pub fn new(id: TupleId, op: Op, a: Operand, b: Operand) -> Self {
        debug_assert!(
            match op.arity() {
                0 => a.is_none() && b.is_none(),
                1 => !a.is_none() && b.is_none(),
                2 => !a.is_none() && !b.is_none(),
                _ => unreachable!(),
            },
            "operand count does not match arity of {op}"
        );
        Tuple { id, op, a, b }
    }

    /// Iterate over the tuple operands that reference earlier tuples.
    pub fn tuple_refs(&self) -> impl Iterator<Item = TupleId> + '_ {
        [self.a, self.b].into_iter().filter_map(Operand::as_tuple)
    }

    /// Normalized operand pair for value-numbering: commutative operations
    /// order their operands canonically so `Add(a,b)` and `Add(b,a)` compare
    /// equal.
    pub fn canonical_operands(&self) -> (Operand, Operand) {
        if self.op.is_commutative() && self.b < self.a {
            (self.b, self.a)
        } else {
            (self.a, self.b)
        }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.id, self.op)?;
        if !self.a.is_none() {
            write!(f, " {}", self.a)?;
        }
        if !self.b.is_none() {
            write!(f, ", {}", self.b)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::VarId;

    #[test]
    fn display_matches_paper_layout() {
        let t = Tuple::new(
            TupleId(3),
            Op::Mul,
            Operand::Tuple(TupleId(0)),
            Operand::Tuple(TupleId(2)),
        );
        assert_eq!(t.to_string(), "4: Mul @1, @3");
    }

    #[test]
    fn tuple_refs_skips_non_tuple_operands() {
        let t = Tuple::new(
            TupleId(1),
            Op::Store,
            Operand::Var(VarId(0)),
            Operand::Tuple(TupleId(0)),
        );
        let refs: Vec<_> = t.tuple_refs().collect();
        assert_eq!(refs, vec![TupleId(0)]);
    }

    #[test]
    fn canonical_operands_sorts_commutative() {
        let t = Tuple::new(
            TupleId(2),
            Op::Add,
            Operand::Tuple(TupleId(1)),
            Operand::Tuple(TupleId(0)),
        );
        let (a, b) = t.canonical_operands();
        assert_eq!(a, Operand::Tuple(TupleId(0)));
        assert_eq!(b, Operand::Tuple(TupleId(1)));

        let s = Tuple::new(
            TupleId(2),
            Op::Sub,
            Operand::Tuple(TupleId(1)),
            Operand::Tuple(TupleId(0)),
        );
        let (a, b) = s.canonical_operands();
        assert_eq!(a, Operand::Tuple(TupleId(1)));
        assert_eq!(b, Operand::Tuple(TupleId(0)));
    }
}
