//! Textual tuple format, round-trippable with `BasicBlock`'s `Display`.
//!
//! Grammar (one tuple per line, `;` starts a comment):
//!
//! ```text
//! 1: Const 15
//! 2: Store #b, @1
//! 3: Load #a
//! 4: Mul @1, @3
//! 5: Store #a, @4
//! ```
//!
//! `#name` is a variable, `@k` the (1-based) result of tuple `k`, a bare
//! integer an immediate.

use crate::block::BasicBlock;
use crate::error::IrError;
use crate::op::Op;
use crate::operand::Operand;
use crate::tuple::TupleId;

/// Parse the textual tuple format into a verified basic block.
pub fn parse_block(name: &str, text: &str) -> Result<BasicBlock, IrError> {
    let mut block = BasicBlock::new(name);
    let mut expected_id: u32 = 0;
    for (lineno0, raw) in text.lines().enumerate() {
        let line = lineno0 + 1;
        let content = raw.split(';').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let (id_part, rest) = content.split_once(':').ok_or_else(|| IrError::Parse {
            line,
            message: "expected `<id>: <Op> ...`".into(),
        })?;
        let id: u32 = id_part.trim().parse().map_err(|_| IrError::Parse {
            line,
            message: format!("invalid tuple id `{}`", id_part.trim()),
        })?;
        if id != expected_id + 1 {
            return Err(IrError::Parse {
                line,
                message: format!(
                    "tuple id {} out of sequence (expected {})",
                    id,
                    expected_id + 1
                ),
            });
        }
        expected_id = id;

        let rest = rest.trim();
        let (op_part, operands_part) = match rest.split_once(char::is_whitespace) {
            Some((o, r)) => (o, r.trim()),
            None => (rest, ""),
        };
        let op: Op = op_part.parse()?;

        let mut operands = [Operand::None, Operand::None];
        if !operands_part.is_empty() {
            for (slot, text) in operands_part.split(',').enumerate() {
                if slot >= 2 {
                    return Err(IrError::Parse {
                        line,
                        message: "more than two operands".into(),
                    });
                }
                operands[slot] = parse_operand(text.trim(), line, &mut block)?;
            }
        }
        block.push(op, operands[0], operands[1]);
    }
    block.verify()?;
    Ok(block)
}

fn parse_operand(text: &str, line: usize, block: &mut BasicBlock) -> Result<Operand, IrError> {
    if text == "_" {
        return Ok(Operand::None);
    }
    if let Some(var) = text.strip_prefix('#') {
        if var.is_empty() {
            return Err(IrError::Parse {
                line,
                message: "empty variable name".into(),
            });
        }
        return Ok(Operand::Var(block.intern(var)));
    }
    if let Some(tref) = text.strip_prefix('@') {
        let k: u32 = tref.parse().map_err(|_| IrError::Parse {
            line,
            message: format!("invalid tuple reference `@{tref}`"),
        })?;
        if k == 0 {
            return Err(IrError::Parse {
                line,
                message: "tuple references are 1-based".into(),
            });
        }
        return Ok(Operand::Tuple(TupleId(k - 1)));
    }
    text.parse::<i64>()
        .map(Operand::Imm)
        .map_err(|_| IrError::Parse {
            line,
            message: format!("cannot parse operand `{text}`"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BlockBuilder;

    const FIG3: &str = "\
1: Const 15
2: Store #b, @1
3: Load #a
4: Mul @1, @3
5: Store #a, @4
";

    #[test]
    fn parses_figure3() {
        let bb = parse_block("fig3", FIG3).unwrap();
        assert_eq!(bb.len(), 5);
        assert_eq!(bb.tuple(TupleId(3)).op, Op::Mul);
        assert_eq!(bb.tuple(TupleId(0)).a, Operand::Imm(15));
    }

    #[test]
    fn round_trips_display() {
        let mut b = BlockBuilder::new("rt");
        let x = b.load("x");
        let y = b.load("y");
        let s = b.add(x, y);
        b.store("z", s);
        let bb = b.finish().unwrap();
        let text = bb.to_string();
        let back = parse_block("rt", &text).unwrap();
        assert_eq!(back.len(), bb.len());
        for (a, b) in back.tuples().iter().zip(bb.tuples()) {
            assert_eq!(a.op, b.op);
        }
        // And a second round trip is a fixpoint.
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "; header comment\n\n1: Const 1 ; trailing\n\n2: Store #x, @1\n";
        let bb = parse_block("c", text).unwrap();
        assert_eq!(bb.len(), 2);
    }

    #[test]
    fn rejects_out_of_sequence_ids() {
        let text = "1: Const 1\n3: Store #x, @1\n";
        assert!(matches!(
            parse_block("bad", text),
            Err(IrError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn rejects_unknown_op_and_bad_operand() {
        assert!(parse_block("bad", "1: Fnord 1\n").is_err());
        assert!(parse_block("bad", "1: Const %x\n").is_err());
        assert!(parse_block("bad", "1: Const @0\n").is_err());
        assert!(parse_block("bad", "1: Add 1, 2, 3\n").is_err());
    }

    #[test]
    fn rejects_forward_reference_via_verify() {
        let text = "1: Neg @2\n2: Const 1\n";
        assert!(parse_block("bad", text).is_err());
    }
}
