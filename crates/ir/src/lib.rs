#![warn(missing_docs)]

//! Tuple intermediate representation for the `pipesched` workspace.
//!
//! This crate implements the register-free intermediate form described in
//! section 3.1 of Nisar & Dietz, *Optimal Code Scheduling for
//! Multiple-Pipeline Processors* (Purdue TR-EE 90-11, 1990): each
//! instruction is a tuple `Γ(i, O, α, β)` where `i` is the tuple's
//! reference number, `O` the operation, and `α`/`β` operands that may name a
//! variable, refer to the result of an earlier tuple, be an immediate
//! constant, or be absent.
//!
//! Scheduling operates on one [`BasicBlock`] at a time. The block embeds a
//! DAG (the dependence structure); [`DepDag`] materializes that DAG together
//! with the `earliest`/`latest` slack bounds the scheduler's quick legality
//! check uses (paper definitions 6 and 7).
//!
//! The crate is deliberately free of any machine knowledge: pipelines,
//! latencies and enqueue times live in `pipesched-machine`.

pub mod analysis;
pub mod bitset;
pub mod block;
pub mod builder;
pub mod dag;
pub mod dot;
pub mod error;
pub mod op;
pub mod operand;
pub mod parse;
pub mod rewrite;
pub mod stats;
pub mod tuple;

pub use analysis::BlockAnalysis;
pub use bitset::BitSet;
pub use block::{BasicBlock, SymbolTable, VarId};
pub use builder::BlockBuilder;
pub use dag::{DepDag, DepEdge, DepKind};
pub use error::IrError;
pub use op::Op;
pub use operand::Operand;
pub use stats::BlockStats;
pub use tuple::{Tuple, TupleId};
