//! Ergonomic construction of basic blocks.

use crate::block::{BasicBlock, VarId};
use crate::op::Op;
use crate::operand::Operand;
use crate::tuple::TupleId;

/// A fluent builder over [`BasicBlock`] used by tests, examples and the
/// synthetic-benchmark generator.
///
/// ```
/// use pipesched_ir::BlockBuilder;
///
/// // b = 15; a = b * a;   (the paper's Figure 3)
/// let mut b = BlockBuilder::new("fig3");
/// let c = b.constant(15);
/// b.store("b", c);
/// let a = b.load("a");
/// let m = b.mul(c, a);
/// b.store("a", m);
/// let block = b.finish().unwrap();
/// assert_eq!(block.len(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct BlockBuilder {
    block: BasicBlock,
}

impl BlockBuilder {
    /// Start a new block with the given diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        BlockBuilder {
            block: BasicBlock::new(name),
        }
    }

    /// Emit `Const imm`.
    pub fn constant(&mut self, imm: i64) -> TupleId {
        self.block.push(Op::Const, Operand::Imm(imm), Operand::None)
    }

    /// Emit `Load #var`.
    pub fn load(&mut self, var: &str) -> TupleId {
        let v = self.block.intern(var);
        self.block.push(Op::Load, Operand::Var(v), Operand::None)
    }

    /// Emit `Store #var, value`.
    pub fn store(&mut self, var: &str, value: TupleId) -> TupleId {
        let v = self.block.intern(var);
        self.block
            .push(Op::Store, Operand::Var(v), Operand::Tuple(value))
    }

    /// Emit a binary arithmetic tuple.
    pub fn binary(&mut self, op: Op, a: TupleId, b: TupleId) -> TupleId {
        debug_assert_eq!(op.arity(), 2);
        self.block.push(op, Operand::Tuple(a), Operand::Tuple(b))
    }

    /// Emit `Add a, b`.
    pub fn add(&mut self, a: TupleId, b: TupleId) -> TupleId {
        self.binary(Op::Add, a, b)
    }

    /// Emit `Sub a, b`.
    pub fn sub(&mut self, a: TupleId, b: TupleId) -> TupleId {
        self.binary(Op::Sub, a, b)
    }

    /// Emit `Mul a, b`.
    pub fn mul(&mut self, a: TupleId, b: TupleId) -> TupleId {
        self.binary(Op::Mul, a, b)
    }

    /// Emit `Div a, b`.
    pub fn div(&mut self, a: TupleId, b: TupleId) -> TupleId {
        self.binary(Op::Div, a, b)
    }

    /// Emit `Neg a`.
    pub fn neg(&mut self, a: TupleId) -> TupleId {
        self.block.push(Op::Neg, Operand::Tuple(a), Operand::None)
    }

    /// Emit `Mov a` (a copy).
    pub fn mov(&mut self, a: TupleId) -> TupleId {
        self.block.push(Op::Mov, Operand::Tuple(a), Operand::None)
    }

    /// Intern a variable without emitting anything.
    pub fn var(&mut self, name: &str) -> VarId {
        self.block.intern(name)
    }

    /// Number of tuples emitted so far.
    pub fn len(&self) -> usize {
        self.block.len()
    }

    /// True if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.block.is_empty()
    }

    /// Finish and verify the block.
    pub fn finish(self) -> Result<BasicBlock, crate::error::IrError> {
        self.block.verify()?;
        Ok(self.block)
    }

    /// Finish without verification (for deliberately malformed test inputs).
    pub fn finish_unchecked(self) -> BasicBlock {
        self.block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_verified_blocks() {
        let mut b = BlockBuilder::new("t");
        let x = b.load("x");
        let y = b.load("y");
        let s = b.add(x, y);
        let n = b.neg(s);
        b.store("z", n);
        let block = b.finish().unwrap();
        assert_eq!(block.len(), 5);
        assert_eq!(block.tuple(TupleId(2)).op, Op::Add);
    }

    #[test]
    fn all_binary_helpers() {
        let mut b = BlockBuilder::new("t");
        let x = b.load("x");
        let y = b.load("y");
        let a = b.add(x, y);
        let s = b.sub(a, x);
        let m = b.mul(s, y);
        let d = b.div(m, a);
        let v = b.mov(d);
        b.store("r", v);
        let block = b.finish().unwrap();
        assert_eq!(block.len(), 8);
    }
}
