//! Dependence analyses: transitive closure, `earliest`/`latest` bounds,
//! heights, and schedule legality checking.

use crate::bitset::BitSet;
use crate::block::BasicBlock;
use crate::dag::DepDag;
use crate::error::IrError;
use crate::tuple::TupleId;

/// Precomputed per-block analysis results used by the schedulers.
///
/// * `earliest(ζ)` (paper def. 6) — the minimum number of instructions that
///   must execute before `ζ`: the size of `ζ`'s ancestor set.
/// * `latest(ζ)` (paper def. 7) — the maximum number of instructions that
///   could execute before `ζ`: `|Π| - 1 - |descendants(ζ)|`.
/// * `height(ζ)` — the number of instructions on the longest dependence
///   chain strictly below `ζ` (0 for sinks). This is the machine-independent
///   priority the list scheduler uses (§3.2: keep producers as far from
///   their consumers as possible).
#[derive(Debug, Clone)]
pub struct BlockAnalysis {
    n: usize,
    ancestors: Vec<BitSet>,
    descendants: Vec<BitSet>,
    earliest: Vec<u32>,
    latest: Vec<u32>,
    height: Vec<u32>,
    depth: Vec<u32>,
}

impl BlockAnalysis {
    /// Compute all analyses for `dag`.
    ///
    /// Tuples appear in program order, and all edges point forward, so a
    /// single left-to-right pass computes ancestor closures and a
    /// right-to-left pass computes descendant closures.
    pub fn compute(dag: &DepDag) -> Self {
        let n = dag.len();
        let mut ancestors: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for i in 0..n {
            let mut acc = BitSet::new(n);
            for e in dag.preds(TupleId(i as u32)) {
                acc.insert(e.from.index());
                acc.union_with(&ancestors[e.from.index()]);
            }
            ancestors[i] = acc;
        }
        let mut descendants: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for i in (0..n).rev() {
            let mut acc = BitSet::new(n);
            for e in dag.succs(TupleId(i as u32)) {
                acc.insert(e.to.index());
                acc.union_with(&descendants[e.to.index()]);
            }
            descendants[i] = acc;
        }

        let earliest: Vec<u32> = ancestors.iter().map(|s| s.len() as u32).collect();
        let latest: Vec<u32> = descendants
            .iter()
            .map(|s| (n - 1 - s.len()) as u32)
            .collect();

        let mut height = vec![0u32; n];
        for i in (0..n).rev() {
            height[i] = dag
                .succs(TupleId(i as u32))
                .iter()
                .map(|e| height[e.to.index()] + 1)
                .max()
                .unwrap_or(0);
        }
        let mut depth = vec![0u32; n];
        for i in 0..n {
            depth[i] = dag
                .preds(TupleId(i as u32))
                .iter()
                .map(|e| depth[e.from.index()] + 1)
                .max()
                .unwrap_or(0);
        }

        BlockAnalysis {
            n,
            ancestors,
            descendants,
            earliest,
            latest,
            height,
            depth,
        }
    }

    /// Number of tuples analyzed.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the block was empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The paper's `earliest(ζ)`: 0-based minimum position at which `ζ` can
    /// be scheduled equals the number of its ancestors.
    pub fn earliest(&self, t: TupleId) -> u32 {
        self.earliest[t.index()]
    }

    /// The paper's `latest(ζ)`: 0-based maximum position at which `ζ` can be
    /// scheduled.
    pub fn latest(&self, t: TupleId) -> u32 {
        self.latest[t.index()]
    }

    /// Longest chain of dependents strictly below `t` (0 for sinks).
    pub fn height(&self, t: TupleId) -> u32 {
        self.height[t.index()]
    }

    /// Longest chain of producers strictly above `t` (0 for sources).
    pub fn depth(&self, t: TupleId) -> u32 {
        self.depth[t.index()]
    }

    /// True when `a` transitively depends on `b`.
    pub fn depends_on(&self, a: TupleId, b: TupleId) -> bool {
        self.ancestors[a.index()].contains(b.index())
    }

    /// True when neither tuple depends on the other.
    pub fn independent(&self, a: TupleId, b: TupleId) -> bool {
        !self.depends_on(a, b) && !self.depends_on(b, a)
    }

    /// All (transitive) ancestors of `t`.
    pub fn ancestors(&self, t: TupleId) -> &BitSet {
        &self.ancestors[t.index()]
    }

    /// All (transitive) descendants of `t`.
    pub fn descendants(&self, t: TupleId) -> &BitSet {
        &self.descendants[t.index()]
    }

    /// Length of the longest dependence chain in the block (in instructions).
    pub fn critical_path_len(&self) -> u32 {
        self.height
            .iter()
            .zip(&self.depth)
            .map(|(h, d)| h + d)
            .max()
            .map(|m| m + 1)
            .unwrap_or(0)
    }
}

/// Check that `schedule` is a legal topological order of `dag` and a
/// permutation of the block's tuples.
pub fn verify_schedule(
    block: &BasicBlock,
    dag: &DepDag,
    schedule: &[TupleId],
) -> Result<(), IrError> {
    let n = block.len();
    if schedule.len() != n {
        return Err(IrError::NotAPermutation);
    }
    let mut position = vec![usize::MAX; n];
    for (pos, &t) in schedule.iter().enumerate() {
        if t.index() >= n || position[t.index()] != usize::MAX {
            return Err(IrError::NotAPermutation);
        }
        position[t.index()] = pos;
    }
    for e in dag.edges() {
        if position[e.from.index()] >= position[e.to.index()] {
            return Err(IrError::DependenceViolation {
                producer: e.from,
                consumer: e.to,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BlockBuilder;

    fn fig3() -> (BasicBlock, DepDag) {
        let mut b = BlockBuilder::new("fig3");
        let c = b.constant(15);
        b.store("b", c);
        let a = b.load("a");
        let m = b.mul(c, a);
        b.store("a", m);
        let bb = b.finish().unwrap();
        let dag = DepDag::build(&bb);
        (bb, dag)
    }

    #[test]
    fn earliest_latest_match_paper_definitions() {
        let (_, dag) = fig3();
        let a = BlockAnalysis::compute(&dag);
        // Const (tuple 1): no ancestors, descendants {2,4,5}.
        assert_eq!(a.earliest(TupleId(0)), 0);
        assert_eq!(a.latest(TupleId(0)), 5 - 1 - 3);
        // Store a (tuple 5): ancestors {1,3,4}, no descendants.
        assert_eq!(a.earliest(TupleId(4)), 3);
        assert_eq!(a.latest(TupleId(4)), 4);
        // Load a (tuple 3): no ancestors; descendants {4,5}.
        assert_eq!(a.earliest(TupleId(2)), 0);
        assert_eq!(a.latest(TupleId(2)), 2);
    }

    #[test]
    fn heights_and_depths() {
        let (_, dag) = fig3();
        let a = BlockAnalysis::compute(&dag);
        // Chains: Const→Mul→Store(a) and Const→Store(b); Load→Mul→Store.
        assert_eq!(a.height(TupleId(0)), 2);
        assert_eq!(a.height(TupleId(2)), 2);
        assert_eq!(a.height(TupleId(4)), 0);
        assert_eq!(a.depth(TupleId(0)), 0);
        assert_eq!(a.depth(TupleId(4)), 2);
        assert_eq!(a.critical_path_len(), 3);
    }

    #[test]
    fn transitive_dependence_queries() {
        let (_, dag) = fig3();
        let a = BlockAnalysis::compute(&dag);
        assert!(
            a.depends_on(TupleId(4), TupleId(0)),
            "store a ← const transitively"
        );
        assert!(!a.depends_on(TupleId(0), TupleId(4)));
        assert!(a.independent(TupleId(1), TupleId(2)), "store b vs load a");
    }

    #[test]
    fn verify_schedule_accepts_program_order() {
        let (bb, dag) = fig3();
        let order: Vec<_> = bb.ids().collect();
        verify_schedule(&bb, &dag, &order).unwrap();
    }

    #[test]
    fn verify_schedule_rejects_violation() {
        let (bb, dag) = fig3();
        // Mul before Load a.
        let order = [0u32, 1, 3, 2, 4].map(TupleId);
        assert!(matches!(
            verify_schedule(&bb, &dag, &order),
            Err(IrError::DependenceViolation { .. })
        ));
    }

    #[test]
    fn verify_schedule_rejects_non_permutation() {
        let (bb, dag) = fig3();
        let order = [0u32, 0, 1, 2, 3].map(TupleId);
        assert!(matches!(
            verify_schedule(&bb, &dag, &order),
            Err(IrError::NotAPermutation)
        ));
        let short = [0u32, 1].map(TupleId);
        assert!(verify_schedule(&bb, &dag, &short).is_err());
    }

    #[test]
    fn empty_block_analysis() {
        let bb = BasicBlock::new("empty");
        let dag = DepDag::build(&bb);
        let a = BlockAnalysis::compute(&dag);
        assert!(a.is_empty());
        assert_eq!(a.critical_path_len(), 0);
    }
}
