//! Operation types carried by tuples.

use std::fmt;
use std::str::FromStr;

use crate::error::IrError;

/// The operation performed by a tuple.
///
/// The set mirrors the paper's examples (Figure 3 and Tables 3/5/6):
/// `Const`, `Load`, `Store` plus the four arithmetic operations. `Neg` and
/// `Mov` are used by the front end (unary minus, copy propagation targets);
/// `Nop` appears only in *emitted* padded programs, never inside a basic
/// block handed to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Op {
    /// Materialize an immediate constant (`α` is [`crate::Operand::Imm`]).
    Const,
    /// Load a variable from memory (`α` is a variable).
    Load,
    /// Store a value to a variable (`α` is the variable, `β` the value).
    Store,
    /// Two's-complement addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer; division by zero is a front-end error).
    Div,
    /// Unary negation.
    Neg,
    /// Register-to-register copy.
    Mov,
    /// Null operation; only valid in padded output programs.
    Nop,
}

impl Op {
    /// All operations a basic block may contain (everything except `Nop`).
    pub const BLOCK_OPS: [Op; 9] = [
        Op::Const,
        Op::Load,
        Op::Store,
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::Div,
        Op::Neg,
        Op::Mov,
    ];

    /// Number of operands the operation consumes (0, 1 or 2).
    pub fn arity(self) -> usize {
        match self {
            Op::Nop => 0,
            Op::Const | Op::Load => 1,
            Op::Neg | Op::Mov => 1,
            Op::Store => 2,
            Op::Add | Op::Sub | Op::Mul | Op::Div => 2,
        }
    }

    /// True for operations whose operand order does not matter.
    pub fn is_commutative(self) -> bool {
        matches!(self, Op::Add | Op::Mul)
    }

    /// True if the tuple produces a value other tuples may reference.
    pub fn produces_value(self) -> bool {
        !matches!(self, Op::Store | Op::Nop)
    }

    /// True if the operation touches memory (loads and stores).
    pub fn touches_memory(self) -> bool {
        matches!(self, Op::Load | Op::Store)
    }

    /// True if the operation has a side effect that makes it a DAG root
    /// (cannot be dead-code eliminated).
    pub fn has_side_effect(self) -> bool {
        matches!(self, Op::Store)
    }

    /// Assembly-style mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::Const => "Const",
            Op::Load => "Load",
            Op::Store => "Store",
            Op::Add => "Add",
            Op::Sub => "Sub",
            Op::Mul => "Mul",
            Op::Div => "Div",
            Op::Neg => "Neg",
            Op::Mov => "Mov",
            Op::Nop => "Nop",
        }
    }

    /// Apply the operation to constant inputs (used by constant folding).
    ///
    /// Returns `None` when the operation is not a pure arithmetic op or the
    /// evaluation is undefined (overflow, division by zero).
    pub fn fold(self, a: i64, b: i64) -> Option<i64> {
        match self {
            Op::Add => a.checked_add(b),
            Op::Sub => a.checked_sub(b),
            Op::Mul => a.checked_mul(b),
            Op::Div => {
                if b == 0 {
                    None
                } else {
                    a.checked_div(b)
                }
            }
            _ => None,
        }
    }

    /// Apply a unary operation to a constant input.
    pub fn fold_unary(self, a: i64) -> Option<i64> {
        match self {
            Op::Neg => a.checked_neg(),
            Op::Mov => Some(a),
            _ => None,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl FromStr for Op {
    type Err = IrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "Const" | "const" | "CONST" => Ok(Op::Const),
            "Load" | "load" | "LOAD" => Ok(Op::Load),
            "Store" | "store" | "STORE" => Ok(Op::Store),
            "Add" | "add" | "ADD" => Ok(Op::Add),
            "Sub" | "sub" | "SUB" => Ok(Op::Sub),
            "Mul" | "mul" | "MUL" => Ok(Op::Mul),
            "Div" | "div" | "DIV" => Ok(Op::Div),
            "Neg" | "neg" | "NEG" => Ok(Op::Neg),
            "Mov" | "mov" | "MOV" => Ok(Op::Mov),
            "Nop" | "nop" | "NOP" => Ok(Op::Nop),
            other => Err(IrError::UnknownOp(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_operand_count() {
        assert_eq!(Op::Const.arity(), 1);
        assert_eq!(Op::Load.arity(), 1);
        assert_eq!(Op::Store.arity(), 2);
        assert_eq!(Op::Add.arity(), 2);
        assert_eq!(Op::Neg.arity(), 1);
        assert_eq!(Op::Nop.arity(), 0);
    }

    #[test]
    fn commutativity() {
        assert!(Op::Add.is_commutative());
        assert!(Op::Mul.is_commutative());
        assert!(!Op::Sub.is_commutative());
        assert!(!Op::Div.is_commutative());
        assert!(!Op::Store.is_commutative());
    }

    #[test]
    fn store_has_side_effect_and_no_value() {
        assert!(Op::Store.has_side_effect());
        assert!(!Op::Store.produces_value());
        assert!(Op::Load.produces_value());
    }

    #[test]
    fn fold_arithmetic() {
        assert_eq!(Op::Add.fold(2, 3), Some(5));
        assert_eq!(Op::Sub.fold(2, 3), Some(-1));
        assert_eq!(Op::Mul.fold(4, 5), Some(20));
        assert_eq!(Op::Div.fold(10, 2), Some(5));
        assert_eq!(Op::Div.fold(10, 0), None);
        assert_eq!(Op::Add.fold(i64::MAX, 1), None);
        assert_eq!(Op::Load.fold(1, 2), None);
    }

    #[test]
    fn fold_unary_ops() {
        assert_eq!(Op::Neg.fold_unary(5), Some(-5));
        assert_eq!(Op::Mov.fold_unary(7), Some(7));
        assert_eq!(Op::Neg.fold_unary(i64::MIN), None);
        assert_eq!(Op::Add.fold_unary(1), None);
    }

    #[test]
    fn parse_round_trip() {
        for op in Op::BLOCK_OPS {
            let text = op.to_string();
            let back: Op = text.parse().unwrap();
            assert_eq!(back, op);
        }
        assert!("Frobnicate".parse::<Op>().is_err());
    }
}
