//! Error type shared by IR construction, parsing and verification.

use std::fmt;

use crate::tuple::TupleId;

/// Errors produced while building, parsing or verifying IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// An operation mnemonic that is not part of the instruction set.
    UnknownOp(String),
    /// A tuple operand references a tuple at or after its own position
    /// (tuple references must point strictly backwards, which is what makes
    /// the block a DAG by construction).
    ForwardReference {
        /// The referring tuple.
        tuple: TupleId,
        /// The (illegal) referenced tuple.
        target: TupleId,
    },
    /// A tuple operand references a tuple that does not produce a value
    /// (e.g. the result of a `Store`).
    ValuelessReference {
        /// The referring tuple.
        tuple: TupleId,
        /// The referenced tuple.
        target: TupleId,
    },
    /// Operand count or kind is invalid for the operation.
    BadOperands {
        /// The offending tuple.
        tuple: TupleId,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// Text-format parse error.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A schedule handed to a verifier is not a permutation of the block.
    NotAPermutation,
    /// A schedule violates a dependence (consumer placed before producer).
    DependenceViolation {
        /// The producing tuple.
        producer: TupleId,
        /// The consuming tuple scheduled too early.
        consumer: TupleId,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownOp(s) => write!(f, "unknown operation `{s}`"),
            IrError::ForwardReference { tuple, target } => {
                write!(
                    f,
                    "tuple {tuple} references tuple {target}, which is not earlier"
                )
            }
            IrError::ValuelessReference { tuple, target } => {
                write!(
                    f,
                    "tuple {tuple} references tuple {target}, which produces no value"
                )
            }
            IrError::BadOperands { tuple, reason } => {
                write!(f, "tuple {tuple} has invalid operands: {reason}")
            }
            IrError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IrError::NotAPermutation => {
                write!(f, "schedule is not a permutation of the block's tuples")
            }
            IrError::DependenceViolation { producer, consumer } => {
                write!(
                    f,
                    "schedule places consumer {consumer} before producer {producer}"
                )
            }
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = IrError::ForwardReference {
            tuple: TupleId(0),
            target: TupleId(4),
        };
        let msg = e.to_string();
        assert!(msg.contains('1') && msg.contains('5'), "{msg}");
    }
}
