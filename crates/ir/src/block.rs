//! Basic blocks and variable interning.

use std::collections::HashMap;
use std::fmt;

use crate::error::IrError;
use crate::op::Op;
use crate::operand::Operand;
use crate::tuple::{Tuple, TupleId};

/// Interned index of a program variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Bidirectional interning table for variable names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, VarId>,
}

impl SymbolTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = VarId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Look up a previously interned name.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.index.get(name).copied()
    }

    /// The name for `id`, if it exists.
    pub fn name(&self, id: VarId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no variables have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Rebuild the name→id map (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), VarId(i as u32)))
            .collect();
    }
}

/// A straight-line sequence of tuples: the unit of scheduling.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BasicBlock {
    /// Optional label for diagnostics.
    pub name: String,
    tuples: Vec<Tuple>,
    symbols: SymbolTable,
}

impl BasicBlock {
    /// Create an empty block.
    pub fn new(name: impl Into<String>) -> Self {
        BasicBlock {
            name: name.into(),
            tuples: Vec::new(),
            symbols: SymbolTable::new(),
        }
    }

    /// Append a tuple with the given op and operands; returns its id.
    pub fn push(&mut self, op: Op, a: Operand, b: Operand) -> TupleId {
        let id = TupleId(self.tuples.len() as u32);
        self.tuples.push(Tuple::new(id, op, a, b));
        id
    }

    /// Intern a variable name in the block's symbol table.
    pub fn intern(&mut self, name: &str) -> VarId {
        self.symbols.intern(name)
    }

    /// The block's tuples in program order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The tuple with the given id.
    pub fn tuple(&self, id: TupleId) -> &Tuple {
        &self.tuples[id.index()]
    }

    /// Number of tuples in the block.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the block has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The block's symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Mutable access to the symbol table.
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// Iterate over tuple ids in program order.
    pub fn ids(&self) -> impl Iterator<Item = TupleId> + '_ {
        (0..self.tuples.len() as u32).map(TupleId)
    }

    /// Replace the block's tuples wholesale (used by rewriting passes).
    ///
    /// The caller is responsible for id consistency; [`BasicBlock::verify`]
    /// checks it.
    pub fn replace_tuples(&mut self, tuples: Vec<Tuple>) {
        self.tuples = tuples;
    }

    /// Structural validity check: ids are sequential, operand arity matches
    /// each op, tuple references point strictly backwards and only at
    /// value-producing tuples, and no `Nop` appears.
    pub fn verify(&self) -> Result<(), IrError> {
        for (i, t) in self.tuples.iter().enumerate() {
            if t.id.index() != i {
                return Err(IrError::BadOperands {
                    tuple: t.id,
                    reason: format!("tuple id {} does not match position {}", t.id, i + 1),
                });
            }
            if t.op == Op::Nop {
                return Err(IrError::BadOperands {
                    tuple: t.id,
                    reason: "Nop is not a schedulable block instruction".into(),
                });
            }
            let present = [&t.a, &t.b].iter().filter(|o| !o.is_none()).count();
            if present != t.op.arity() {
                return Err(IrError::BadOperands {
                    tuple: t.id,
                    reason: format!(
                        "{} takes {} operand(s), found {}",
                        t.op,
                        t.op.arity(),
                        present
                    ),
                });
            }
            for target in t.tuple_refs() {
                if target.index() >= i {
                    return Err(IrError::ForwardReference {
                        tuple: t.id,
                        target,
                    });
                }
                if !self.tuples[target.index()].op.produces_value() {
                    return Err(IrError::ValuelessReference {
                        tuple: t.id,
                        target,
                    });
                }
            }
            match t.op {
                Op::Const if t.a.as_imm().is_none() => {
                    return Err(IrError::BadOperands {
                        tuple: t.id,
                        reason: "Const requires an immediate operand".into(),
                    });
                }
                Op::Load if t.a.as_var().is_none() => {
                    return Err(IrError::BadOperands {
                        tuple: t.id,
                        reason: "Load requires a variable operand".into(),
                    });
                }
                Op::Store if t.a.as_var().is_none() => {
                    return Err(IrError::BadOperands {
                        tuple: t.id,
                        reason: "Store requires a variable first operand".into(),
                    });
                }
                _ => {}
            }
        }
        Ok(())
    }
}

impl fmt::Display for BasicBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tuples {
            // Render variable operands with their names where known.
            write!(f, "{}: {}", t.id, t.op)?;
            let mut first = true;
            for o in [t.a, t.b] {
                if o.is_none() {
                    continue;
                }
                let sep = if first { " " } else { ", " };
                first = false;
                match o {
                    Operand::Var(v) => match self.symbols.name(v) {
                        Some(name) => write!(f, "{sep}#{name}")?,
                        None => write!(f, "{sep}#v{}", v.0)?,
                    },
                    other => write!(f, "{sep}{other}")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the paper's Figure 3 block: `b = 15; a = b * a;`
    pub(crate) fn figure3_block() -> BasicBlock {
        let mut bb = BasicBlock::new("fig3");
        let a = bb.intern("a");
        let b = bb.intern("b");
        let c15 = bb.push(Op::Const, Operand::Imm(15), Operand::None);
        bb.push(Op::Store, Operand::Var(b), Operand::Tuple(c15));
        let la = bb.push(Op::Load, Operand::Var(a), Operand::None);
        let mul = bb.push(Op::Mul, Operand::Tuple(c15), Operand::Tuple(la));
        bb.push(Op::Store, Operand::Var(a), Operand::Tuple(mul));
        bb
    }

    #[test]
    fn figure3_verifies_and_prints() {
        let bb = figure3_block();
        bb.verify().unwrap();
        let text = bb.to_string();
        assert!(text.contains("1: Const 15"), "{text}");
        assert!(text.contains("2: Store #b, @1"), "{text}");
        assert!(text.contains("4: Mul @1, @3"), "{text}");
    }

    #[test]
    fn symbol_table_interns_stably() {
        let mut st = SymbolTable::new();
        let a1 = st.intern("alpha");
        let b = st.intern("beta");
        let a2 = st.intern("alpha");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(st.name(a1), Some("alpha"));
        assert_eq!(st.lookup("beta"), Some(b));
        assert_eq!(st.len(), 2);
    }

    #[test]
    fn verify_rejects_forward_reference() {
        let mut bb = BasicBlock::new("bad");
        // Tuple 1 references tuple 2 (forward).
        bb.replace_tuples(vec![
            Tuple {
                id: TupleId(0),
                op: Op::Neg,
                a: Operand::Tuple(TupleId(1)),
                b: Operand::None,
            },
            Tuple {
                id: TupleId(1),
                op: Op::Const,
                a: Operand::Imm(1),
                b: Operand::None,
            },
        ]);
        assert!(matches!(bb.verify(), Err(IrError::ForwardReference { .. })));
    }

    #[test]
    fn verify_rejects_reference_to_store_result() {
        let mut bb = BasicBlock::new("bad");
        let v = bb.intern("x");
        let c = bb.push(Op::Const, Operand::Imm(1), Operand::None);
        let s = bb.push(Op::Store, Operand::Var(v), Operand::Tuple(c));
        bb.push(Op::Neg, Operand::Tuple(s), Operand::None);
        assert!(matches!(
            bb.verify(),
            Err(IrError::ValuelessReference { .. })
        ));
    }

    #[test]
    fn verify_rejects_wrong_arity() {
        let mut bb = BasicBlock::new("bad");
        bb.replace_tuples(vec![Tuple {
            id: TupleId(0),
            op: Op::Add,
            a: Operand::Imm(1),
            b: Operand::None,
        }]);
        assert!(matches!(bb.verify(), Err(IrError::BadOperands { .. })));
    }

    #[test]
    fn verify_rejects_const_without_imm() {
        let mut bb = BasicBlock::new("bad");
        let v = bb.intern("x");
        bb.replace_tuples(vec![Tuple {
            id: TupleId(0),
            op: Op::Const,
            a: Operand::Var(v),
            b: Operand::None,
        }]);
        assert!(bb.verify().is_err());
    }
}
