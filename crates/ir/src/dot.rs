//! Graphviz DOT export of dependence DAGs, for documentation and debugging.

use std::fmt::Write as _;

use crate::block::BasicBlock;
use crate::dag::{DepDag, DepKind};

/// Render `dag` (with labels from `block`) as a Graphviz `digraph`.
///
/// Flow edges are solid, anti edges dashed, output edges dotted.
pub fn to_dot(block: &BasicBlock, dag: &DepDag) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(&block.name));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for t in block.tuples() {
        let label = format!("{t}");
        let _ = writeln!(out, "  n{} [label=\"{}\"];", t.id.0, escape(&label));
    }
    for e in dag.edges() {
        let style = match e.kind {
            DepKind::Flow => "solid",
            DepKind::Anti => "dashed",
            DepKind::Output => "dotted",
        };
        let _ = writeln!(out, "  n{} -> n{} [style={}];", e.from.0, e.to.0, style);
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BlockBuilder;

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let mut b = BlockBuilder::new("dot");
        let x = b.load("x");
        let y = b.load("y");
        let s = b.add(x, y);
        b.store("z", s);
        let bb = b.finish().unwrap();
        let dag = DepDag::build(&bb);
        let dot = to_dot(&bb, &dag);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 -> n2 [style=solid]"), "{dot}");
        assert!(dot.contains("n1 -> n2"), "{dot}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn names_are_escaped() {
        let bb = BasicBlock::new("we \"quote\"");
        let dag = DepDag::build(&bb);
        let dot = to_dot(&bb, &dag);
        assert!(dot.contains("we \\\"quote\\\""));
    }

    use crate::block::BasicBlock;
}
