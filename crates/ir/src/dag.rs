//! The dependence DAG embedded in a basic block.
//!
//! Paper definition 2: `ρ(ζ)` is the set of immediate predecessors of `ζ` in
//! the DAG. Two sources of edges exist:
//!
//! * **value (flow) dependences** — a tuple operand references the result of
//!   an earlier tuple;
//! * **variable (memory) dependences** — loads and stores of the same
//!   variable must keep their relative order. A `Load` depends on the most
//!   recent preceding `Store` of the same variable (memory flow); a `Store`
//!   depends on the most recent preceding `Store` (output) and on every
//!   `Load` of the variable since that store (anti).
//!
//! The paper's synthetic workloads assume variable names are unambiguous and
//! mutually exclusive (§3.1), so no aliasing analysis is needed here.

use crate::block::BasicBlock;
use crate::op::Op;
use crate::tuple::TupleId;

/// The kind of a dependence edge, which determines the delay it induces.
///
/// A *flow* dependence makes the consumer wait for the producer's pipeline
/// **latency** (the value must exist). *Anti* and *output* dependences only
/// constrain issue order: the later instruction must issue at least one
/// cycle after the earlier one. This distinction matters because applying
/// full latency to anti edges would overconstrain schedules the paper's
/// model permits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// True (value or memory) flow dependence: consumer reads producer's result.
    Flow,
    /// Write-after-read on the same variable.
    Anti,
    /// Write-after-write on the same variable.
    Output,
}

/// One dependence edge `from → to` (`to` depends on `from`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DepEdge {
    /// The producing (earlier) tuple.
    pub from: TupleId,
    /// The consuming (later) tuple.
    pub to: TupleId,
    /// Edge kind.
    pub kind: DepKind,
}

/// Materialized dependence DAG for one basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepDag {
    n: usize,
    /// `preds[i]` = immediate predecessors of tuple `i` (the paper's ρ).
    preds: Vec<Vec<DepEdge>>,
    /// `succs[i]` = immediate successors of tuple `i`.
    succs: Vec<Vec<DepEdge>>,
}

impl DepDag {
    /// Build the DAG for `block`.
    pub fn build(block: &BasicBlock) -> Self {
        let n = block.len();
        let mut preds: Vec<Vec<DepEdge>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<DepEdge>> = vec![Vec::new(); n];

        let add = |preds: &mut Vec<Vec<DepEdge>>,
                   succs: &mut Vec<Vec<DepEdge>>,
                   from: TupleId,
                   to: TupleId,
                   kind: DepKind| {
            debug_assert!(from.index() < to.index(), "edges must point forward");
            // Avoid duplicate edges with the same endpoints: keep the
            // strongest kind (Flow > Output > Anti) since Flow subsumes the
            // ordering constraint the others impose.
            if let Some(existing) = preds[to.index()].iter_mut().find(|e| e.from == from) {
                if rank(kind) > rank(existing.kind) {
                    existing.kind = kind;
                    let e2 = succs[from.index()]
                        .iter_mut()
                        .find(|e| e.to == to)
                        .expect("succ mirror exists");
                    e2.kind = kind;
                }
                return;
            }
            let edge = DepEdge { from, to, kind };
            preds[to.index()].push(edge);
            succs[from.index()].push(edge);
        };

        // Value flow dependences from tuple-reference operands.
        for t in block.tuples() {
            for target in t.tuple_refs() {
                add(&mut preds, &mut succs, target, t.id, DepKind::Flow);
            }
        }

        // Variable dependences: track, per variable, the last store and the
        // loads issued since that store.
        let nvars = block.symbols().len();
        let mut last_store: Vec<Option<TupleId>> = vec![None; nvars];
        let mut loads_since_store: Vec<Vec<TupleId>> = vec![Vec::new(); nvars];
        for t in block.tuples() {
            match t.op {
                Op::Load => {
                    let v = t.a.as_var().expect("verified block").0 as usize;
                    if let Some(s) = last_store[v] {
                        add(&mut preds, &mut succs, s, t.id, DepKind::Flow);
                    }
                    loads_since_store[v].push(t.id);
                }
                Op::Store => {
                    let v = t.a.as_var().expect("verified block").0 as usize;
                    if let Some(s) = last_store[v] {
                        add(&mut preds, &mut succs, s, t.id, DepKind::Output);
                    }
                    for &l in &loads_since_store[v] {
                        add(&mut preds, &mut succs, l, t.id, DepKind::Anti);
                    }
                    loads_since_store[v].clear();
                    last_store[v] = Some(t.id);
                }
                _ => {}
            }
        }

        DepDag { n, preds, succs }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for an empty DAG.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Immediate predecessors (ρ) of `t`.
    pub fn preds(&self, t: TupleId) -> &[DepEdge] {
        &self.preds[t.index()]
    }

    /// Immediate successors of `t`.
    pub fn succs(&self, t: TupleId) -> &[DepEdge] {
        &self.succs[t.index()]
    }

    /// True when `t` has no predecessors (a DAG source).
    pub fn is_source(&self, t: TupleId) -> bool {
        self.preds[t.index()].is_empty()
    }

    /// True when `t` has no successors (a DAG sink).
    pub fn is_sink(&self, t: TupleId) -> bool {
        self.succs[t.index()].is_empty()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.preds.iter().map(Vec::len).sum()
    }

    /// Iterate over all edges.
    pub fn edges(&self) -> impl Iterator<Item = DepEdge> + '_ {
        self.preds.iter().flatten().copied()
    }
}

fn rank(kind: DepKind) -> u8 {
    match kind {
        DepKind::Flow => 2,
        DepKind::Output => 1,
        DepKind::Anti => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BlockBuilder;

    fn fig3() -> BasicBlock {
        let mut b = BlockBuilder::new("fig3");
        let c = b.constant(15);
        b.store("b", c);
        let a = b.load("a");
        let m = b.mul(c, a);
        b.store("a", m);
        b.finish().unwrap()
    }

    #[test]
    fn figure3_dependences() {
        let bb = fig3();
        let dag = DepDag::build(&bb);
        // Tuple 2 (Store b) depends on tuple 1 (Const).
        assert!(dag
            .preds(TupleId(1))
            .iter()
            .any(|e| e.from == TupleId(0) && e.kind == DepKind::Flow));
        // Tuple 4 (Mul) depends on tuples 1 and 3.
        let mul_preds: Vec<_> = dag.preds(TupleId(3)).iter().map(|e| e.from).collect();
        assert!(mul_preds.contains(&TupleId(0)));
        assert!(mul_preds.contains(&TupleId(2)));
        // Tuple 5 (Store a) depends on Mul (flow) and on Load a (anti).
        let store_preds = dag.preds(TupleId(4));
        assert!(store_preds
            .iter()
            .any(|e| e.from == TupleId(3) && e.kind == DepKind::Flow));
        assert!(store_preds
            .iter()
            .any(|e| e.from == TupleId(2) && e.kind == DepKind::Anti));
        assert!(dag.is_source(TupleId(0)));
        assert!(dag.is_sink(TupleId(4)));
    }

    #[test]
    fn load_after_store_is_memory_flow() {
        let mut b = BlockBuilder::new("las");
        let c = b.constant(1);
        b.store("x", c);
        b.load("x");
        let bb = b.finish().unwrap();
        let dag = DepDag::build(&bb);
        assert!(dag
            .preds(TupleId(2))
            .iter()
            .any(|e| e.from == TupleId(1) && e.kind == DepKind::Flow));
    }

    #[test]
    fn store_after_store_is_output() {
        let mut b = BlockBuilder::new("sas");
        let c1 = b.constant(1);
        b.store("x", c1);
        let c2 = b.constant(2);
        b.store("x", c2);
        let bb = b.finish().unwrap();
        let dag = DepDag::build(&bb);
        assert!(dag
            .preds(TupleId(3))
            .iter()
            .any(|e| e.from == TupleId(1) && e.kind == DepKind::Output));
    }

    #[test]
    fn independent_loads_have_no_edges() {
        let mut b = BlockBuilder::new("ind");
        b.load("x");
        b.load("y");
        let bb = b.finish().unwrap();
        let dag = DepDag::build(&bb);
        assert_eq!(dag.edge_count(), 0);
        assert!(dag.is_source(TupleId(1)));
    }

    #[test]
    fn duplicate_edges_keep_strongest_kind() {
        // Store x, then Load x, then Store x again: the second store has an
        // anti edge from the load and an output edge from the first store.
        // Additionally give the second store the load's value so a Flow edge
        // coincides with the Anti edge — Flow must win.
        let mut b = BlockBuilder::new("dup");
        let c = b.constant(1);
        b.store("x", c);
        let l = b.load("x");
        b.store("x", l);
        let bb = b.finish().unwrap();
        let dag = DepDag::build(&bb);
        let edges: Vec<_> = dag.preds(TupleId(3)).to_vec();
        let from_load: Vec<_> = edges.iter().filter(|e| e.from == TupleId(2)).collect();
        assert_eq!(from_load.len(), 1, "no duplicate edges: {edges:?}");
        assert_eq!(from_load[0].kind, DepKind::Flow);
    }

    #[test]
    fn edge_count_and_iteration_agree() {
        let bb = fig3();
        let dag = DepDag::build(&bb);
        assert_eq!(dag.edges().count(), dag.edge_count());
    }
}
