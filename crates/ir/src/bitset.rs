//! A small fixed-capacity bit set used for transitive-closure computations.
//!
//! Blocks routinely exceed 64 instructions in the worst-case experiments, so
//! a single machine word is not enough; an external bitset crate is not on
//! the approved dependency list, and this ~100-line implementation covers
//! everything the analyses need (set, test, union-in-place, count, iterate).

/// A fixed-capacity set of small integers backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Create an empty set able to hold values `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity the set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Insert `bit`. Returns true if it was newly inserted.
    pub fn insert(&mut self, bit: usize) -> bool {
        assert!(
            bit < self.capacity,
            "bit {bit} out of range {}",
            self.capacity
        );
        let word = &mut self.words[bit / 64];
        let mask = 1u64 << (bit % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Remove `bit`. Returns true if it was present.
    pub fn remove(&mut self, bit: usize) -> bool {
        assert!(bit < self.capacity);
        let word = &mut self.words[bit / 64];
        let mask = 1u64 << (bit % 64);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// Test membership.
    pub fn contains(&self, bit: usize) -> bool {
        bit < self.capacity && self.words[bit / 64] & (1u64 << (bit % 64)) != 0
    }

    /// In-place union with another set of the same capacity.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// True when `self` and `other` share no elements.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// True when every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterate over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0), "second insert reports already-present");
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_and_subset() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(3);
        a.insert(99);
        b.insert(99);
        assert!(b.is_subset(&a));
        assert!(!a.is_subset(&b));
        b.union_with(&a);
        assert!(a.is_subset(&b));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn disjoint() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(1);
        b.insert(65);
        assert!(a.is_disjoint(&b));
        b.insert(1);
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn iter_ascending_across_words() {
        let mut s = BitSet::new(200);
        for bit in [5, 63, 64, 128, 199] {
            s.insert(bit);
        }
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![5, 63, 64, 128, 199]);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::new(10);
        s.insert(7);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_insert_panics() {
        let mut s = BitSet::new(8);
        s.insert(8);
    }
}
