//! Structural statistics of a basic block and its DAG — the quantities
//! §2.3 says drive search difficulty ("the total number of legal schedules
//! ... derives primarily from the dependence and conflict properties of
//! instructions within the block rather than from the block size").

use std::collections::BTreeMap;

use crate::analysis::BlockAnalysis;
use crate::block::BasicBlock;
use crate::dag::DepDag;
use crate::op::Op;
use crate::tuple::TupleId;

/// Summary statistics for one block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockStats {
    /// Instructions in the block.
    pub instructions: usize,
    /// Count per operation type.
    pub op_histogram: BTreeMap<Op, usize>,
    /// Dependence edges.
    pub edges: usize,
    /// Longest dependence chain, in instructions.
    pub critical_path: u32,
    /// Maximum number of simultaneously ready instructions over a greedy
    /// topological traversal — the DAG's effective width.
    pub max_width: usize,
    /// `instructions / critical_path`: an upper bound on achievable
    /// instruction-level parallelism.
    pub ilp_bound: f64,
}

impl BlockStats {
    /// Collect statistics for `block`.
    pub fn collect(block: &BasicBlock, dag: &DepDag) -> BlockStats {
        let analysis = BlockAnalysis::compute(dag);
        let n = block.len();
        let mut op_histogram: BTreeMap<Op, usize> = BTreeMap::new();
        for t in block.tuples() {
            *op_histogram.entry(t.op).or_insert(0) += 1;
        }

        // Width: sweep a topological order, tracking the ready set size.
        let mut pending: Vec<u32> = (0..n)
            .map(|i| dag.preds(TupleId(i as u32)).len() as u32)
            .collect();
        let mut ready: Vec<TupleId> = (0..n as u32)
            .map(TupleId)
            .filter(|t| pending[t.index()] == 0)
            .collect();
        let mut max_width = ready.len();
        while let Some(t) = ready.pop() {
            for e in dag.succs(t) {
                let c = &mut pending[e.to.index()];
                *c -= 1;
                if *c == 0 {
                    ready.push(e.to);
                }
            }
            max_width = max_width.max(ready.len());
        }

        let critical_path = analysis.critical_path_len();
        BlockStats {
            instructions: n,
            op_histogram,
            edges: dag.edge_count(),
            critical_path,
            max_width,
            ilp_bound: if critical_path == 0 {
                0.0
            } else {
                n as f64 / f64::from(critical_path)
            },
        }
    }
}

impl std::fmt::Display for BlockStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "instructions:   {}", self.instructions)?;
        writeln!(f, "edges:          {}", self.edges)?;
        writeln!(f, "critical path:  {}", self.critical_path)?;
        writeln!(f, "max width:      {}", self.max_width)?;
        writeln!(f, "ILP bound:      {:.2}", self.ilp_bound)?;
        let ops: Vec<String> = self
            .op_histogram
            .iter()
            .map(|(op, k)| format!("{op}×{k}"))
            .collect();
        writeln!(f, "operations:     {}", ops.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BlockBuilder;

    #[test]
    fn stats_for_a_diamond() {
        // x, y loads; add(x,y); mul(x,y); store both.
        let mut b = BlockBuilder::new("d");
        let x = b.load("x");
        let y = b.load("y");
        let s = b.add(x, y);
        let m = b.mul(x, y);
        b.store("s", s);
        b.store("m", m);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let st = BlockStats::collect(&block, &dag);
        assert_eq!(st.instructions, 6);
        assert_eq!(st.op_histogram[&Op::Load], 2);
        assert_eq!(st.op_histogram[&Op::Store], 2);
        assert_eq!(st.critical_path, 3); // load → add → store
        assert!(st.max_width >= 2);
        assert!((st.ilp_bound - 2.0).abs() < 1e-9);
        let text = st.to_string();
        assert!(text.contains("ILP bound"), "{text}");
    }

    #[test]
    fn serial_chain_has_width_one() {
        let mut b = BlockBuilder::new("serial");
        let x = b.load("x");
        let n1 = b.neg(x);
        let n2 = b.neg(n1);
        b.store("r", n2);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let st = BlockStats::collect(&block, &dag);
        assert_eq!(st.max_width, 1);
        assert_eq!(st.critical_path, 4);
        assert!((st.ilp_bound - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_block_stats() {
        let block = BlockBuilder::new("e").finish().unwrap();
        let dag = DepDag::build(&block);
        let st = BlockStats::collect(&block, &dag);
        assert_eq!(st.instructions, 0);
        assert_eq!(st.ilp_bound, 0.0);
        assert_eq!(st.max_width, 0);
    }
}
