//! Block rewriting utilities shared by the optimizer passes.
//!
//! Passes express their work as either (a) a *value substitution* that
//! redirects uses of one tuple's result to another tuple, or (b) a *removal
//! set* of dead tuples. `apply` renumbers the surviving tuples, fixes every
//! tuple reference, and returns the compacted block.

use crate::block::BasicBlock;
use crate::operand::Operand;
use crate::tuple::{Tuple, TupleId};

/// An in-progress rewrite of one basic block.
#[derive(Debug, Clone)]
pub struct Rewriter {
    /// `replace[i] = Some(j)` redirects all uses of tuple `i` to tuple `j`.
    replace: Vec<Option<TupleId>>,
    /// `remove[i]` marks tuple `i` for deletion.
    remove: Vec<bool>,
}

impl Rewriter {
    /// Start a rewrite of a block with `n` tuples.
    pub fn new(n: usize) -> Self {
        Rewriter {
            replace: vec![None; n],
            remove: vec![false; n],
        }
    }

    /// Redirect every use of `from`'s result to `to`'s result.
    ///
    /// Chains are resolved at application time, so `a→b` plus `b→c` works.
    pub fn redirect(&mut self, from: TupleId, to: TupleId) {
        debug_assert_ne!(from, to);
        self.replace[from.index()] = Some(to);
    }

    /// Mark `t` for removal.
    pub fn remove(&mut self, t: TupleId) {
        self.remove[t.index()] = true;
    }

    /// True if any change is pending.
    pub fn has_changes(&self) -> bool {
        self.remove.iter().any(|&r| r) || self.replace.iter().any(Option::is_some)
    }

    /// Resolve a redirect chain to its final target.
    fn resolve(&self, mut t: TupleId) -> TupleId {
        let mut hops = 0;
        while let Some(next) = self.replace[t.index()] {
            t = next;
            hops += 1;
            assert!(hops <= self.replace.len(), "redirect cycle");
        }
        t
    }

    /// Apply the rewrite, producing a compacted, renumbered block.
    ///
    /// Panics if a kept tuple references a removed tuple that has no
    /// redirect target — that would be a bug in the calling pass.
    pub fn apply(self, block: &BasicBlock) -> BasicBlock {
        let n = block.len();
        // New index of each surviving tuple.
        let mut new_index = vec![u32::MAX; n];
        let mut next = 0u32;
        for (i, &removed) in self.remove.iter().enumerate() {
            if !removed {
                new_index[i] = next;
                next += 1;
            }
        }

        let map_operand = |o: Operand| -> Operand {
            match o {
                Operand::Tuple(t) => {
                    let target = self.resolve(t);
                    let ni = new_index[target.index()];
                    assert!(
                        ni != u32::MAX,
                        "kept tuple references removed tuple {} with no redirect",
                        target
                    );
                    Operand::Tuple(TupleId(ni))
                }
                other => other,
            }
        };

        let mut tuples = Vec::with_capacity(next as usize);
        for t in block.tuples() {
            if self.remove[t.id.index()] {
                continue;
            }
            tuples.push(Tuple {
                id: TupleId(new_index[t.id.index()]),
                op: t.op,
                a: map_operand(t.a),
                b: map_operand(t.b),
            });
        }

        let mut out = block.clone();
        out.replace_tuples(tuples);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BlockBuilder;
    use crate::op::Op;

    #[test]
    fn remove_and_renumber() {
        let mut b = BlockBuilder::new("r");
        let x = b.load("x");
        let dead = b.load("dead");
        let y = b.load("y");
        let s = b.add(x, y);
        b.store("z", s);
        let bb = b.finish().unwrap();

        let mut rw = Rewriter::new(bb.len());
        rw.remove(dead);
        let out = rw.apply(&bb);
        out.verify().unwrap();
        assert_eq!(out.len(), 4);
        // Add now references tuples 1 and 2 (0-based 0 and 1).
        let add = out.tuple(TupleId(2));
        assert_eq!(add.op, Op::Add);
        assert_eq!(add.a, Operand::Tuple(TupleId(0)));
        assert_eq!(add.b, Operand::Tuple(TupleId(1)));
    }

    #[test]
    fn redirect_chains_resolve() {
        let mut b = BlockBuilder::new("c");
        let x = b.load("x");
        let m1 = b.mov(x);
        let m2 = b.mov(m1);
        b.store("z", m2);
        let bb = b.finish().unwrap();

        let mut rw = Rewriter::new(bb.len());
        rw.redirect(m2, m1);
        rw.redirect(m1, x);
        rw.remove(m1);
        rw.remove(m2);
        let out = rw.apply(&bb);
        out.verify().unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.tuple(TupleId(1)).b, Operand::Tuple(TupleId(0)));
    }

    #[test]
    fn no_changes_is_identity() {
        let mut b = BlockBuilder::new("id");
        let x = b.load("x");
        b.store("y", x);
        let bb = b.finish().unwrap();
        let rw = Rewriter::new(bb.len());
        assert!(!rw.has_changes());
        let out = rw.apply(&bb);
        assert_eq!(out, bb);
    }

    #[test]
    #[should_panic(expected = "no redirect")]
    fn removing_used_tuple_without_redirect_panics() {
        let mut b = BlockBuilder::new("bad");
        let x = b.load("x");
        b.store("y", x);
        let bb = b.finish().unwrap();
        let mut rw = Rewriter::new(bb.len());
        rw.remove(x);
        let _ = rw.apply(&bb);
    }
}
