//! Tuple operands.

use std::fmt;

use crate::block::VarId;
use crate::tuple::TupleId;

/// An operand of a tuple: a variable, the result of an earlier tuple, an
/// immediate constant, or absent (`∅` in the paper's notation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Operand {
    /// No operand (the paper's `∅`).
    None,
    /// A named program variable (interned in the block's symbol table).
    Var(VarId),
    /// The value produced by an earlier tuple in the same block.
    Tuple(TupleId),
    /// An immediate constant (only used by `Const`).
    Imm(i64),
}

impl Operand {
    /// The tuple this operand references, if any.
    pub fn as_tuple(self) -> Option<TupleId> {
        match self {
            Operand::Tuple(t) => Some(t),
            _ => None,
        }
    }

    /// The variable this operand names, if any.
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Operand::Var(v) => Some(v),
            _ => None,
        }
    }

    /// The immediate value, if any.
    pub fn as_imm(self) -> Option<i64> {
        match self {
            Operand::Imm(i) => Some(i),
            _ => None,
        }
    }

    /// True when the operand is absent.
    pub fn is_none(self) -> bool {
        matches!(self, Operand::None)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::None => write!(f, "_"),
            Operand::Var(v) => write!(f, "#v{}", v.0),
            Operand::Tuple(t) => write!(f, "@{}", t.0 + 1),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Operand::Tuple(TupleId(3)).as_tuple(), Some(TupleId(3)));
        assert_eq!(Operand::Var(VarId(1)).as_tuple(), None);
        assert_eq!(Operand::Var(VarId(1)).as_var(), Some(VarId(1)));
        assert_eq!(Operand::Imm(42).as_imm(), Some(42));
        assert!(Operand::None.is_none());
        assert!(!Operand::Imm(0).is_none());
    }

    #[test]
    fn display_uses_one_based_tuple_refs() {
        assert_eq!(Operand::Tuple(TupleId(0)).to_string(), "@1");
        assert_eq!(Operand::None.to_string(), "_");
        assert_eq!(Operand::Imm(-7).to_string(), "-7");
    }
}
