//! Sanity checks for the model runtime itself: interleaving counts on
//! tiny programs with known schedule spaces, and one detector test per
//! violation class. The four protocol harnesses live in their own
//! files; this file pins the checker's own semantics.

use std::sync::Arc;

use pipesched_check::model::cell::RaceCell;
use pipesched_check::model::sync::{AtomicU32, Mutex, Ordering};
use pipesched_check::model::{explore, thread, Builder};
use pipesched_check::ViolationCode;

#[test]
fn two_independent_ops_interleave_both_ways() {
    // Each thread does one op on its own atomic: exactly the schedules
    // of interleaving the spawn/join skeleton — small, but > 1 and
    // exhaustively enumerated.
    let report = explore(&Builder::default(), || {
        let a = Arc::new(AtomicU32::new(0));
        let b = Arc::new(AtomicU32::new(0));
        let a2 = Arc::clone(&a);
        let t = thread::spawn(move || {
            a2.store(1, Ordering::Relaxed);
        });
        b.store(1, Ordering::Relaxed);
        t.join();
        assert_eq!(a.load(Ordering::Relaxed), 1);
        assert_eq!(b.load(Ordering::Relaxed), 1);
    });
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert!(report.exhausted, "tiny program must be fully explored");
    assert!(
        report.interleavings >= 2,
        "expected both orders, got {}",
        report.interleavings
    );
}

#[test]
fn counter_increments_all_interleavings_sum() {
    // Two threads each fetch_add 1: the total is 2 on every schedule
    // (atomics don't lose updates), and multiple schedules exist.
    let report = explore(&Builder::default(), || {
        let n = Arc::new(AtomicU32::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        n.fetch_add(1, Ordering::Relaxed);
        t.join();
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert!(report.exhausted);
    assert!(report.interleavings >= 2);
}

#[test]
fn unsynchronized_cell_write_write_is_a_race() {
    let report = explore(&Builder::default(), || {
        let c = Arc::new(RaceCell::named("shared", 0u32));
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            c2.set(1);
        });
        c.set(2);
        t.join();
    });
    assert_eq!(report.first_code(), Some(ViolationCode::DataRace));
}

#[test]
fn release_acquire_protects_the_cell() {
    // Classic message passing: write data, release-store flag; reader
    // spins on acquire-load then reads data. No race on any schedule.
    let report = explore(&Builder::default(), || {
        let data = Arc::new(RaceCell::named("data", 0u32));
        let flag = Arc::new(AtomicU32::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.set(42);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.get(), 42);
        }
        t.join();
    });
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert!(
        report.advisories.is_empty(),
        "advisories: {:?}",
        report.advisories
    );
    assert!(report.exhausted);
}

#[test]
fn relaxed_flag_is_a_race_and_an_advisory() {
    // Same shape but the flag store is Relaxed: the reader's acquire
    // load synchronizes with nothing (A0704) and the data read races
    // (A0701) on the schedule where the reader sees flag == 1.
    let report = explore(&Builder::default(), || {
        let data = Arc::new(RaceCell::named("data", 0u32));
        let flag = Arc::new(AtomicU32::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.set(42);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) == 1 {
            let _ = data.get();
        }
        t.join();
    });
    assert_eq!(report.first_code(), Some(ViolationCode::DataRace));
    assert!(
        report.has_code(ViolationCode::AcquireMisuse),
        "expected the A0704 advisory too: {:?}",
        report.advisories
    );
}

#[test]
fn ab_ba_locking_deadlocks_and_reports_the_cycle() {
    let report = explore(&Builder::default(), || {
        let a = Arc::new(Mutex::named("lock-a", ()));
        let b = Arc::new(Mutex::named("lock-b", ()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop(_ga);
        drop(_gb);
        t.join();
    });
    assert_eq!(report.first_code(), Some(ViolationCode::Deadlock));
    assert!(
        report.has_code(ViolationCode::LockOrderCycle),
        "both orders were observed before the deadlock: {:?}",
        report.lock_edges
    );
}

#[test]
fn leaking_a_guard_at_exit_is_flagged() {
    let report = explore(&Builder::default(), || {
        let m = Arc::new(Mutex::named("leaky", ()));
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || {
            let g = m2.lock();
            std::mem::forget(g);
        });
        t.join();
    });
    assert_eq!(report.first_code(), Some(ViolationCode::LockLeaked));
}

#[test]
fn harness_assertion_failures_become_a0705() {
    let report = explore(&Builder::default(), || {
        let n = Arc::new(AtomicU32::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.store(1, Ordering::Relaxed);
        });
        // Wrong on the schedule where the spawned store wins the race.
        assert_eq!(
            n.load(Ordering::Relaxed),
            0,
            "store must not have happened yet"
        );
        t.join();
    });
    assert_eq!(report.first_code(), Some(ViolationCode::InvariantViolated));
    let v = &report.violations[0];
    assert!(
        !v.trace.is_empty(),
        "violation carries the interleaving trace"
    );
}

#[test]
fn condvar_handoff_has_no_lost_wakeup() {
    use pipesched_check::model::sync::Condvar;
    let report = explore(&Builder::default(), || {
        let slot = Arc::new(Mutex::named("slot", None::<u32>));
        let cv = Arc::new(Condvar::new());
        let (s2, c2) = (Arc::clone(&slot), Arc::clone(&cv));
        let t = thread::spawn(move || {
            *s2.lock() = Some(7);
            c2.notify_one();
        });
        let mut g = slot.lock();
        while g.is_none() {
            g = cv.wait(g);
        }
        assert_eq!(*g, Some(7));
        drop(g);
        t.join();
    });
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert!(report.exhausted);
}

#[test]
fn exploration_is_deterministic() {
    let run = || {
        explore(&Builder::default(), || {
            let n = Arc::new(AtomicU32::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || {
                n2.fetch_add(1, Ordering::AcqRel);
                n2.fetch_add(1, Ordering::AcqRel);
            });
            n.fetch_add(1, Ordering::AcqRel);
            t.join();
        })
    };
    let (a, b) = (run(), run());
    assert_eq!(a.interleavings, b.interleavings);
    assert_eq!(a.exhausted, b.exhausted);
    assert_eq!(a.violations.len(), b.violations.len());
}
