//! Mutation suite: tamper-tests for the checker itself, in the style of
//! the certificate/witness tamper tests in PRs 3/5/6. Each test seeds a
//! deliberate protocol bug — the exact bug class the harnesses guard the
//! pool against — and pins the `A07xx` code the exploration must reject
//! it with. A checker that stays green on any of these is broken.

use std::sync::Arc;

use pipesched_check::model::cell::RaceCell;
use pipesched_check::model::sync::{AtomicBool, AtomicU32, AtomicUsize, Mutex, Ordering};
use pipesched_check::model::{explore, thread, Builder};
use pipesched_check::ViolationCode;

/// Mutation 1 — dropped Release fence (pinned: A0701 + A0704).
///
/// The stop protocol from `model_stop.rs`, but the stopper publishes
/// `stop` with a Relaxed store. The worker's Acquire load then
/// synchronizes with nothing: reading the reason cell is a data race
/// (A0701), and the useless acquire is flagged as misuse (A0704).
#[test]
fn dropped_release_fence_is_a0701_and_a0704() {
    let report = explore(&Builder::default(), || {
        let stop = Arc::new(AtomicBool::new(false));
        let reason = Arc::new(RaceCell::named("stop-reason", 0u32));
        let (s2, r2) = (Arc::clone(&stop), Arc::clone(&reason));
        let stopper = thread::spawn(move || {
            r2.set(1);
            // BUG: must be Ordering::Release to publish the reason.
            s2.store(true, Ordering::Relaxed);
        });
        if stop.load(Ordering::Acquire) {
            let _why = reason.get();
        }
        stopper.join();
    });
    assert_eq!(
        report.first_code(),
        Some(ViolationCode::DataRace),
        "expected the reason read to race: {:?}",
        report.violations
    );
    assert!(
        report.has_code(ViolationCode::AcquireMisuse),
        "expected the A0704 advisory on the acquire load: {:?}",
        report.advisories
    );
    let race = &report.violations[0];
    assert!(
        race.message.contains("stop-reason"),
        "race must name the cell: {}",
        race.message
    );
    assert!(!race.trace.is_empty(), "race report carries the trace");
}

/// Mutation 2 — reordered/unguarded incumbent store (pinned: A0705).
///
/// The incumbent protocol from `model_incumbent.rs`, but the improver
/// skips the under-lock recheck and stores its payload unconditionally
/// after winning its own fetch_min. On schedules where the worse
/// improver locks last, the payload regresses to a stale incumbent and
/// the quiescence assertion fires.
#[test]
fn unguarded_incumbent_store_is_a0705() {
    let report = explore(&Builder::default(), || {
        let best_nops = Arc::new(AtomicU32::new(10));
        let best = Arc::new(Mutex::named("best", (0u32, 10u32)));
        let mut improvers = Vec::new();
        for (id, nops) in [(1u32, 5u32), (2, 3)] {
            let (bn, b) = (Arc::clone(&best_nops), Arc::clone(&best));
            improvers.push(thread::spawn(move || {
                let prev = bn.fetch_min(nops, Ordering::SeqCst);
                if nops < prev {
                    // BUG: no recheck under the lock — a stale improver
                    // can overwrite a better payload published between
                    // its fetch_min and its lock acquisition.
                    *b.lock() = (id, nops);
                }
            }));
        }
        for t in improvers {
            t.join();
        }
        let g = best.lock();
        assert_eq!(
            g.1,
            best_nops.load(Ordering::Relaxed),
            "payload and published bound must agree at quiescence"
        );
    });
    assert_eq!(
        report.first_code(),
        Some(ViolationCode::InvariantViolated),
        "expected the stale-incumbent assertion to fire: {:?}",
        report.violations
    );
    assert!(
        report.violations[0].message.contains("agree at quiescence"),
        "violation must carry the harness assertion: {}",
        report.violations[0].message
    );
}

/// Mutation 3 — skipped transcript registration (pinned: A0705).
///
/// The merge protocol from `model_merge.rs`, but one prover "forgets"
/// to register the transcript for subtree 1. The merge-completeness
/// assertion must reject the run as not certifiable.
#[test]
fn skipped_transcript_registration_is_a0705() {
    const SUBTREES: usize = 3;
    let report = explore(&Builder::default(), || {
        let next = Arc::new(AtomicUsize::new(0));
        let slots: Arc<Vec<Mutex<Option<u32>>>> =
            Arc::new((0..SUBTREES).map(|_| Mutex::new(None)).collect());
        let provers: Vec<_> = (0..2)
            .map(|_| {
                let (n, s) = (Arc::clone(&next), Arc::clone(&slots));
                thread::spawn(move || loop {
                    let i = n.fetch_add(1, Ordering::Relaxed);
                    if i >= SUBTREES {
                        return;
                    }
                    // BUG: subtree 1's transcript is never registered.
                    if i != 1 {
                        *s[i].lock() = Some(i as u32);
                    }
                })
            })
            .collect();
        for p in provers {
            p.join();
        }
        for (i, slot) in slots.iter().enumerate() {
            assert!(
                slot.lock().is_some(),
                "subtree {i} transcript missing: run is not certifiable"
            );
        }
    });
    assert_eq!(
        report.first_code(),
        Some(ViolationCode::InvariantViolated),
        "expected merge completeness to fail: {:?}",
        report.violations
    );
    assert!(
        report.violations[0].message.contains("not certifiable"),
        "violation must carry the completeness assertion: {}",
        report.violations[0].message
    );
}

/// Mutation 4 — inverted lock order (pinned: A0703 + A0702).
///
/// Two pool-style locks taken in opposite orders by two threads: some
/// schedule deadlocks (A0703) and the accumulated edge graph has the
/// cycle (A0702).
#[test]
fn inverted_lock_order_is_a0703_and_a0702() {
    let report = explore(&Builder::default(), || {
        let stats = Arc::new(Mutex::named("stats", 0u32));
        let best = Arc::new(Mutex::named("best", 0u32));
        let (s2, b2) = (Arc::clone(&stats), Arc::clone(&best));
        let t = thread::spawn(move || {
            let _g1 = s2.lock();
            let _g2 = b2.lock();
        });
        // BUG: opposite acquisition order.
        let _g1 = best.lock();
        let _g2 = stats.lock();
        drop(_g2);
        drop(_g1);
        t.join();
    });
    assert_eq!(report.first_code(), Some(ViolationCode::Deadlock));
    assert!(
        report.has_code(ViolationCode::LockOrderCycle),
        "edge graph must expose the cycle: {:?}",
        report.lock_edges
    );
}

/// Mutation 5 — transcript guard leaked across worker exit (pinned:
/// A0706). A worker that finishes while holding the merge lock would
/// wedge every later merger.
#[test]
fn guard_leak_at_worker_exit_is_a0706() {
    let report = explore(&Builder::default(), || {
        let merge = Arc::new(Mutex::named("merge", ()));
        let m2 = Arc::clone(&merge);
        let t = thread::spawn(move || {
            // BUG: guard forgotten instead of dropped.
            std::mem::forget(m2.lock());
        });
        t.join();
    });
    assert_eq!(report.first_code(), Some(ViolationCode::LockLeaked));
}

/// The mutation detectors must themselves be deterministic: the same
/// seeded bug yields the same first violation on every exploration.
#[test]
fn mutation_detection_is_deterministic() {
    let run = || {
        explore(&Builder::default(), || {
            let c = Arc::new(RaceCell::named("shared", 0u32));
            let c2 = Arc::clone(&c);
            let t = thread::spawn(move || c2.set(1));
            c.set(2);
            t.join();
        })
    };
    let (a, b) = (run(), run());
    assert_eq!(a.first_code(), b.first_code());
    assert_eq!(a.interleavings, b.interleavings);
    assert_eq!(
        a.violations[0].trace, b.violations[0].trace,
        "the offending interleaving replays identically"
    );
}
