//! Protocol harness 3: λ/deadline/stop monotonicity.
//!
//! Mirrors the pool's global-stop protocol: a stopper thread records
//! *why* the search is ending (deadline hit, bound proved) in plain
//! data, then publishes `stop` with a Release store; workers poll with
//! an Acquire load and charge Ω (the λ work counter) only while stop is
//! unobserved. Explored invariants:
//!
//! * once a worker observes `stop`, it charges no further Ω — the total
//!   Ω is bounded by the iterations workers ran before observation;
//! * the reason data is fully visible to any observer of `stop`
//!   (Release/Acquire message passing — the race detector proves the
//!   edge is required: see the dropped-Release mutation in
//!   `model_mutations.rs`);
//! * `stop` is monotone: once set it stays set.

use std::sync::Arc;

use pipesched_check::model::cell::RaceCell;
use pipesched_check::model::sync::{AtomicBool, AtomicU32, Ordering};
use pipesched_check::model::{explore, thread, Builder};

const ITERS: u32 = 3;

struct Pool {
    stop: AtomicBool,
    /// Why the pool stopped: 0 = running, 1 = deadline, 2 = proved.
    /// Deliberately unsynchronized data — only the Release/Acquire pair
    /// on `stop` makes reading it safe.
    reason: RaceCell<u32>,
    omega_used: AtomicU32,
}

fn worker(pool: &Pool) -> u32 {
    let mut charged = 0;
    for _ in 0..ITERS {
        if pool.stop.load(Ordering::Acquire) {
            let why = pool.reason.get();
            assert!(why != 0, "observed stop but reason not yet visible");
            return charged;
        }
        pool.omega_used.fetch_add(1, Ordering::Relaxed);
        charged += 1;
    }
    charged
}

#[test]
fn stop_is_monotone_and_omega_is_bounded() {
    let builder = Builder::with_cap(5000);
    let report = explore(&builder, || {
        let pool = Arc::new(Pool {
            stop: AtomicBool::new(false),
            reason: RaceCell::named("stop-reason", 0),
            omega_used: AtomicU32::new(0),
        });

        let workers: Vec<_> = (0..2)
            .map(|_| {
                let p = Arc::clone(&pool);
                thread::spawn(move || {
                    worker(&p);
                })
            })
            .collect();

        let stopper = {
            let p = Arc::clone(&pool);
            thread::spawn(move || {
                p.reason.set(1);
                p.stop.store(true, Ordering::Release);
            })
        };

        for w in workers {
            w.join();
        }
        stopper.join();

        assert!(
            pool.stop.load(Ordering::Acquire),
            "stop must stay set once published"
        );
        let omega = pool.omega_used.load(Ordering::Relaxed);
        assert!(
            omega <= 2 * ITERS,
            "Ω must be bounded by pre-observation work, got {omega}"
        );
    });
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert!(
        report.advisories.is_empty(),
        "release/acquire pairing must be clean: {:?}",
        report.advisories
    );
    assert!(
        report.interleavings >= 1000,
        "interleaving floor: got {}",
        report.interleavings
    );
}
