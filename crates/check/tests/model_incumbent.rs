//! Protocol harness 2: incumbent publication.
//!
//! Mirrors `PoolPolicy::improved` in `crates/core/src/parallel.rs`: a
//! worker that finds a better schedule publishes the bound with
//! `best_nops.fetch_min(n, SeqCst)` and, only if it strictly improved,
//! takes the payload mutex and *rechecks* before overwriting — the
//! recheck is what makes two racing improvers converge on the best
//! payload rather than the last-locked one.
//!
//! Invariants explored over every schedule:
//! * the bound is monotone non-increasing under concurrent probes
//!   (which is the invariant that makes `Relaxed` bound loads sound for
//!   pruning);
//! * at quiescence the payload agrees exactly with the published bound
//!   and is the true optimum — no stale incumbent survives publication.

use std::sync::Arc;

use pipesched_check::model::sync::{AtomicU32, Mutex, Ordering};
use pipesched_check::model::{explore, thread, Builder};

struct Shared {
    best_nops: AtomicU32,
    /// `(worker id, nops)` payload guarded separately, like the pool's
    /// `Mutex<(Vec<TupleId>, u32)>`.
    best: Mutex<(u32, u32)>,
}

fn improve(sh: &Shared, id: u32, nops: u32) {
    let prev = sh.best_nops.fetch_min(nops, Ordering::SeqCst);
    if nops < prev {
        let mut g = sh.best.lock();
        // Recheck under the lock: a concurrent improver with an even
        // better result may have published between our fetch_min and
        // our lock acquisition.
        if nops < g.1 {
            *g = (id, nops);
        }
    }
}

#[test]
fn incumbent_publication_is_never_stale() {
    let builder = Builder::with_cap(5000);
    let report = explore(&builder, || {
        let sh = Arc::new(Shared {
            best_nops: AtomicU32::new(10),
            best: Mutex::named("best", (0, 10)),
        });

        let a = {
            let sh = Arc::clone(&sh);
            thread::spawn(move || improve(&sh, 1, 5))
        };
        let b = {
            let sh = Arc::clone(&sh);
            thread::spawn(move || improve(&sh, 2, 3))
        };
        let prober = {
            let sh = Arc::clone(&sh);
            thread::spawn(move || {
                // The pool's deferred bound check: Relaxed loads are
                // sound because fetch_min makes the bound monotone.
                let b1 = sh.best_nops.load(Ordering::Relaxed);
                let b2 = sh.best_nops.load(Ordering::Relaxed);
                assert!(b2 <= b1, "published bound must be monotone: {b1} then {b2}");
                assert!(
                    b1 == 10 || b1 == 5 || b1 == 3,
                    "bound must be one of the published values, got {b1}"
                );
            })
        };

        a.join();
        b.join();
        prober.join();

        let g = sh.best.lock();
        let bound = sh.best_nops.load(Ordering::Relaxed);
        assert_eq!(
            g.1, bound,
            "payload and published bound must agree at quiescence"
        );
        assert_eq!(*g, (2, 3), "the best improver must own the payload");
    });
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert!(
        report.interleavings >= 1000,
        "interleaving floor: got {}",
        report.interleavings
    );
}
