//! Protocol harness 1: work-stealing deque linearizability.
//!
//! The pool's deques (vendored `crossbeam` shim) must never lose or
//! duplicate a task no matter how owner pops and thief steals
//! interleave. Accounting: item `i` contributes `4^i` to a shared sum
//! when taken, so the final total equals `Σ 4^i` exactly when every
//! pushed item was taken exactly once — a lost item shorts the sum, a
//! duplicated one overshoots, and no two distinct outcomes collide
//! (each item is taken 0, 1, or 2 times, all < 4).
//!
//! The always-on test mirrors the shim's storage protocol (one mutex
//! around a `VecDeque`: push_back/pop_back for the owner,
//! pop_front for thieves) on the instrumented `model::sync::Mutex`.
//! Under `--cfg model` a second test runs the *actual*
//! `crossbeam::deque` shim code through the same schedule exploration,
//! because its storage mutex is the `pipesched-check` facade.

use std::collections::VecDeque;
use std::sync::Arc;

use pipesched_check::model::sync::{AtomicU32, Mutex, Ordering};
use pipesched_check::model::{explore, thread, Builder};

const ITEMS: u32 = 4;

fn expected_total() -> u32 {
    (0..ITEMS).map(|i| 4u32.pow(i)).sum()
}

/// Mirror of the shim deque protocol on instrumented primitives.
struct MirrorDeque {
    inner: Mutex<VecDeque<u32>>,
}

impl MirrorDeque {
    fn new() -> Self {
        MirrorDeque {
            inner: Mutex::named("deque", VecDeque::new()),
        }
    }

    fn push(&self, v: u32) {
        self.inner.lock().push_back(v);
    }

    fn pop(&self) -> Option<u32> {
        self.inner.lock().pop_back()
    }

    fn steal(&self) -> Option<u32> {
        self.inner.lock().pop_front()
    }
}

#[test]
fn deque_mirror_no_loss_no_duplication() {
    let builder = Builder::with_cap(5000);
    let report = explore(&builder, || {
        let deque = Arc::new(MirrorDeque::new());
        let total = Arc::new(AtomicU32::new(0));

        let mut thieves = Vec::new();
        for _ in 0..2 {
            let (d, t) = (Arc::clone(&deque), Arc::clone(&total));
            thieves.push(thread::spawn(move || {
                let mut got = 0u32;
                for _ in 0..3 {
                    if let Some(i) = d.steal() {
                        got += 4u32.pow(i);
                    }
                }
                t.fetch_add(got, Ordering::Relaxed);
            }));
        }

        for i in 0..ITEMS {
            deque.push(i);
        }
        let mut got = 0u32;
        while let Some(i) = deque.pop() {
            got += 4u32.pow(i);
        }
        total.fetch_add(got, Ordering::Relaxed);

        for t in thieves {
            t.join();
        }
        assert_eq!(
            total.load(Ordering::Relaxed),
            expected_total(),
            "every pushed task must be taken exactly once"
        );
    });
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert!(
        report.interleavings >= 1000,
        "interleaving floor: got {}",
        report.interleavings
    );
}

/// The same protocol, but exercising the real vendored deque: only
/// meaningful when the facade is instrumented (`--cfg model`), which is
/// how the CI "Model check" gate runs this suite.
#[cfg(model)]
#[test]
fn deque_shim_no_loss_no_duplication() {
    use crossbeam::deque::{Steal, Worker};

    let builder = Builder::with_cap(5000);
    let report = explore(&builder, || {
        let owner = Worker::new_lifo();
        let total = Arc::new(AtomicU32::new(0));

        let mut thieves = Vec::new();
        for _ in 0..2 {
            let stealer = owner.stealer();
            let t = Arc::clone(&total);
            thieves.push(thread::spawn(move || {
                let mut got = 0u32;
                for _ in 0..3 {
                    match stealer.steal() {
                        Steal::Success(i) => got += 4u32.pow(i),
                        Steal::Empty | Steal::Retry => {}
                    }
                }
                t.fetch_add(got, Ordering::Relaxed);
            }));
        }

        for i in 0..ITEMS {
            owner.push(i);
        }
        let mut got = 0u32;
        while let Some(i) = owner.pop() {
            got += 4u32.pow(i);
        }
        total.fetch_add(got, Ordering::Relaxed);

        for t in thieves {
            t.join();
        }
        assert_eq!(
            total.load(Ordering::Relaxed),
            expected_total(),
            "every pushed task must be taken exactly once (real shim deque)"
        );
    });
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert!(
        report.interleavings >= 1000,
        "interleaving floor: got {}",
        report.interleavings
    );
}
