//! Protocol harness 4: two-phase `parallel_prove` merge completeness.
//!
//! Mirrors phase 2 of `parallel_prove` in `crates/core/src/parallel.rs`:
//! root dispositions are claimed by index from a shared `next` counter,
//! each claimed subtree is proved and its transcript *registered* into
//! its result slot, and the run is certifiable only if every slot is
//! filled — a spawned subtree whose transcript is never merged must make
//! the merged certificate unbuildable, not silently vanish.
//!
//! The pending-counter shutdown protocol rides along: `pending` is
//! incremented before work is visible and decremented after the
//! transcript is registered (AcqRel, as in the pool), and the root
//! asserts it reads exactly zero after joining — the Release half of
//! every decrement is what makes the final Acquire read sound.

use std::sync::Arc;

use pipesched_check::model::sync::{AtomicU32, AtomicUsize, Mutex, Ordering};
use pipesched_check::model::{explore, thread, Builder};

const SUBTREES: usize = 3;

struct Phase {
    next: AtomicUsize,
    pending: AtomicU32,
    slots: Vec<Mutex<Option<u32>>>,
}

fn prover(ph: &Phase) {
    loop {
        let i = ph.next.fetch_add(1, Ordering::Relaxed);
        if i >= SUBTREES {
            return;
        }
        // "Prove" subtree i and register its transcript.
        *ph.slots[i].lock() = Some(i as u32 * 10 + 7);
        ph.pending.fetch_sub(1, Ordering::AcqRel);
    }
}

#[test]
fn every_spawned_subtree_is_merged_or_not_certifiable() {
    let builder = Builder::with_cap(5000);
    let report = explore(&builder, || {
        let ph = Arc::new(Phase {
            next: AtomicUsize::new(0),
            pending: AtomicU32::new(SUBTREES as u32),
            slots: (0..SUBTREES).map(|_| Mutex::new(None)).collect(),
        });

        let provers: Vec<_> = (0..2)
            .map(|_| {
                let p = Arc::clone(&ph);
                thread::spawn(move || prover(&p))
            })
            .collect();
        for p in provers {
            p.join();
        }

        assert_eq!(
            ph.pending.load(Ordering::Acquire),
            0,
            "all claimed work must be accounted before merge"
        );
        // Merge: certifiable only when every transcript registered.
        for (i, slot) in ph.slots.iter().enumerate() {
            let t = slot.lock();
            assert_eq!(
                *t,
                Some(i as u32 * 10 + 7),
                "subtree {i} transcript missing from the merge"
            );
        }
    });
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert!(
        report.interleavings >= 1000,
        "interleaving floor: got {}",
        report.interleavings
    );
}
