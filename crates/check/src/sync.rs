//! The synchronization facade production code imports from.
//!
//! On a normal build this is a zero-cost passthrough: the atomics *are*
//! `std::sync::atomic` (plain re-exports) and `Mutex`/`Condvar` are
//! `#[repr(transparent)]`-thin poison-free wrappers over std (the same
//! surface the vendored `parking_lot` shim exposes). Under
//! `RUSTFLAGS="--cfg model"` the whole module is swapped for the
//! instrumented [`crate::model::sync`] types, so code written against
//! this facade can be model-checked without modification.

#[cfg(model)]
pub use crate::model::sync::{
    AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Condvar, Mutex, MutexGuard, Ordering,
};

#[cfg(not(model))]
pub use real::{
    AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Condvar, Mutex, MutexGuard, Ordering,
};

#[cfg(not(model))]
mod real {
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

    /// Poison-free mutex over std, parking-lot style: `lock()` returns
    /// the guard directly.
    #[derive(Debug, Default)]
    pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }

        /// Same as [`Mutex::new`]; the name only matters to the model
        /// build, where it labels lock-order and deadlock reports.
        pub fn named(_name: &str, value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }

        pub fn into_inner(self) -> T {
            match self.0.into_inner() {
                Ok(v) => v,
                Err(p) => p.into_inner(),
            }
        }
    }

    impl<T: ?Sized> Mutex<T> {
        pub fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard(match self.0.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            })
        }

        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            match self.0.try_lock() {
                Ok(g) => Some(MutexGuard(g)),
                Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
                Err(std::sync::TryLockError::WouldBlock) => None,
            }
        }

        pub fn get_mut(&mut self) -> &mut T {
            match self.0.get_mut() {
                Ok(v) => v,
                Err(p) => p.into_inner(),
            }
        }
    }

    pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

    impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }

    /// Poison-free condvar over std.
    #[derive(Debug, Default)]
    pub struct Condvar(std::sync::Condvar);

    impl Condvar {
        pub fn new() -> Self {
            Condvar(std::sync::Condvar::new())
        }

        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            MutexGuard(match self.0.wait(guard.0) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            })
        }

        pub fn notify_one(&self) {
            self.0.notify_one();
        }

        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }
}
