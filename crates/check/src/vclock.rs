//! Vector clocks: the partial order of "happens-before" over model
//! threads.
//!
//! A [`VClock`] maps each model thread (by index) to the number of
//! scheduler-visible operations of that thread it has transitively
//! observed. Event *a* happens-before event *b* exactly when the clock at
//! *a* is ≤ the clock at *b* component-wise; clocks that are incomparable
//! in that order are *concurrent*, and two concurrent conflicting
//! accesses to the same unsynchronized location are a data race.

/// A vector clock over model-thread indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock {
    ticks: Vec<u64>,
}

impl VClock {
    /// The zero clock (observes nothing).
    pub fn new() -> Self {
        VClock::default()
    }

    /// The clock component for `tid` (0 when never set).
    pub fn get(&self, tid: usize) -> u64 {
        self.ticks.get(tid).copied().unwrap_or(0)
    }

    /// Set the component for `tid`, growing the vector as needed.
    pub fn set(&mut self, tid: usize, value: u64) {
        if self.ticks.len() <= tid {
            self.ticks.resize(tid + 1, 0);
        }
        self.ticks[tid] = value;
    }

    /// Advance `tid`'s own component by one (a new local event).
    pub fn tick(&mut self, tid: usize) {
        let v = self.get(tid) + 1;
        self.set(tid, v);
    }

    /// Join: component-wise maximum (observe everything `other` observed).
    pub fn join(&mut self, other: &VClock) {
        if self.ticks.len() < other.ticks.len() {
            self.ticks.resize(other.ticks.len(), 0);
        }
        for (i, &t) in other.ticks.iter().enumerate() {
            if self.ticks[i] < t {
                self.ticks[i] = t;
            }
        }
    }

    /// True when `self` ≤ `other` component-wise: every event `self` has
    /// observed, `other` has observed too (`self` happens-before-or-equals
    /// `other`).
    pub fn le(&self, other: &VClock) -> bool {
        self.ticks
            .iter()
            .enumerate()
            .all(|(i, &t)| t <= other.get(i))
    }

    /// True when neither clock observes the other: the events are
    /// concurrent.
    pub fn concurrent_with(&self, other: &VClock) -> bool {
        !self.le(other) && !other.le(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_order() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        assert!(a.concurrent_with(&b));
        let mut c = b.clone();
        c.join(&a);
        assert!(a.le(&c) && b.le(&c));
        assert_eq!(c.get(0), 2);
        assert_eq!(c.get(1), 1);
        assert!(!c.le(&a));
    }

    #[test]
    fn zero_clock_precedes_everything() {
        let zero = VClock::new();
        let mut a = VClock::new();
        a.tick(3);
        assert!(zero.le(&a));
        assert!(zero.le(&zero));
        assert!(!a.le(&zero));
    }
}
