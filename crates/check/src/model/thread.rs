//! Model threads. [`spawn`] seeds the child with the parent's vector
//! clock (everything the parent did happens-before the child's first
//! step); [`JoinHandle::join`] joins the child's final clock back into
//! the parent. Both are scheduling points.

use super::{join_model_thread, spawn_model_thread, yield_point, Tid};

/// Spawn a model thread running `f`. The closure runs on a real OS
/// thread, but only when the model coordinator grants it a step.
pub fn spawn<F>(f: F) -> JoinHandle
where
    F: FnOnce() + Send + 'static,
{
    JoinHandle {
        tid: spawn_model_thread(Box::new(f)),
    }
}

/// Handle to a spawned model thread.
pub struct JoinHandle {
    tid: Tid,
}

impl JoinHandle {
    /// Block (as a scheduling intent) until the thread finishes, then
    /// join its clock: everything it did happens-before the return.
    pub fn join(self) {
        join_model_thread(self.tid);
    }

    /// The model thread id (t0 is the root).
    pub fn tid(&self) -> usize {
        self.tid
    }
}

/// A pure scheduling point: gives the coordinator a choice without any
/// effect. Useful to model "the thread does unrelated work here".
pub fn yield_now() {
    yield_point();
}
