//! The deterministic concurrency model checker.
//!
//! [`explore`] runs a closure — the *model program* — many times, once per
//! schedulable interleaving of its synchronization operations. Model
//! threads are real OS threads, but they only ever run one at a time: at
//! every operation on a [`sync`] primitive the thread parks and hands
//! control to the coordinator, which picks the next thread to step. The
//! sequence of picks is the *schedule*; depth-first enumeration over all
//! choice points explores every interleaving of the bounded program
//! exhaustively (up to [`Builder::max_interleavings`]), after which a
//! seeded xorshift sampler (no wall clock, no OS randomness — replays are
//! deterministic) can keep probing.
//!
//! While a schedule runs, the checker maintains a vector clock per model
//! thread and per object (see [`crate::vclock`]):
//!
//! * a `Release` (or stronger) atomic store publishes the writer's clock
//!   on the atomic; an `Acquire` (or stronger) load of it joins that
//!   clock into the reader — the C11 *synchronizes-with* edge. `Relaxed`
//!   stores discard the published clock (they break the release
//!   sequence); `Relaxed` read-modify-writes preserve it (they continue
//!   it);
//! * locking a [`sync::Mutex`] joins the clock its last unlock published;
//! * [`thread::spawn`] seeds the child with the parent's clock and
//!   [`thread::JoinHandle::join`] joins the child's final clock back.
//!
//! Unsynchronized data lives in a [`cell::RaceCell`]; two conflicting
//! accesses whose clocks are incomparable are a data race (`A0701`).
//! An `Acquire` load that observes a store which published no clock is
//! release/acquire misuse (`A0704`, advisory). A schedule on which no
//! thread can step is a deadlock (`A0703`); lock acquisitions made while
//! another lock is held accumulate a lock-order graph whose cycles are
//! `A0702`; a model thread that panics (a protocol invariant asserted by
//! the harness) is `A0705`; finishing while still holding a lock is
//! `A0706`. The first error-class violation stops the exploration and is
//! reported with the interleaving's full operation trace.

pub mod cell;
pub mod sync;
pub mod thread;

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, Once};

use crate::vclock::VClock;
use crate::{Violation, ViolationCode};

pub(crate) type Tid = usize;
pub(crate) type ObjId = usize;

/// Exploration limits and determinism knobs.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Cap on depth-first (exhaustively enumerated, all-distinct)
    /// interleavings.
    pub max_interleavings: usize,
    /// Extra seeded-random schedules to sample when the DFS budget ran
    /// out before the space was exhausted.
    pub random_fallback: usize,
    /// Seed for the xorshift sampler (no OS entropy: runs are
    /// reproducible).
    pub seed: u64,
    /// Per-interleaving operation budget; exceeding it is a violation
    /// (catches unbounded spin loops in a model program).
    pub max_steps: usize,
    /// Maximum live model threads per interleaving.
    pub max_threads: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            max_interleavings: 20_000,
            random_fallback: 0,
            seed: 0x9E37_79B9_7F4A_7C15,
            max_steps: 20_000,
            max_threads: 8,
        }
    }
}

impl Builder {
    /// A builder with an explicit DFS cap and the other defaults.
    pub fn with_cap(max_interleavings: usize) -> Self {
        Builder {
            max_interleavings,
            ..Builder::default()
        }
    }
}

/// What an exploration found.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Distinct interleavings fully executed by the DFS enumeration.
    pub interleavings: usize,
    /// Additional seeded-random schedules sampled after the DFS cap.
    pub sampled: usize,
    /// True when the DFS enumerated the *entire* bounded schedule space.
    pub exhausted: bool,
    /// Error-class violations (the first one found stops the search).
    pub violations: Vec<Violation>,
    /// Advisory findings (release/acquire misuse), deduplicated.
    pub advisories: Vec<Violation>,
    /// Lock-order edges observed across all interleavings, as
    /// `(held, acquired)` name pairs.
    pub lock_edges: Vec<(String, String)>,
}

impl ModelReport {
    /// True when no error-class violation was found.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The code of the first error-class violation, if any.
    pub fn first_code(&self) -> Option<ViolationCode> {
        self.violations.first().map(|v| v.code)
    }

    /// True when a violation or advisory with `code` was recorded.
    pub fn has_code(&self, code: ViolationCode) -> bool {
        self.violations
            .iter()
            .chain(self.advisories.iter())
            .any(|v| v.code == code)
    }
}

// ---------------------------------------------------------------------
// Per-execution state
// ---------------------------------------------------------------------

#[derive(Debug)]
enum Intent {
    /// Always-enabled operation (atomic access, unlock, notify, spawn...).
    Step,
    /// Wants the mutex; enabled when unowned.
    Lock(ObjId),
    /// Wants a finished thread; enabled when the target is done.
    Join(Tid),
    /// Parked on a condvar, remembering the mutex to reacquire; never
    /// enabled (a notify converts it to `Lock(mutex)`).
    WaitNotify(ObjId, ObjId),
}

#[derive(Debug)]
enum Status {
    /// Executing user code; will arrive at a point or finish.
    Running,
    /// Parked at a scheduling point, waiting to be granted.
    AtPoint(Intent),
    /// Chosen by the coordinator; will apply its effect and resume.
    Granted,
    Finished,
}

struct ThreadSlot {
    status: Status,
    clock: VClock,
    /// Locks currently held, as `(object, name)` — for lock-order edges
    /// and the leak check at exit.
    held: Vec<(ObjId, String)>,
    /// Human description of the pending operation (trace rendering).
    desc: String,
}

enum ObjState {
    Atomic {
        value: u64,
        /// Clock published by the release sequence currently in effect.
        sync_clock: Option<VClock>,
        /// Thread of the most recent store, for misuse advisories.
        last_writer: Option<Tid>,
    },
    Mutex {
        owner: Option<Tid>,
        /// Clock published by the last unlock.
        clock: VClock,
        name: String,
    },
    Cond,
    Cell {
        write_clock: VClock,
        writer: Option<Tid>,
        reads: VClock,
    },
}

enum Mode {
    Dfs,
    Random,
}

struct ExecState {
    threads: Vec<ThreadSlot>,
    objects: Vec<ObjState>,
    /// Choice prefix to replay (DFS input).
    schedule: Vec<usize>,
    /// `(runnable_count, chosen_index)` at every decision point.
    trace: Vec<(usize, usize)>,
    active: Option<Tid>,
    failure: Option<Violation>,
    advisories: Vec<Violation>,
    lock_edges: BTreeSet<(String, String)>,
    cancelling: bool,
    mode: Mode,
    rng: u64,
    steps: usize,
    max_steps: usize,
    max_threads: usize,
    op_log: Vec<String>,
    real_handles: Vec<std::thread::JoinHandle<()>>,
    spawned_real: usize,
    joined_real: usize,
}

impl ExecState {
    fn fail(&mut self, code: ViolationCode, message: String) {
        if self.failure.is_none() {
            self.failure = Some(Violation {
                code,
                message,
                trace: self.op_log.clone(),
            });
        }
    }

    fn advise(&mut self, message: String) {
        // Deduplicate by message: the same misuse site fires on many
        // interleavings.
        if !self.advisories.iter().any(|v| v.message == message) {
            self.advisories.push(Violation {
                code: ViolationCode::AcquireMisuse,
                message,
                trace: Vec::new(),
            });
        }
    }

    fn log(&mut self, tid: Tid, desc: &str) {
        if self.op_log.len() < 256 {
            self.op_log.push(format!("t{tid}: {desc}"));
        }
    }

    fn alloc_object(&mut self, obj: ObjState) -> ObjId {
        self.objects.push(obj);
        self.objects.len() - 1
    }
}

struct Exec {
    state: StdMutex<ExecState>,
    cv: StdCondvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Exec>, Tid)>> = const { RefCell::new(None) };
}

/// Panic payload used to unwind model threads during teardown.
struct Cancelled;

/// Install (once, process-wide) a panic hook that silences panics raised
/// on model threads: cancellation unwinds and harness assertion failures
/// are *expected* there — the report carries them; stderr should not.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_model = CURRENT.try_with(|c| c.borrow().is_some()).unwrap_or(false);
            if !in_model {
                prev(info);
            }
        }));
    });
}

fn with_current() -> (Arc<Exec>, Tid) {
    CURRENT
        .with(|c| c.borrow().clone())
        .expect("pipesched-check model primitive used outside model::explore")
}

/// Render a panic payload for the report.
fn payload_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked".to_string()
    }
}

/// The single scheduling-point primitive every instrumented operation
/// goes through: park with `intent`, wait to be granted, apply `effect`
/// atomically (under the execution lock), resume.
pub(crate) fn op<R>(
    intent_kind: IntentKind,
    desc: String,
    effect: impl FnOnce(&mut dyn OpCtx, Tid) -> R,
) -> R {
    let (exec, tid) = with_current();
    let mut st = exec.state.lock().unwrap();
    // Teardown: while unwinding (guard drops during a panic) apply the
    // effect silently — never park, never panic again.
    if std::thread::panicking() {
        return effect(&mut CtxImpl { st: &mut st }, tid);
    }
    if st.cancelling {
        drop(st);
        std::panic::panic_any(Cancelled);
    }
    let intent = match intent_kind {
        IntentKind::Step => Intent::Step,
        IntentKind::Lock(m) => Intent::Lock(m),
        IntentKind::Join(t) => Intent::Join(t),
    };
    st.threads[tid].status = Status::AtPoint(intent);
    st.threads[tid].desc = desc;
    exec.cv.notify_all();
    loop {
        if st.cancelling {
            drop(st);
            std::panic::panic_any(Cancelled);
        }
        if matches!(st.threads[tid].status, Status::Granted) {
            break;
        }
        st = exec.cv.wait(st).unwrap();
    }
    st.threads[tid].clock.tick(tid);
    st.steps += 1;
    let d = std::mem::take(&mut st.threads[tid].desc);
    st.log(tid, &d);
    let r = effect(&mut CtxImpl { st: &mut st }, tid);
    st.threads[tid].status = Status::Running;
    st.active = None;
    exec.cv.notify_all();
    r
}

/// Intent kinds exposed to the sync primitives.
pub(crate) enum IntentKind {
    Step,
    Lock(ObjId),
    Join(Tid),
}

/// The mutation surface an operation effect sees. A trait object keeps
/// `ExecState` private to this module while letting `sync`/`cell`/
/// `thread` implement their effects.
pub(crate) trait OpCtx {
    fn clock_of(&self, tid: Tid) -> VClock;
    fn join_clock(&mut self, tid: Tid, other: &VClock);
    fn atomic(&mut self, id: ObjId) -> (&mut u64, &mut Option<VClock>, &mut Option<Tid>);
    fn mutex_acquire(&mut self, id: ObjId, tid: Tid);
    fn mutex_try_acquire(&mut self, id: ObjId, tid: Tid) -> bool;
    fn mutex_release(&mut self, id: ObjId, tid: Tid);
    fn park_on_condvar(&mut self, tid: Tid, cv: ObjId, mutex: ObjId);
    fn notify(&mut self, cv: ObjId, all: bool);
    fn cell_read(&mut self, id: ObjId, tid: Tid, what: &str);
    fn cell_write(&mut self, id: ObjId, tid: Tid, what: &str);
    fn advise(&mut self, message: String);
    fn spawn_thread(&mut self, parent: Tid) -> Tid;
}

struct CtxImpl<'a> {
    st: &'a mut ExecState,
}

impl OpCtx for CtxImpl<'_> {
    fn clock_of(&self, tid: Tid) -> VClock {
        self.st.threads[tid].clock.clone()
    }

    fn join_clock(&mut self, tid: Tid, other: &VClock) {
        self.st.threads[tid].clock.join(other);
    }

    fn atomic(&mut self, id: ObjId) -> (&mut u64, &mut Option<VClock>, &mut Option<Tid>) {
        match &mut self.st.objects[id] {
            ObjState::Atomic {
                value,
                sync_clock,
                last_writer,
            } => (value, sync_clock, last_writer),
            _ => unreachable!("object {id} is not an atomic"),
        }
    }

    fn mutex_acquire(&mut self, id: ObjId, tid: Tid) {
        let (clock, name) = match &self.st.objects[id] {
            ObjState::Mutex { clock, name, .. } => (clock.clone(), name.clone()),
            _ => unreachable!("object {id} is not a mutex"),
        };
        // Lock-order edges: everything currently held precedes this lock.
        let held: Vec<String> = self.st.threads[tid]
            .held
            .iter()
            .map(|(_, n)| n.clone())
            .collect();
        for h in held {
            if h != name {
                self.st.lock_edges.insert((h, name.clone()));
            }
        }
        self.st.threads[tid].clock.join(&clock);
        self.st.threads[tid].held.push((id, name));
        match &mut self.st.objects[id] {
            ObjState::Mutex { owner, .. } => *owner = Some(tid),
            _ => unreachable!(),
        }
    }

    fn mutex_release(&mut self, id: ObjId, tid: Tid) {
        let publish = self.st.threads[tid].clock.clone();
        self.st.threads[tid].held.retain(|(o, _)| *o != id);
        match &mut self.st.objects[id] {
            ObjState::Mutex { owner, clock, .. } => {
                *owner = None;
                clock.join(&publish);
            }
            _ => unreachable!("object {id} is not a mutex"),
        }
    }

    fn mutex_try_acquire(&mut self, id: ObjId, tid: Tid) -> bool {
        let free = match &self.st.objects[id] {
            ObjState::Mutex { owner, .. } => owner.is_none(),
            _ => unreachable!("object {id} is not a mutex"),
        };
        if free {
            self.mutex_acquire(id, tid);
        }
        free
    }

    fn park_on_condvar(&mut self, tid: Tid, cv: ObjId, mutex: ObjId) {
        self.st.threads[tid].status = Status::AtPoint(Intent::WaitNotify(cv, mutex));
    }

    fn notify(&mut self, cv: ObjId, all: bool) {
        // Deterministic wake order: lowest thread id first. Each waiter
        // recorded the mutex it must reacquire when it parked.
        for t in 0..self.st.threads.len() {
            if let Status::AtPoint(Intent::WaitNotify(c, m)) = self.st.threads[t].status {
                if c == cv {
                    self.st.threads[t].status = Status::AtPoint(Intent::Lock(m));
                    if !all {
                        break;
                    }
                }
            }
        }
    }

    fn cell_read(&mut self, id: ObjId, tid: Tid, what: &str) {
        let me = self.st.threads[tid].clock.clone();
        let racy = match &self.st.objects[id] {
            ObjState::Cell {
                write_clock,
                writer,
                ..
            } => writer.is_some_and(|w| w != tid) && !write_clock.le(&me),
            _ => unreachable!("object {id} is not a cell"),
        };
        if racy {
            self.st.fail(
                ViolationCode::DataRace,
                format!("data race: t{tid} reads {what} concurrently with its last write"),
            );
        }
        let tick = me.get(tid);
        if let ObjState::Cell { reads, .. } = &mut self.st.objects[id] {
            if reads.get(tid) < tick {
                reads.set(tid, tick);
            }
        }
    }

    fn cell_write(&mut self, id: ObjId, tid: Tid, what: &str) {
        let me = self.st.threads[tid].clock.clone();
        let racy = match &self.st.objects[id] {
            ObjState::Cell {
                write_clock,
                writer,
                reads,
            } => (writer.is_some_and(|w| w != tid) && !write_clock.le(&me)) || !reads.le(&me),
            _ => unreachable!("object {id} is not a cell"),
        };
        if racy {
            self.st.fail(
                ViolationCode::DataRace,
                format!("data race: t{tid} writes {what} concurrently with another access"),
            );
        }
        if let ObjState::Cell {
            write_clock,
            writer,
            reads,
        } = &mut self.st.objects[id]
        {
            *write_clock = me;
            *writer = Some(tid);
            *reads = VClock::new();
        }
    }

    fn advise(&mut self, message: String) {
        self.st.advise(message);
    }

    fn spawn_thread(&mut self, parent: Tid) -> Tid {
        if self.st.threads.len() >= self.st.max_threads {
            self.st.fail(
                ViolationCode::InvariantViolated,
                format!(
                    "model spawned more than max_threads = {} threads",
                    self.st.max_threads
                ),
            );
        }
        let clock = self.st.threads[parent].clock.clone();
        self.st.threads.push(ThreadSlot {
            status: Status::Running,
            clock,
            held: Vec::new(),
            desc: String::new(),
        });
        self.st.spawned_real += 1;
        self.st.threads.len() - 1
    }
}

/// Allocate a sync object in the current execution.
pub(crate) fn register_object(kind: ObjectKind) -> ObjId {
    let (exec, _tid) = with_current();
    let mut st = exec.state.lock().unwrap();
    let obj = match kind {
        ObjectKind::Atomic(value) => ObjState::Atomic {
            value,
            sync_clock: None,
            last_writer: None,
        },
        ObjectKind::Mutex(name) => {
            let id = st.objects.len();
            ObjState::Mutex {
                owner: None,
                clock: VClock::new(),
                name: name.unwrap_or_else(|| format!("mutex#{id}")),
            }
        }
        ObjectKind::Cond => ObjState::Cond,
        ObjectKind::Cell => ObjState::Cell {
            write_clock: VClock::new(),
            writer: None,
            reads: VClock::new(),
        },
    };
    st.alloc_object(obj)
}

pub(crate) enum ObjectKind {
    Atomic(u64),
    Mutex(Option<String>),
    Cond,
    Cell,
}

/// The two-stage condvar wait: one op releases the mutex and parks on
/// the condvar; once a notify re-arms the thread as a lock waiter, the
/// coordinator grants the reacquire like any other lock.
pub(crate) fn condvar_wait(cv: ObjId, mutex: ObjId) {
    let (exec, tid) = with_current();
    let mut st = exec.state.lock().unwrap();
    if std::thread::panicking() {
        return;
    }
    if st.cancelling {
        drop(st);
        std::panic::panic_any(Cancelled);
    }
    // Stage 1: the wait-enter op (release + park).
    st.threads[tid].status = Status::AtPoint(Intent::Step);
    st.threads[tid].desc = format!("condvar#{cv} wait (release mutex#{mutex})");
    exec.cv.notify_all();
    loop {
        if st.cancelling {
            drop(st);
            std::panic::panic_any(Cancelled);
        }
        if matches!(st.threads[tid].status, Status::Granted) {
            break;
        }
        st = exec.cv.wait(st).unwrap();
    }
    st.threads[tid].clock.tick(tid);
    st.steps += 1;
    let d = std::mem::take(&mut st.threads[tid].desc);
    st.log(tid, &d);
    {
        let ctx = &mut CtxImpl { st: &mut st };
        ctx.mutex_release(mutex, tid);
        ctx.park_on_condvar(tid, cv, mutex);
    }
    st.active = None;
    exec.cv.notify_all();
    // Stage 2: wait to be granted the reacquire (a notify converted the
    // intent to Lock(mutex); the coordinator grants it when free).
    loop {
        if st.cancelling {
            drop(st);
            std::panic::panic_any(Cancelled);
        }
        if matches!(st.threads[tid].status, Status::Granted) {
            break;
        }
        st = exec.cv.wait(st).unwrap();
    }
    st.threads[tid].clock.tick(tid);
    st.steps += 1;
    st.log(tid, &format!("condvar#{cv} woke (reacquire mutex#{mutex})"));
    CtxImpl { st: &mut st }.mutex_acquire(mutex, tid);
    st.threads[tid].status = Status::Running;
    st.active = None;
    exec.cv.notify_all();
}

/// Spawn a model thread running `f`; returns its model tid.
pub(crate) fn spawn_model_thread(f: Box<dyn FnOnce() + Send>) -> Tid {
    let (exec, _parent) = with_current();
    let child = op(IntentKind::Step, "spawn".to_string(), |ctx, tid| {
        ctx.spawn_thread(tid)
    });
    let exec2 = Arc::clone(&exec);
    let handle = std::thread::Builder::new()
        .name(format!("model-t{child}"))
        .spawn(move || thread_main(exec2, child, f))
        .expect("spawn model thread");
    let mut st = exec.state.lock().unwrap();
    st.real_handles.push(handle);
    exec.cv.notify_all();
    child
}

/// Join intent against a model thread.
pub(crate) fn join_model_thread(target: Tid) {
    op(
        IntentKind::Join(target),
        format!("join t{target}"),
        |ctx, tid| {
            let c = ctx.clock_of(target);
            ctx.join_clock(tid, &c);
        },
    );
}

/// A pure scheduling point.
pub(crate) fn yield_point() {
    op(IntentKind::Step, "yield".to_string(), |_ctx, _tid| {});
}

fn thread_main(exec: Arc<Exec>, tid: Tid, f: Box<dyn FnOnce() + Send>) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
    let result = catch_unwind(AssertUnwindSafe(f));
    let mut st = exec.state.lock().unwrap();
    match result {
        Ok(()) => {
            st.threads[tid].clock.tick(tid);
            if !st.threads[tid].held.is_empty() && !st.cancelling {
                let names: Vec<String> = st.threads[tid]
                    .held
                    .iter()
                    .map(|(_, n)| n.clone())
                    .collect();
                st.fail(
                    ViolationCode::LockLeaked,
                    format!("t{tid} finished while holding {}", names.join(", ")),
                );
            }
        }
        Err(payload) => {
            if !payload.is::<Cancelled>() && !st.cancelling {
                let msg = payload_message(payload.as_ref());
                st.fail(
                    ViolationCode::InvariantViolated,
                    format!("t{tid} panicked: {msg}"),
                );
            }
        }
    }
    st.threads[tid].status = Status::Finished;
    drop(st);
    exec.cv.notify_all();
    CURRENT.with(|c| *c.borrow_mut() = None);
}

fn intent_enabled(st: &ExecState, tid: Tid) -> bool {
    match &st.threads[tid].status {
        Status::AtPoint(Intent::Step) => true,
        Status::AtPoint(Intent::Lock(m)) => match &st.objects[*m] {
            ObjState::Mutex { owner, .. } => owner.is_none(),
            _ => unreachable!("lock intent on non-mutex"),
        },
        Status::AtPoint(Intent::Join(t)) => matches!(st.threads[*t].status, Status::Finished),
        Status::AtPoint(Intent::WaitNotify(..)) => false,
        _ => false,
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Outcome of one executed schedule.
struct RunOutcome {
    trace: Vec<(usize, usize)>,
    failure: Option<Violation>,
    advisories: Vec<Violation>,
    lock_edges: BTreeSet<(String, String)>,
}

fn run_once(
    b: &Builder,
    schedule: &[usize],
    mode: Mode,
    rng_seed: u64,
    f: &Arc<dyn Fn() + Send + Sync>,
) -> RunOutcome {
    let exec = Arc::new(Exec {
        state: StdMutex::new(ExecState {
            threads: vec![ThreadSlot {
                status: Status::Running,
                clock: VClock::new(),
                held: Vec::new(),
                desc: String::new(),
            }],
            objects: Vec::new(),
            schedule: schedule.to_vec(),
            trace: Vec::new(),
            active: None,
            failure: None,
            advisories: Vec::new(),
            lock_edges: BTreeSet::new(),
            cancelling: false,
            mode,
            rng: rng_seed,
            steps: 0,
            max_steps: b.max_steps,
            max_threads: b.max_threads,
            op_log: Vec::new(),
            real_handles: Vec::new(),
            spawned_real: 1,
            joined_real: 0,
        }),
        cv: StdCondvar::new(),
    });

    // The root model thread.
    let root_exec = Arc::clone(&exec);
    let g = Arc::clone(f);
    let root = std::thread::Builder::new()
        .name("model-t0".to_string())
        .spawn(move || thread_main(root_exec, 0, Box::new(move || g())))
        .expect("spawn model root thread");
    exec.state.lock().unwrap().real_handles.push(root);

    // Coordinator loop.
    let mut st = exec.state.lock().unwrap();
    loop {
        while st
            .threads
            .iter()
            .any(|t| matches!(t.status, Status::Running | Status::Granted))
            && st.failure.is_none()
        {
            st = exec.cv.wait(st).unwrap();
        }
        if st.failure.is_some() {
            st.cancelling = true;
            exec.cv.notify_all();
            break;
        }
        if st
            .threads
            .iter()
            .all(|t| matches!(t.status, Status::Finished))
        {
            break;
        }
        let runnable: Vec<Tid> = (0..st.threads.len())
            .filter(|&t| intent_enabled(&st, t))
            .collect();
        if runnable.is_empty() {
            let blocked: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !matches!(t.status, Status::Finished))
                .map(|(i, t)| format!("t{i} ({})", t.desc))
                .collect();
            st.fail(
                ViolationCode::Deadlock,
                format!("deadlock: no thread can run ({})", blocked.join("; ")),
            );
            st.cancelling = true;
            exec.cv.notify_all();
            break;
        }
        if st.steps >= st.max_steps {
            let budget = st.max_steps;
            st.fail(
                ViolationCode::InvariantViolated,
                format!("interleaving exceeded the {budget}-operation budget"),
            );
            st.cancelling = true;
            exec.cv.notify_all();
            break;
        }
        let k = st.trace.len();
        let chosen = if k < st.schedule.len() {
            st.schedule[k].min(runnable.len() - 1)
        } else {
            match st.mode {
                Mode::Dfs => 0,
                Mode::Random => {
                    let r = xorshift(&mut st.rng);
                    (r as usize) % runnable.len()
                }
            }
        };
        st.trace.push((runnable.len(), chosen));
        let tid = runnable[chosen];
        st.threads[tid].status = Status::Granted;
        st.active = Some(tid);
        exec.cv.notify_all();
    }

    // Join every real thread (handles keep arriving until spawned ==
    // joined; a spawn effect always precedes its handle push by a
    // panic-free stretch of the parent).
    loop {
        let handle = {
            if let Some(h) = st.real_handles.pop() {
                st.joined_real += 1;
                Some(h)
            } else if st.joined_real >= st.spawned_real {
                None
            } else {
                st = exec.cv.wait(st).unwrap();
                continue;
            }
        };
        match handle {
            Some(h) => {
                drop(st);
                let _ = h.join();
                st = exec.state.lock().unwrap();
            }
            None => break,
        }
    }

    let state = &mut *st;
    RunOutcome {
        trace: std::mem::take(&mut state.trace),
        failure: state.failure.take(),
        advisories: std::mem::take(&mut state.advisories),
        lock_edges: std::mem::take(&mut state.lock_edges),
    }
}

/// Detect a cycle in the accumulated lock-order graph; returns one cycle
/// as a name path when present.
fn lock_cycle(edges: &BTreeSet<(String, String)>) -> Option<Vec<String>> {
    let nodes: BTreeSet<&String> = edges.iter().flat_map(|(a, b)| [a, b]).collect();
    // Iterative DFS with colors; deterministic order via BTreeSet.
    fn visit<'a>(
        node: &'a String,
        edges: &'a BTreeSet<(String, String)>,
        visiting: &mut Vec<&'a String>,
        done: &mut BTreeSet<&'a String>,
    ) -> Option<Vec<String>> {
        if done.contains(node) {
            return None;
        }
        if let Some(pos) = visiting.iter().position(|n| *n == node) {
            let mut cycle: Vec<String> = visiting[pos..].iter().map(|s| (*s).clone()).collect();
            cycle.push(node.clone());
            return Some(cycle);
        }
        visiting.push(node);
        for (a, b) in edges.iter() {
            if a == node {
                if let Some(c) = visit(b, edges, visiting, done) {
                    return Some(c);
                }
            }
        }
        visiting.pop();
        done.insert(node);
        None
    }
    let mut done = BTreeSet::new();
    for n in nodes {
        let mut visiting = Vec::new();
        if let Some(c) = visit(n, edges, &mut visiting, &mut done) {
            return Some(c);
        }
    }
    None
}

/// Explore every interleaving of the model program `f` (bounded by the
/// builder), reporting violations, advisories, and the lock-order graph.
///
/// The first error-class violation stops the exploration: its report
/// carries the full operation trace of the offending interleaving, which
/// — because scheduling is deterministic — replays identically from the
/// same builder.
pub fn explore<F>(b: &Builder, f: F) -> ModelReport
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut report = ModelReport {
        interleavings: 0,
        sampled: 0,
        exhausted: false,
        violations: Vec::new(),
        advisories: Vec::new(),
        lock_edges: Vec::new(),
    };
    let mut edges: BTreeSet<(String, String)> = BTreeSet::new();
    let mut schedule: Vec<usize> = Vec::new();
    let mut failed = false;

    // Phase 1: exhaustive DFS over choice points.
    loop {
        if report.interleavings >= b.max_interleavings {
            break;
        }
        let out = run_once(b, &schedule, Mode::Dfs, b.seed, &f);
        report.interleavings += 1;
        for a in out.advisories {
            if !report.advisories.iter().any(|v| v.message == a.message) {
                report.advisories.push(a);
            }
        }
        edges.extend(out.lock_edges);
        if let Some(v) = out.failure {
            report.violations.push(v);
            failed = true;
            break;
        }
        // Backtrack: deepest decision with an untried alternative.
        match out.trace.iter().rposition(|&(n, chosen)| chosen + 1 < n) {
            Some(i) => {
                schedule = out.trace[..i].iter().map(|&(_, c)| c).collect();
                schedule.push(out.trace[i].1 + 1);
            }
            None => {
                report.exhausted = true;
                break;
            }
        }
    }

    // Phase 2: seeded-random fallback when the DFS budget ran out.
    if !failed && !report.exhausted {
        let mut seed = b.seed | 1;
        for _ in 0..b.random_fallback {
            xorshift(&mut seed);
            let out = run_once(b, &[], Mode::Random, seed, &f);
            report.sampled += 1;
            for a in out.advisories {
                if !report.advisories.iter().any(|v| v.message == a.message) {
                    report.advisories.push(a);
                }
            }
            edges.extend(out.lock_edges);
            if let Some(v) = out.failure {
                report.violations.push(v);
                break;
            }
        }
    }

    if let Some(cycle) = lock_cycle(&edges) {
        report.violations.push(Violation {
            code: ViolationCode::LockOrderCycle,
            message: format!("lock-order cycle: {}", cycle.join(" -> ")),
            trace: Vec::new(),
        });
    }
    report.lock_edges = edges.into_iter().collect();
    report
}
