//! [`RaceCell`]: a deliberately *unsynchronized* shared location. This
//! is how a model program says "plain non-atomic data lives here" — the
//! checker applies the FastTrack-style vector-clock discipline to every
//! access and reports `A0701` when two conflicting accesses are
//! concurrent (neither happens-before the other).

use std::cell::UnsafeCell;

use super::{op, register_object, IntentKind, ObjId, ObjectKind};

/// A shared, unsynchronized, `Copy` location under race detection.
#[derive(Debug)]
pub struct RaceCell<T> {
    id: ObjId,
    name: String,
    value: UnsafeCell<T>,
}

// Safety: the model coordinator serializes all accesses (each is an
// `op`); the race *detector*, not UB, is what flags concurrent use.
unsafe impl<T: Send> Send for RaceCell<T> {}
unsafe impl<T: Send> Sync for RaceCell<T> {}

impl<T: Copy> RaceCell<T> {
    pub fn new(value: T) -> Self {
        let id = register_object(ObjectKind::Cell);
        RaceCell {
            id,
            name: format!("cell#{id}"),
            value: UnsafeCell::new(value),
        }
    }

    /// A cell with a stable name for race reports.
    pub fn named(name: &str, value: T) -> Self {
        let id = register_object(ObjectKind::Cell);
        RaceCell {
            id,
            name: name.to_string(),
            value: UnsafeCell::new(value),
        }
    }

    /// Read the value (a scheduling point + read race check).
    pub fn get(&self) -> T {
        op(
            IntentKind::Step,
            format!("read {}", self.name),
            |ctx, tid| {
                ctx.cell_read(self.id, tid, &self.name);
                // Safety: serialized by the coordinator grant.
                unsafe { *self.value.get() }
            },
        )
    }

    /// Write the value (a scheduling point + write race check).
    pub fn set(&self, v: T) {
        op(
            IntentKind::Step,
            format!("write {}", self.name),
            |ctx, tid| {
                ctx.cell_write(self.id, tid, &self.name);
                // Safety: serialized by the coordinator grant.
                unsafe { *self.value.get() = v }
            },
        )
    }
}
