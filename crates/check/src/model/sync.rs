//! Instrumented synchronization primitives: every operation is a
//! scheduling point in the model, and every access updates the vector
//! clocks per the release/acquire subset of the C11 memory model (see
//! the module docs on [`crate::model`]).
//!
//! These types exist on every build; `--cfg model` merely makes them the
//! definition of [`crate::sync`], so production code compiled under the
//! model cfg runs through them unchanged.

use std::cell::UnsafeCell;

use super::{op, register_object, IntentKind, ObjId, ObjectKind, Tid};

/// Memory orderings, mirroring `std::sync::atomic::Ordering`. The model
/// interprets them on the release/acquire axis only (it executes
/// sequentially-consistent *values* but tracks which orderings would
/// have transferred visibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ordering {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl Ordering {
    fn acquires(self) -> bool {
        matches!(
            self,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    fn releases(self) -> bool {
        matches!(
            self,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        )
    }
}

/// Shared effect body for atomic loads.
fn atomic_load(id: ObjId, name: &str, ord: Ordering) -> u64 {
    op(
        IntentKind::Step,
        format!("load {name} ({ord:?})"),
        |ctx, tid| {
            let (value, sync_clock, last_writer) = ctx.atomic(id);
            let v = *value;
            let published = sync_clock.clone();
            let writer = *last_writer;
            if ord.acquires() {
                match published {
                    Some(c) => ctx.join_clock(tid, &c),
                    None => {
                        if writer.is_some_and(|w| w != tid) {
                            ctx.advise(format!(
                                "acquire load of {name} observes a store that published \
                                 no release: the load synchronizes with nothing"
                            ));
                        }
                    }
                }
            }
            v
        },
    )
}

/// Shared effect body for atomic stores.
fn atomic_store(id: ObjId, name: &str, v: u64, ord: Ordering) {
    op(
        IntentKind::Step,
        format!("store {name} ({ord:?})"),
        |ctx, tid| {
            let me = ctx.clock_of(tid);
            let (value, sync_clock, last_writer) = ctx.atomic(id);
            *value = v;
            *last_writer = Some(tid);
            // A plain store starts a new release sequence (releasing) or
            // destroys the current one (relaxed).
            *sync_clock = if ord.releases() { Some(me) } else { None };
        },
    )
}

/// Shared effect body for read-modify-writes. Returns the old value.
fn atomic_rmw(id: ObjId, name: &str, what: &str, ord: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
    op(
        IntentKind::Step,
        format!("{what} {name} ({ord:?})"),
        |ctx, tid| {
            let me = ctx.clock_of(tid);
            let (value, sync_clock, last_writer) = ctx.atomic(id);
            let old = *value;
            let prev_writer = *last_writer;
            let published = sync_clock.clone();
            *value = f(old);
            *last_writer = Some(tid);
            if ord.releases() {
                // A releasing RMW joins its clock into the sequence.
                let mut c = published.clone().unwrap_or_default();
                c.join(&me);
                *sync_clock = Some(c);
            }
            // A relaxed RMW *continues* the existing release sequence:
            // the published clock, if any, stays.
            if ord.acquires() {
                match published {
                    Some(c) => ctx.join_clock(tid, &c),
                    None => {
                        if prev_writer.is_some_and(|w| w != tid) {
                            ctx.advise(format!(
                                "acquiring {what} of {name} observes a store that \
                                 published no release"
                            ));
                        }
                    }
                }
            }
            old
        },
    )
}

macro_rules! int_atomic {
    ($name:ident, $ty:ty) => {
        /// Instrumented counterpart of the std atomic of the same name.
        #[derive(Debug)]
        pub struct $name {
            id: ObjId,
        }

        impl $name {
            pub fn new(v: $ty) -> Self {
                $name {
                    id: register_object(ObjectKind::Atomic(v as u64)),
                }
            }

            fn label(&self) -> String {
                format!(concat!(stringify!($name), "#{}"), self.id)
            }

            pub fn load(&self, ord: Ordering) -> $ty {
                atomic_load(self.id, &self.label(), ord) as $ty
            }

            pub fn store(&self, v: $ty, ord: Ordering) {
                atomic_store(self.id, &self.label(), v as u64, ord)
            }

            pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                atomic_rmw(self.id, &self.label(), "swap", ord, |_| v as u64) as $ty
            }

            pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                atomic_rmw(self.id, &self.label(), "fetch_add", ord, |old| {
                    (old as $ty).wrapping_add(v) as u64
                }) as $ty
            }

            pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                atomic_rmw(self.id, &self.label(), "fetch_sub", ord, |old| {
                    (old as $ty).wrapping_sub(v) as u64
                }) as $ty
            }

            pub fn fetch_min(&self, v: $ty, ord: Ordering) -> $ty {
                atomic_rmw(self.id, &self.label(), "fetch_min", ord, |old| {
                    (old as $ty).min(v) as u64
                }) as $ty
            }

            pub fn fetch_max(&self, v: $ty, ord: Ordering) -> $ty {
                atomic_rmw(self.id, &self.label(), "fetch_max", ord, |old| {
                    (old as $ty).max(v) as u64
                }) as $ty
            }

            /// Success applies `success` ordering to the RMW; failure is
            /// modeled as a load with the `failure` ordering.
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                let mut swapped = false;
                let old = atomic_rmw(self.id, &self.label(), "compare_exchange", success, |old| {
                    if old as $ty == current {
                        swapped = true;
                        new as u64
                    } else {
                        old
                    }
                }) as $ty;
                if swapped {
                    Ok(old)
                } else {
                    let _ = failure;
                    Err(old)
                }
            }
        }
    };
}

int_atomic!(AtomicU32, u32);
int_atomic!(AtomicU64, u64);
int_atomic!(AtomicUsize, usize);

/// Instrumented counterpart of `std::sync::atomic::AtomicBool`.
#[derive(Debug)]
pub struct AtomicBool {
    id: ObjId,
}

impl AtomicBool {
    pub fn new(v: bool) -> Self {
        AtomicBool {
            id: register_object(ObjectKind::Atomic(v as u64)),
        }
    }

    fn label(&self) -> String {
        format!("AtomicBool#{}", self.id)
    }

    pub fn load(&self, ord: Ordering) -> bool {
        atomic_load(self.id, &self.label(), ord) != 0
    }

    pub fn store(&self, v: bool, ord: Ordering) {
        atomic_store(self.id, &self.label(), v as u64, ord)
    }

    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        atomic_rmw(self.id, &self.label(), "swap", ord, |_| v as u64) != 0
    }

    pub fn fetch_or(&self, v: bool, ord: Ordering) -> bool {
        atomic_rmw(self.id, &self.label(), "fetch_or", ord, |old| {
            old | v as u64
        }) != 0
    }

    pub fn fetch_and(&self, v: bool, ord: Ordering) -> bool {
        atomic_rmw(self.id, &self.label(), "fetch_and", ord, |old| {
            old & v as u64
        }) != 0
    }
}

/// Instrumented mutex. Lock acquisition is a *blocking* intent — the
/// coordinator only grants it while the mutex is free — so every
/// lock/unlock interleaving is explored and a cycle of waiting threads
/// is reported as a deadlock rather than hanging the test.
#[derive(Debug)]
pub struct Mutex<T> {
    id: ObjId,
    name: String,
    value: UnsafeCell<T>,
}

// Safety: the coordinator grants at most one thread between scheduling
// points, and data access goes through the guard, which requires the
// model-level acquisition.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        let id = register_object(ObjectKind::Mutex(None));
        Mutex {
            id,
            name: format!("mutex#{id}"),
            value: UnsafeCell::new(value),
        }
    }

    /// A mutex with a stable name for lock-order reporting.
    pub fn named(name: &str, value: T) -> Self {
        let id = register_object(ObjectKind::Mutex(Some(name.to_string())));
        Mutex {
            id,
            name: name.to_string(),
            value: UnsafeCell::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        op(
            IntentKind::Lock(self.id),
            format!("lock {}", self.name),
            |ctx, tid| ctx.mutex_acquire(self.id, tid),
        );
        MutexGuard { m: self }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let got = op(
            IntentKind::Step,
            format!("try_lock {}", self.name),
            |ctx, tid| ctx.mutex_try_acquire(self.id, tid),
        );
        if got {
            Some(MutexGuard { m: self })
        } else {
            None
        }
    }

    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

pub struct MutexGuard<'a, T> {
    m: &'a Mutex<T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the model granted this thread the lock.
        unsafe { &*self.m.value.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: as above, plus the guard is uniquely borrowed.
        unsafe { &mut *self.m.value.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        op(
            IntentKind::Step,
            format!("unlock {}", self.m.name),
            |ctx, tid: Tid| ctx.mutex_release(self.m.id, tid),
        );
    }
}

/// Instrumented condition variable. `wait` releases the guard's mutex
/// and parks until a notify re-arms the thread as a lock waiter; a
/// program whose only runnable threads are all parked here is a lost
/// wakeup, reported as a deadlock.
#[derive(Debug)]
pub struct Condvar {
    id: ObjId,
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl Condvar {
    pub fn new() -> Self {
        Condvar {
            id: register_object(ObjectKind::Cond),
        }
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let m = guard.m;
        // The model releases the mutex inside the wait-enter op; the
        // guard must not run its unlock Drop.
        std::mem::forget(guard);
        super::condvar_wait(self.id, m.id);
        MutexGuard { m }
    }

    pub fn notify_one(&self) {
        let id = self.id;
        op(
            IntentKind::Step,
            format!("notify_one condvar#{id}"),
            |ctx, _tid| ctx.notify(id, false),
        );
    }

    pub fn notify_all(&self) {
        let id = self.id;
        op(
            IntentKind::Step,
            format!("notify_all condvar#{id}"),
            |ctx, _tid| ctx.notify(id, true),
        );
    }
}
