//! Static lock-order analysis over Rust sources.
//!
//! A lightweight, line-oriented scan (no syn, no rustc): it tracks
//! `let guard = <path>.lock()` bindings to the end of their enclosing
//! brace block (or an explicit `drop(guard)`), treats any further
//! `.lock()` while a guard is live as a *lock-order edge*
//! `held -> acquired`, and reports cycles in the resulting graph —
//! the static complement of the dynamic edges the model checker
//! collects during exploration.
//!
//! Lock names are the last path segment of the receiver expression
//! (`self.shared.best.lock()` ⇒ `best`), so distinct mutexes stored in
//! same-named fields alias; the scan is a reviewable report
//! (`pipesched lint --concurrency`), not a proof, and it deliberately
//! over-approximates.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One `held -> acquired` ordering observation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    pub held: String,
    pub acquired: String,
    /// Where the inner acquisition happens.
    pub file: String,
    pub line: usize,
}

/// Scan results for a set of roots.
#[derive(Debug, Default)]
pub struct LockOrderReport {
    /// Total `.lock()` sites seen.
    pub sites: usize,
    /// Files scanned.
    pub files: usize,
    /// Deduplicated ordering edges.
    pub edges: Vec<LockEdge>,
    /// Cycles found in the edge graph (each a name path, first == last).
    pub cycles: Vec<Vec<String>>,
}

struct Held {
    /// The guard binding identifier (for `drop(g)` release).
    binding: String,
    /// Lock name.
    name: String,
    /// Brace depth at which the binding lives; popped when depth drops
    /// below it.
    depth: i32,
}

/// Extract the lock name: the last identifier of the receiver path
/// ending at byte offset `end` (exclusive) in `line`.
fn receiver_name(line: &str, end: usize) -> Option<String> {
    let bytes = line.as_bytes();
    let mut i = end;
    // Walk back over the path expression: idents, `.`, `::`, `_`.
    while i > 0 {
        let c = bytes[i - 1] as char;
        if c.is_alphanumeric() || c == '_' || c == '.' || c == ':' {
            i -= 1;
        } else {
            break;
        }
    }
    let path = &line[i..end];
    let last = path.rsplit(['.', ':']).find(|s| !s.is_empty())?;
    if last.chars().next()?.is_alphabetic() {
        Some(last.to_string())
    } else {
        None
    }
}

/// The `let <ident> =` binding introduced on this line, if the `.lock()`
/// call at `at` belongs to its initializer.
fn let_binding(line: &str, at: usize) -> Option<String> {
    let trimmed = line.trim_start();
    let rest = trimmed.strip_prefix("let ")?;
    let eq = trimmed.find('=')?;
    let lead = line.len() - trimmed.len();
    if lead + eq > at {
        return None;
    }
    // `let mut g = ...` / `let g = ...` / `let Some(g) = ...` (skip the
    // destructuring forms: no single binding to track).
    let name_part = rest.trim_start_matches("mut ").trim_start();
    let ident: String = name_part
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() || name_part[ident.len()..].trim_start().starts_with('(') {
        None
    } else {
        Some(ident)
    }
}

/// Strip `//` line comments and string literal *contents* (keeps the
/// quotes so offsets stay meaningful for brace counting).
fn strip_noise(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            out.push(' ');
            if c == '\\' {
                if chars.next().is_some() {
                    out.push(' ');
                }
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '/' if chars.peek() == Some(&'/') => break,
            '"' => {
                in_str = true;
                out.push(' ');
            }
            _ => out.push(c),
        }
    }
    out
}

/// Scan one file's source, appending edges and counting sites.
pub fn scan_source(file_label: &str, src: &str, edges: &mut BTreeSet<LockEdge>, sites: &mut usize) {
    let mut depth: i32 = 0;
    let mut held: Vec<Held> = Vec::new();
    for (ln, raw) in src.lines().enumerate() {
        let line = strip_noise(raw);
        // Release guards whose scope this line's closing braces end.
        // Process the line left to right so `}` before a `.lock()` on
        // the same line releases first.
        let mut search = 0usize;
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    held.retain(|h| h.depth <= depth);
                }
                _ => {}
            }
        }
        // `.lock()` sites on this line.
        while let Some(pos) = line[search..].find(".lock()") {
            let at = search + pos;
            *sites += 1;
            if let Some(name) = receiver_name(&line, at) {
                for h in &held {
                    if h.name != name {
                        edges.insert(LockEdge {
                            held: h.name.clone(),
                            acquired: name.clone(),
                            file: file_label.to_string(),
                            line: ln + 1,
                        });
                    }
                }
                if let Some(binding) = let_binding(&line, at) {
                    held.push(Held {
                        binding,
                        name,
                        depth,
                    });
                }
            }
            search = at + ".lock()".len();
        }
        // Explicit early releases: `drop(guard)`.
        let mut dsearch = 0usize;
        while let Some(pos) = line[dsearch..].find("drop(") {
            let at = dsearch + pos + "drop(".len();
            let ident: String = line[at..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !ident.is_empty() {
                held.retain(|h| h.binding != ident);
            }
            dsearch = at;
        }
    }
}

fn collect_rs_files(root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Scan every `.rs` file under the given roots.
pub fn scan_paths(roots: &[PathBuf]) -> LockOrderReport {
    let mut edges = BTreeSet::new();
    let mut sites = 0usize;
    let mut files = 0usize;
    for root in roots {
        let mut list = Vec::new();
        if root.is_file() {
            list.push(root.clone());
        } else {
            collect_rs_files(root, &mut list);
        }
        for path in list {
            let Ok(src) = std::fs::read_to_string(&path) else {
                continue;
            };
            files += 1;
            scan_source(&path.display().to_string(), &src, &mut edges, &mut sites);
        }
    }
    let cycles = find_cycles(&edges);
    LockOrderReport {
        sites,
        files,
        edges: edges.into_iter().collect(),
        cycles,
    }
}

/// Cycles in the `held -> acquired` name graph (at most one reported per
/// starting node; deterministic order).
pub fn find_cycles(edges: &BTreeSet<LockEdge>) -> Vec<Vec<String>> {
    let pairs: BTreeSet<(String, String)> = edges
        .iter()
        .map(|e| (e.held.clone(), e.acquired.clone()))
        .collect();
    let nodes: BTreeSet<&String> = pairs.iter().flat_map(|(a, b)| [a, b]).collect();

    fn visit<'a>(
        node: &'a String,
        pairs: &'a BTreeSet<(String, String)>,
        visiting: &mut Vec<&'a String>,
        done: &mut BTreeSet<&'a String>,
    ) -> Option<Vec<String>> {
        if done.contains(node) {
            return None;
        }
        if let Some(pos) = visiting.iter().position(|n| *n == node) {
            let mut cycle: Vec<String> = visiting[pos..].iter().map(|s| (*s).clone()).collect();
            cycle.push(node.clone());
            return Some(cycle);
        }
        visiting.push(node);
        for (a, b) in pairs.iter() {
            if a == node {
                if let Some(c) = visit(b, pairs, visiting, done) {
                    return Some(c);
                }
            }
        }
        visiting.pop();
        done.insert(node);
        None
    }

    let mut cycles = Vec::new();
    let mut done = BTreeSet::new();
    for n in &nodes {
        let mut visiting = Vec::new();
        if let Some(c) = visit(n, &pairs, &mut visiting, &mut done) {
            cycles.push(c);
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_guards_produce_edges_and_cycles() {
        let a = r#"
            fn f(&self) {
                let g = self.jobs.lock();
                let h = self.stats.lock();
                drop(h);
            }
        "#;
        let b = r#"
            fn g(&self) {
                let s = self.stats.lock();
                self.jobs.lock().push(1);
            }
        "#;
        let mut edges = BTreeSet::new();
        let mut sites = 0;
        scan_source("a.rs", a, &mut edges, &mut sites);
        scan_source("b.rs", b, &mut edges, &mut sites);
        assert_eq!(sites, 4);
        assert!(edges
            .iter()
            .any(|e| e.held == "jobs" && e.acquired == "stats"));
        assert!(edges
            .iter()
            .any(|e| e.held == "stats" && e.acquired == "jobs"));
        let cycles = find_cycles(&edges);
        assert!(!cycles.is_empty(), "jobs->stats->jobs is a cycle");
    }

    #[test]
    fn scope_end_releases_guards() {
        let src = r#"
            fn f(&self) {
                {
                    let g = self.a.lock();
                }
                let h = self.b.lock();
            }
        "#;
        let mut edges = BTreeSet::new();
        let mut sites = 0;
        scan_source("s.rs", src, &mut edges, &mut sites);
        assert_eq!(sites, 2);
        assert!(
            edges.is_empty(),
            "a's guard died before b locked: {edges:?}"
        );
    }

    #[test]
    fn transient_lock_makes_no_binding() {
        let src = r#"
            fn f(&self) {
                self.a.lock().push(1);
                let g = self.b.lock();
            }
        "#;
        let mut edges = BTreeSet::new();
        let mut sites = 0;
        scan_source("s.rs", src, &mut edges, &mut sites);
        assert!(
            edges.is_empty(),
            "transient a.lock() holds nothing: {edges:?}"
        );
    }
}
