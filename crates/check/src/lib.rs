//! pipesched-check: deterministic concurrency checking for the
//! work-stealing search pool and the service tier.
//!
//! Three layers, mirroring how the rest of the workspace treats
//! correctness (independent re-derivation + tamper tests, per DESIGN.md
//! §16):
//!
//! 1. [`sync`] — the facade production code imports. A normal build
//!    gets std atomics and thin poison-free `Mutex`/`Condvar` wrappers;
//!    `RUSTFLAGS="--cfg model"` swaps in the instrumented types.
//! 2. [`model`] — the loom-style checker: [`model::explore`] runs a
//!    closure once per schedulable interleaving (bounded exhaustive DFS
//!    with a seeded xorshift fallback — no wall clock, no OS entropy),
//!    maintains vector clocks ([`vclock`]), and reports violations with
//!    stable `A07xx` codes.
//! 3. [`lockorder`] — a static `.lock()` scan over the source tree
//!    whose `held -> acquired` edges and cycles back `pipesched lint
//!    --concurrency`.
//!
//! The `A07xx` codes are registered in `pipesched-analyze`'s diagnostic
//! registry and documented in the README table; `tests/docs_sync.rs`
//! diffs them both ways.

pub mod lockorder;
pub mod model;
pub mod sync;
pub mod vclock;

/// Stable codes for concurrency findings. The string forms are part of
/// the repo's diagnostic-code namespace (`pipesched-analyze` registers
/// the same codes with severities and summaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationCode {
    /// A0701: two concurrent conflicting accesses to unsynchronized
    /// data (vector clocks incomparable).
    DataRace,
    /// A0702: cycle in the lock-order graph.
    LockOrderCycle,
    /// A0703: an interleaving on which no thread can make progress
    /// (includes lost condvar wakeups).
    Deadlock,
    /// A0704: an acquire load observed a store that published no
    /// release — the load synchronizes with nothing (advisory).
    AcquireMisuse,
    /// A0705: a model-program invariant failed (harness assertion
    /// panicked, or an exploration bound was exceeded).
    InvariantViolated,
    /// A0706: a thread finished while still holding a lock.
    LockLeaked,
}

impl ViolationCode {
    /// The stable diagnostic code string.
    pub fn as_str(self) -> &'static str {
        match self {
            ViolationCode::DataRace => "A0701",
            ViolationCode::LockOrderCycle => "A0702",
            ViolationCode::Deadlock => "A0703",
            ViolationCode::AcquireMisuse => "A0704",
            ViolationCode::InvariantViolated => "A0705",
            ViolationCode::LockLeaked => "A0706",
        }
    }
}

impl std::fmt::Display for ViolationCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding from an exploration, with the operation trace of the
/// interleaving that produced it (error-class findings only; the trace
/// replays deterministically from the same [`model::Builder`]).
#[derive(Debug, Clone)]
pub struct Violation {
    pub code: ViolationCode,
    pub message: String,
    /// `t<id>: <op>` lines, in schedule order, capped at 256 entries.
    pub trace: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)?;
        if !self.trace.is_empty() {
            write!(f, "\n  trace ({} ops):", self.trace.len())?;
            for line in &self.trace {
                write!(f, "\n    {line}")?;
            }
        }
        Ok(())
    }
}
