//! Property tests for the schedule certifier.
//!
//! 1. Whatever any scheduler in the workspace produces on a random block
//!    and machine certifies clean — three independent timing
//!    implementations agree.
//! 2. Corrupting an optimal schedule by swapping two positions (keeping
//!    the old η/μ claim) is either rejected with the right diagnostic
//!    code, or the swap was between timing-equivalent instructions and
//!    the derived μ still matches.

use proptest::prelude::*;

use pipesched_analyze::certify::{certify, Claim};
use pipesched_analyze::{certify_scheduled, DiagCode};
use pipesched_core::{
    list_schedule, parallel::parallel_search, search, windowed_schedule, ParallelConfig,
    SchedContext, Scheduler, SearchConfig,
};
use pipesched_ir::{BasicBlock, BlockAnalysis, BlockBuilder, DepDag, Op, TupleId};
use pipesched_machine::presets;

/// Random block of at most `max_len` instructions (same byte-script scheme
/// as the core crate's property tests; the cap keeps λ = ∞ searches
/// tractable on the unpipelined functional-units machine).
fn block_from_script(script: &[u8], max_len: usize) -> BasicBlock {
    let mut b = BlockBuilder::new("cprop");
    let vars = ["a", "b", "c", "d"];
    for chunk in script.chunks(2) {
        if b.len() >= max_len {
            break;
        }
        let (op, x) = (chunk[0], chunk.get(1).copied().unwrap_or(0));
        let blk = b.clone().finish_unchecked();
        let producers: Vec<TupleId> = blk
            .ids()
            .filter(|&i| blk.tuple(i).op.produces_value())
            .collect();
        match op % 5 {
            0 => {
                b.load(vars[x as usize % vars.len()]);
            }
            1 => {
                b.constant(i64::from(x));
            }
            2 | 3 if !producers.is_empty() => {
                let l = producers[x as usize % producers.len()];
                let r = producers[(x / 5) as usize % producers.len()];
                let ops = [Op::Add, Op::Sub, Op::Mul, Op::Div];
                b.binary(ops[x as usize % 4], l, r);
            }
            4 if !producers.is_empty() => {
                let v = producers[x as usize % producers.len()];
                b.store(vars[(x / 3) as usize % vars.len()], v);
            }
            _ => {
                b.load(vars[x as usize % vars.len()]);
            }
        }
    }
    if b.is_empty() {
        b.load("a");
    }
    b.finish().expect("valid by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_scheduler_certifies_clean(
        script in proptest::collection::vec(any::<u8>(), 2..40),
        machine_sel in any::<u8>(),
        window in 1usize..6,
    ) {
        let block = block_from_script(&script, 10);
        let machines = presets::all_presets();
        let machine = &machines[machine_sel as usize % machines.len()];
        let dag = DepDag::build(&block);
        let analysis = BlockAnalysis::compute(&dag);
        let ctx = SchedContext::new(&block, &dag, machine);

        let bnb = Scheduler::new(machine.clone()).with_lambda(20_000).schedule(&block);
        let cert = certify_scheduled(&block, machine, &bnb);
        prop_assert!(cert.is_certified(), "bnb:\n{}", cert.report);
        prop_assert_eq!(cert.derived_nops, Some(u64::from(bnb.nops)));

        let list = list_schedule(&dag, &analysis);
        let cert = certify(&block, machine, Claim { order: &list, ..Claim::default() });
        prop_assert!(cert.is_certified(), "list:\n{}", cert.report);
        prop_assert!(cert.derived_nops.unwrap() >= u64::from(bnb.nops));

        let w = windowed_schedule(&ctx, window, 20_000);
        let cert = certify(&block, machine, Claim {
            order: &w.order,
            etas: Some(&w.etas),
            nops: Some(w.nops),
            ..Claim::default()
        });
        prop_assert!(cert.is_certified(), "windowed:\n{}", cert.report);

        let par = parallel_search(
            &ctx,
            &SearchConfig::with_lambda(20_000),
            &ParallelConfig::with_threads(2),
        );
        let cert = certify(&block, machine, Claim {
            order: &par.order,
            assignment: Some(&par.assignment),
            etas: Some(&par.etas),
            nops: Some(par.nops),
        });
        prop_assert!(cert.is_certified(), "parallel:\n{}", cert.report);
    }

    #[test]
    fn single_swap_is_rejected_or_equivalent(
        script in proptest::collection::vec(any::<u8>(), 2..40),
        machine_sel in any::<u8>(),
        raw_i in any::<u8>(),
        raw_j in any::<u8>(),
    ) {
        let block = block_from_script(&script, 8);
        let machines = presets::all_presets();
        let machine = &machines[machine_sel as usize % machines.len()];
        let dag = DepDag::build(&block);
        let ctx = SchedContext::new(&block, &dag, machine);
        let optimal = search(&ctx, &SearchConfig::with_lambda(u64::MAX));
        prop_assert!(optimal.optimal);

        let n = optimal.order.len();
        let (i, j) = (raw_i as usize % n, raw_j as usize % n);
        prop_assume!(i != j);
        let mut mutated = optimal.order.clone();
        mutated.swap(i, j);

        let cert = certify(&block, machine, Claim {
            order: &mutated,
            etas: Some(&optimal.etas),
            nops: Some(optimal.nops),
            ..Claim::default()
        });
        if cert.is_certified() {
            // The swapped instructions were timing-equivalent: the old η
            // claim still describes the mutated order exactly.
            prop_assert_eq!(cert.derived_nops, Some(u64::from(optimal.nops)));
        } else {
            // Rejection must come from the certifier's own vocabulary:
            // an ordering violation or a padding mismatch.
            let codes = [
                DiagCode::DependenceViolation,
                DiagCode::EtaMismatch,
                DiagCode::NopCountMismatch,
            ];
            prop_assert!(
                cert.report.diagnostics().iter().all(|d| codes.contains(&d.code)),
                "unexpected diagnostics:\n{}",
                cert.report
            );
        }
        // Whenever the mutated order is still *legal*, optimality of the
        // original bounds it from below.
        if !cert.report.has_code(DiagCode::DependenceViolation) {
            prop_assert!(cert.derived_nops.unwrap() >= u64::from(optimal.nops));
        }
    }
}
