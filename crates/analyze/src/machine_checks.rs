//! Machine-description lints (codes `A02xx`).
//!
//! [`Machine::validate`] enforces the hard rules at construction time;
//! these lints re-check them (`A0201`/`A0202`/`A0207`/`A0208` — defense in
//! depth, and they report *every* violation rather than the first) and add
//! the soft ones a valid machine can still trip: unreachable pipelines,
//! value ops with `σ = ∅`, enqueue times exceeding latency, and
//! descriptions so degenerate that scheduling cannot matter.

use pipesched_ir::Op;
use pipesched_machine::{Machine, PipelineId};

use crate::diag::{DiagCode, Diagnostic, Report};

/// Latency above which `A0203` fires. The paper's deepest unit is 8 ticks;
/// real-world long-latency units (dividers, sqrt) stay well under this.
pub const ABSURD_LATENCY: u32 = 64;

/// Operations whose unmapped state is worth flagging (`A0206`). `Const` and
/// `Store` are deliberately left unmapped by the paper's presets (§3.1),
/// and `Neg`/`Mov` are front-end conveniences, so none of those qualify.
const EXPECTED_MAPPED: [Op; 5] = [Op::Load, Op::Add, Op::Sub, Op::Mul, Op::Div];

/// Run every machine lint over `machine`.
pub fn check_machine(machine: &Machine) -> Report {
    let mut report = Report::new(format!("machine `{}`", machine.name));
    check_pipelines(machine, &mut report);
    check_mapping(machine, &mut report);
    report
}

fn check_pipelines(machine: &Machine, report: &mut Report) {
    for (i, p) in machine.pipelines().iter().enumerate() {
        let id = PipelineId(i as u32);
        if p.latency == 0 {
            report.push(Diagnostic::new(
                DiagCode::ZeroLatency,
                format!("pipeline {id} ({}) has latency 0", p.function),
            ));
        }
        if p.enqueue == 0 {
            report.push(Diagnostic::new(
                DiagCode::ZeroEnqueue,
                format!("pipeline {id} ({}) has enqueue time 0", p.function),
            ));
        }
        if p.latency > ABSURD_LATENCY {
            report.push(
                Diagnostic::new(
                    DiagCode::AbsurdLatency,
                    format!(
                        "pipeline {id} ({}) has latency {} (> {ABSURD_LATENCY})",
                        p.function, p.latency
                    ),
                )
                .with_hint("schedules will be dominated by NOP padding for this unit"),
            );
        }
        if p.enqueue > p.latency && p.latency > 0 {
            report.push(
                Diagnostic::new(
                    DiagCode::EnqueueExceedsLatency,
                    format!(
                        "pipeline {id} ({}) is busy for {} ticks but delivers results after {}",
                        p.function, p.enqueue, p.latency
                    ),
                )
                .with_hint("an unpipelined unit is modeled with enqueue == latency (§2.1)"),
            );
        }
        if !machine.mapping().values().any(|ids| ids.contains(&id)) {
            report.push(
                Diagnostic::new(
                    DiagCode::UnreachablePipeline,
                    format!("no operation maps to pipeline {id} ({})", p.function),
                )
                .with_hint("dead hardware: remove the pipeline or map an operation to it"),
            );
        }
    }
}

fn check_mapping(machine: &Machine, report: &mut Report) {
    for (&op, ids) in machine.mapping() {
        if op == Op::Nop {
            report.push(Diagnostic::new(
                DiagCode::NopMapped,
                "Nop is mapped to a pipeline; NOPs never occupy a unit",
            ));
        }
        for &id in ids {
            if id.index() >= machine.pipeline_count() {
                report.push(Diagnostic::new(
                    DiagCode::UnknownPipeline,
                    format!("{op} is mapped to pipeline {id}, which does not exist"),
                ));
            }
        }
        let mut sorted: Vec<PipelineId> = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != ids.len() {
            report.push(
                Diagnostic::new(
                    DiagCode::DuplicateMapping,
                    format!("the mapping entry for {op} lists the same pipeline twice"),
                )
                .with_hint("duplicate units inflate the pipeline-selection search for nothing"),
            );
        }
    }
    for op in EXPECTED_MAPPED {
        if machine.pipelines_for(op).is_empty() {
            report.push(
                Diagnostic::new(
                    DiagCode::UnmappedOp,
                    format!(
                        "{op} uses no pipeline (σ = ∅): it issues in one cycle, never conflicts"
                    ),
                )
                .with_hint("intentional for free ops; a typo here silently removes all hazards"),
            );
        }
    }
    if machine.mapping().values().all(Vec::is_empty) {
        report.push(
            Diagnostic::new(
                DiagCode::DegenerateMachine,
                "no operation is mapped to any pipeline; every order needs zero NOPs",
            )
            .with_hint("scheduling is a no-op on this machine"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_machine::presets;

    #[test]
    fn presets_have_no_machine_errors() {
        for m in presets::all_presets() {
            let report = check_machine(&m);
            assert!(!report.has_errors(), "{}:\n{report}", m.name);
        }
    }

    #[test]
    fn unreachable_pipeline_flagged() {
        let mut b = Machine::builder("extra-unit");
        let l = b.pipeline("loader", 2, 1);
        b.pipeline("idle", 3, 1);
        b.map(Op::Load, &[l]);
        let report = check_machine(&b.build().unwrap());
        assert!(report.has_code(DiagCode::UnreachablePipeline), "{report}");
        assert!(report.has_code(DiagCode::UnmappedOp));
        assert!(!report.has_errors());
    }

    #[test]
    fn degenerate_and_duplicate_mapping() {
        let mut b = Machine::builder("degenerate");
        b.map(Op::Load, &[]);
        let report = check_machine(&b.build().unwrap());
        assert!(report.has_code(DiagCode::DegenerateMachine), "{report}");

        let mut b = Machine::builder("dup");
        let l = b.pipeline("loader", 2, 1);
        b.map(Op::Load, &[l, l]);
        let report = check_machine(&b.build().unwrap());
        assert!(report.has_code(DiagCode::DuplicateMapping), "{report}");
    }

    #[test]
    fn timing_oddities_are_warnings() {
        let mut b = Machine::builder("odd");
        let d = b.pipeline("divider", 8, 12);
        let s = b.pipeline("slow", 100, 1);
        b.map(Op::Div, &[d]);
        b.map(Op::Mul, &[s]);
        let report = check_machine(&b.build().unwrap());
        assert!(report.has_code(DiagCode::EnqueueExceedsLatency), "{report}");
        assert!(report.has_code(DiagCode::AbsurdLatency));
        assert!(!report.has_errors());
    }
}
