#![warn(missing_docs)]

//! Static diagnostics and schedule certification for the `pipesched`
//! workspace.
//!
//! Three layers, one diagnostics vocabulary:
//!
//! * [`ir_checks`] — well-formedness and code-quality passes over basic
//!   blocks (codes `A01xx`): dangling or forward operand references,
//!   dependence-DAG and slack-bound consistency, duplicate and unused
//!   tuples, dead stores;
//! * [`dataflow`] — a generic worklist dataflow solver over straight-line
//!   tuple IR (reaching definitions, coupled liveness, available values,
//!   value numbering, constants) feeding deeper `A05xx` lints:
//!   liveness-dead stores, undefined uses, orphan tuples, transitively
//!   implied dependence edges;
//! * [`opt_validate`] — translation validation of the front-end
//!   optimizer (codes `A0505`–`A0510`): every pass emits a rewrite
//!   witness transcript, and [`opt_validate::validate_transcript`]
//!   replays it against independently derived dataflow facts, rejecting
//!   unjustified or unwitnessed rewrites;
//! * [`machine_checks`] — lints over machine descriptions (codes `A02xx`):
//!   zero or absurd latencies, unreachable pipelines, operations no
//!   pipeline executes, degenerate descriptions;
//! * [`certify`] — a schedule certifier (codes `A03xx`) that re-derives
//!   issue times **independently** of both the scheduler's incremental
//!   engine and the cycle-accurate simulator, then checks a scheduler's
//!   claimed order, pipeline assignment, η padding, and μ against the
//!   re-derivation; [`cross`] turns it on all four schedulers at once.
//!
//! Every check reports through [`Report`]: structured diagnostics with
//! stable [`DiagCode`]s, severities, optional tuple anchors and fix hints,
//! rendered as text or JSON. The `pipesched lint` and `pipesched certify`
//! CLI subcommands are thin wrappers over this crate.

pub mod certify;
pub mod cross;
pub mod dataflow;
pub mod diag;
pub mod ir_checks;
pub mod machine_checks;
pub mod opt_validate;

pub use certify::{
    certify, certify_scheduled, derive_issue_times, extract_deps, Certification, Claim, Dep,
};
pub use cross::cross_check;
pub use diag::{DiagCode, Diagnostic, Report, Severity};
pub use ir_checks::check_block;
pub use machine_checks::check_machine;
pub use opt_validate::{optimize_verified, validate_transcript, verify_opt_forced, OptRejection};

use pipesched_core::ScheduledBlock;
use pipesched_ir::BasicBlock;
use pipesched_machine::Machine;

/// Lint a block and the machine it targets in one report.
pub fn lint(block: &BasicBlock, machine: &Machine) -> Report {
    let mut report = check_block(block);
    report.merge(check_machine(machine));
    report
}

/// Assert (in debug builds only) that a scheduler's output certifies
/// clean, panicking with the rendered report otherwise.
///
/// This is the `debug_assertions` hook the CLI and the bench harness call
/// on every schedule they produce; release builds compile it away.
#[inline]
pub fn debug_assert_certified(block: &BasicBlock, machine: &Machine, scheduled: &ScheduledBlock) {
    if cfg!(debug_assertions) {
        let cert = certify::certify_scheduled(block, machine, scheduled);
        assert!(
            cert.is_certified(),
            "schedule failed certification:\n{}",
            cert.report
        );
    }
}

/// [`debug_assert_certified`] for callers that hold a raw [`Claim`] rather
/// than a [`ScheduledBlock`] — the scheduling service certifies every
/// response (including cache hits replayed onto a renamed block) through
/// this hook.
#[inline]
pub fn debug_assert_claim_certified(block: &BasicBlock, machine: &Machine, claim: Claim<'_>) {
    if cfg!(debug_assertions) {
        let cert = certify::certify(block, machine, claim);
        assert!(
            cert.is_certified(),
            "schedule failed certification:\n{}",
            cert.report
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_core::Scheduler;
    use pipesched_ir::BlockBuilder;
    use pipesched_machine::presets;

    #[test]
    fn lint_combines_block_and_machine_reports() {
        let mut b = BlockBuilder::new("combined");
        let x = b.load("x");
        b.store("r", x);
        b.store("r", x); // dead store → A0109
        let block = b.finish().unwrap();
        let mut mb = Machine::builder("partial");
        let l = mb.pipeline("loader", 2, 1);
        mb.pipeline("idle", 3, 1); // unreachable → A0205
        mb.map(pipesched_ir::Op::Load, &[l]);
        let machine = mb.build().unwrap();

        let report = lint(&block, &machine);
        assert!(report.has_code(DiagCode::DeadStore));
        assert!(report.has_code(DiagCode::UnreachablePipeline));
        assert!(!report.has_errors());
    }

    #[test]
    fn debug_hook_accepts_real_schedules() {
        let mut b = BlockBuilder::new("hook");
        let x = b.load("x");
        let y = b.load("y");
        let s = b.add(x, y);
        b.store("r", s);
        let block = b.finish().unwrap();
        let machine = presets::paper_simulation();
        let scheduled = Scheduler::new(machine.clone()).schedule(&block);
        debug_assert_certified(&block, &machine, &scheduled);
    }
}
