//! IR well-formedness and code-quality checks (codes `A01xx`).
//!
//! [`check_block`] runs every pass. Structural checks (`A0101`/`A0102`/
//! `A0103`/`A0108`) mirror [`BasicBlock::verify`] but report *all* problems
//! instead of stopping at the first, and anchor each one to its tuple. When
//! the block is structurally sound the pass additionally builds the
//! dependence DAG and slack analysis and cross-checks their internal
//! invariants (`A0106`/`A0107`) — defense in depth against regressions in
//! `pipesched-ir` itself — plus the code-quality lints `A0104`/`A0105`/
//! `A0109`.

use std::collections::HashMap;

use pipesched_ir::{BasicBlock, BlockAnalysis, DepDag, Op, Operand, TupleId, VarId};

use crate::diag::{DiagCode, Diagnostic, Report};

/// Run every IR check over `block`.
pub fn check_block(block: &BasicBlock) -> Report {
    let mut report = Report::new(if block.name.is_empty() {
        "block".to_string()
    } else {
        format!("block `{}`", block.name)
    });
    check_structure(block, &mut report);
    crate::dataflow::check_defined_values(block, &mut report);
    if report.has_errors() {
        // The DAG and analysis are only defined for structurally sound
        // blocks; stop before constructing them over garbage.
        return report;
    }
    let dag = DepDag::build(block);
    let analysis = BlockAnalysis::compute(&dag);
    check_consistency(block, &dag, &analysis, &mut report);
    check_duplicates(block, &mut report);
    check_liveness(block, &mut report);
    crate::dataflow::check_dataflow(block, &mut report);
    report
}

/// Structural soundness: ids, arity, operand kinds, reference direction.
fn check_structure(block: &BasicBlock, report: &mut Report) {
    for (i, t) in block.tuples().iter().enumerate() {
        if t.id.index() != i {
            report.push(
                Diagnostic::new(
                    DiagCode::BadOperands,
                    format!("tuple id {} does not match its position {}", t.id, i + 1),
                )
                .at(TupleId(i as u32)),
            );
        }
        if t.op == Op::Nop {
            report.push(
                Diagnostic::new(
                    DiagCode::NopInBlock,
                    "Nop inside a schedulable block".to_string(),
                )
                .at(t.id)
                .with_hint("NOPs are inserted by the scheduler, never written in the input"),
            );
            continue;
        }
        let present = [t.a, t.b].iter().filter(|o| !o.is_none()).count();
        if present != t.op.arity() {
            report.push(
                Diagnostic::new(
                    DiagCode::BadOperands,
                    format!(
                        "{} takes {} operand(s), found {present}",
                        t.op,
                        t.op.arity()
                    ),
                )
                .at(t.id),
            );
        }
        match t.op {
            Op::Const if t.a.as_imm().is_none() => report.push(
                Diagnostic::new(DiagCode::BadOperands, "Const requires an immediate operand")
                    .at(t.id),
            ),
            Op::Load if t.a.as_var().is_none() => report.push(
                Diagnostic::new(DiagCode::BadOperands, "Load requires a variable operand").at(t.id),
            ),
            Op::Store if t.a.as_var().is_none() => report.push(
                Diagnostic::new(
                    DiagCode::BadOperands,
                    "Store requires a variable first operand",
                )
                .at(t.id),
            ),
            _ => {}
        }
        for target in t.tuple_refs() {
            if target.index() >= i {
                report.push(
                    Diagnostic::new(
                        DiagCode::ForwardReference,
                        format!(
                            "operand @{target} references tuple {target} at or after {}",
                            t.id
                        ),
                    )
                    .at(t.id)
                    .with_hint("tuple references must point strictly backwards"),
                );
            } else if !block.tuple(target).op.produces_value() {
                report.push(
                    Diagnostic::new(
                        DiagCode::ValuelessReference,
                        format!(
                            "operand @{target} references {} tuple {target}, which produces no value",
                            block.tuple(target).op
                        ),
                    )
                    .at(t.id),
                );
            }
        }
    }
}

/// DAG/analysis internal invariants: forward edges, consistent slack bounds.
fn check_consistency(
    block: &BasicBlock,
    dag: &DepDag,
    analysis: &BlockAnalysis,
    report: &mut Report,
) {
    for e in dag.edges() {
        if e.from >= e.to {
            report.push(
                Diagnostic::new(
                    DiagCode::NonForwardEdge,
                    format!(
                        "{:?} edge {} → {} does not point forward",
                        e.kind, e.from, e.to
                    ),
                )
                .at(e.to),
            );
        }
    }
    let n = block.len() as u32;
    for t in block.ids() {
        let (e, l) = (analysis.earliest(t), analysis.latest(t));
        if e > l {
            report.push(
                Diagnostic::new(
                    DiagCode::InconsistentBounds,
                    format!("tuple {t}: earliest {e} exceeds latest {l}"),
                )
                .at(t),
            );
        }
        if e > t.0 || l < t.0 || l >= n {
            report.push(
                Diagnostic::new(
                    DiagCode::InconsistentBounds,
                    format!("tuple {t}: bounds [{e}, {l}] do not admit its program-order position"),
                )
                .at(t),
            );
        }
    }
    // Every dependence strictly orders the slack windows of its endpoints.
    for e in dag.edges() {
        if e.from < e.to
            && (analysis.earliest(e.from) >= analysis.earliest(e.to)
                || analysis.latest(e.from) >= analysis.latest(e.to))
        {
            report.push(
                Diagnostic::new(
                    DiagCode::InconsistentBounds,
                    format!(
                        "edge {} → {} is not reflected in the earliest/latest bounds",
                        e.from, e.to
                    ),
                )
                .at(e.to),
            );
        }
    }
}

/// `A0104`: pure tuples that recompute an earlier tuple's value.
fn check_duplicates(block: &BasicBlock, report: &mut Report) {
    // Loads are excluded: two loads of the same variable differ when a
    // store intervenes, and the value-numbering pass in the front end is
    // the place that reasons about that.
    let mut seen: HashMap<(Op, Operand, Operand), TupleId> = HashMap::new();
    for t in block.tuples() {
        let pure = matches!(
            t.op,
            Op::Const | Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Neg | Op::Mov
        );
        if !pure {
            continue;
        }
        let (a, b) = t.canonical_operands();
        match seen.entry((t.op, a, b)) {
            std::collections::hash_map::Entry::Occupied(prev) => {
                report.push(
                    Diagnostic::new(
                        DiagCode::DuplicateTuple,
                        format!(
                            "tuple {} recomputes the value of tuple {}",
                            t.id,
                            prev.get()
                        ),
                    )
                    .at(t.id)
                    .with_hint("run the front-end optimizer to merge common subexpressions"),
                );
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(t.id);
            }
        }
    }
}

/// `A0105` unused values and `A0109` dead stores.
fn check_liveness(block: &BasicBlock, report: &mut Report) {
    let mut used = vec![false; block.len()];
    for t in block.tuples() {
        for r in t.tuple_refs() {
            used[r.index()] = true;
        }
    }
    for t in block.tuples() {
        if t.op.produces_value() && !used[t.id.index()] {
            report.push(
                Diagnostic::new(
                    DiagCode::UnusedValue,
                    format!("the value of tuple {} ({}) is never used", t.id, t.op),
                )
                .at(t.id)
                .with_hint("dead code: no later tuple references this result"),
            );
        }
    }
    // A store is dead when a later store to the same variable happens with
    // no intervening load of it. The *last* store to each variable is live
    // out of the block by definition.
    let mut last_store: HashMap<VarId, TupleId> = HashMap::new();
    for t in block.tuples() {
        match t.op {
            Op::Load => {
                if let Some(v) = t.a.as_var() {
                    last_store.remove(&v);
                }
            }
            Op::Store => {
                if let Some(v) = t.a.as_var() {
                    if let Some(prev) = last_store.insert(v, t.id) {
                        let name = block
                            .symbols()
                            .name(v)
                            .map_or_else(|| format!("#v{}", v.0), str::to_string);
                        report.push(
                            Diagnostic::new(
                                DiagCode::DeadStore,
                                format!(
                                    "store {prev} to `{name}` is overwritten by store {} before any load",
                                    t.id
                                ),
                            )
                            .at(prev),
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::{BlockBuilder, Tuple};

    fn raw_block(tuples: Vec<Tuple>) -> BasicBlock {
        let mut b = BasicBlock::new("raw");
        b.intern("x");
        b.replace_tuples(tuples);
        b
    }

    #[test]
    fn clean_block_is_clean() {
        let mut b = BlockBuilder::new("clean");
        let x = b.load("x");
        let y = b.load("y");
        let s = b.add(x, y);
        b.store("r", s);
        let report = check_block(&b.finish().unwrap());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn forward_and_valueless_references() {
        let b = raw_block(vec![
            Tuple::new(
                TupleId(0),
                Op::Store,
                Operand::Var(VarId(0)),
                Operand::Imm(1),
            ),
            Tuple {
                id: TupleId(1),
                op: Op::Neg,
                a: Operand::Tuple(TupleId(1)),
                b: Operand::None,
            },
            Tuple {
                id: TupleId(2),
                op: Op::Neg,
                a: Operand::Tuple(TupleId(0)),
                b: Operand::None,
            },
        ]);
        let report = check_block(&b);
        assert!(report.has_code(DiagCode::ForwardReference));
        assert!(report.has_code(DiagCode::ValuelessReference));
    }

    #[test]
    fn nop_and_bad_operands() {
        let b = raw_block(vec![
            Tuple {
                id: TupleId(0),
                op: Op::Nop,
                a: Operand::None,
                b: Operand::None,
            },
            Tuple {
                id: TupleId(1),
                op: Op::Load,
                a: Operand::Imm(3),
                b: Operand::None,
            },
            Tuple {
                id: TupleId(2),
                op: Op::Const,
                a: Operand::Var(VarId(0)),
                b: Operand::None,
            },
        ]);
        let report = check_block(&b);
        assert!(report.has_code(DiagCode::NopInBlock));
        assert!(report.has_code(DiagCode::BadOperands));
        assert_eq!(report.count(crate::Severity::Error), 3);
    }

    #[test]
    fn duplicate_tuple_flagged() {
        let mut b = BlockBuilder::new("dup");
        let x = b.load("x");
        let y = b.load("y");
        let s1 = b.add(x, y);
        let s2 = b.add(y, x); // same value: Add is commutative
        let m = b.mul(s1, s2);
        b.store("r", m);
        let report = check_block(&b.finish().unwrap());
        assert!(report.has_code(DiagCode::DuplicateTuple), "{report}");
        assert!(!report.has_errors());
    }

    #[test]
    fn unused_value_and_dead_store() {
        let mut b = BlockBuilder::new("dead");
        let x = b.load("x");
        let y = b.load("y"); // never used
        b.store("r", x);
        b.store("r", x); // first store is dead
        let _ = y;
        let report = check_block(&b.finish().unwrap());
        assert!(report.has_code(DiagCode::UnusedValue), "{report}");
        assert!(report.has_code(DiagCode::DeadStore), "{report}");
        assert!(!report.has_errors());
    }

    #[test]
    fn intervening_load_keeps_store_alive() {
        let mut b = BlockBuilder::new("alive");
        let x = b.load("x");
        b.store("r", x);
        let r = b.load("r");
        b.store("r", r);
        let report = check_block(&b.finish().unwrap());
        assert!(!report.has_code(DiagCode::DeadStore), "{report}");
    }
}
