//! Translation validation of the front-end optimizer (codes `A0505`–
//! `A0510`).
//!
//! Each optimizer pass emits a [`RewriteWitness`] log; this module is the
//! *independent* side of the contract, mirroring how `pipesched-proof`
//! replays B&B transcripts. For every pass execution it
//!
//! 1. checks the witness list is structurally usable (`A0505`),
//! 2. discharges each witness's semantic obligation against dataflow
//!    facts of the **pre-pass** block, re-derived here and never taken
//!    from the pass: dataflow constants for folds (`A0506`), value
//!    numbering for CSE merges (`A0507`), coupled liveness for deletions
//!    (`A0508`), pattern preconditions for peephole identities
//!    (`A0509`), and
//! 3. replays the witnesses with its own applier and requires the final
//!    block to be exactly what the optimizer returned (`A0510`) — an
//!    unwitnessed rewrite has nowhere to hide.
//!
//! [`optimize_verified`] packages the round trip: run the optimizer,
//! validate the transcript, reject on any error.

use std::fmt;

use pipesched_frontend::{
    optimize_with_transcript, OptConfig, OptStats, OptTranscript, PassKind, PassWitness,
    PeepholeRule, RewriteWitness,
};
use pipesched_ir::{BasicBlock, Op, Operand, Tuple, TupleId};

use crate::dataflow::{self, solve, ReachingDefs, VarDef};
use crate::diag::{DiagCode, Diagnostic, Report};

/// The optimizer's output was rejected: the witness transcript could not
/// justify it. Carries the full diagnostic report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptRejection {
    /// Why the transcript was rejected (at least one `A05xx` error).
    pub report: Report,
}

impl OptRejection {
    /// The stable codes of the rejection's errors, deduplicated, in order.
    pub fn codes(&self) -> Vec<DiagCode> {
        let mut codes = Vec::new();
        for d in self.report.diagnostics() {
            if !codes.contains(&d.code) {
                codes.push(d.code);
            }
        }
        codes
    }
}

impl fmt::Display for OptRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "optimizer translation validation failed\n{}",
            self.report
        )
    }
}

/// True when the `PIPESCHED_VERIFY_OPT` environment variable forces
/// translation validation on (any value but `0`); CI's debug test runs
/// set it so the whole suite exercises [`optimize_verified`].
pub fn verify_opt_forced() -> bool {
    std::env::var_os("PIPESCHED_VERIFY_OPT").is_some_and(|v| v != "0")
}

/// Optimize `block` under translation validation: run the optimizer with
/// its witness transcript, replay and check the transcript, and return
/// the optimized block only if every rewrite is justified.
pub fn optimize_verified(
    block: &BasicBlock,
    config: &OptConfig,
) -> Result<(BasicBlock, OptStats), OptRejection> {
    let (optimized, stats, transcript) = optimize_with_transcript(block, config);
    let report = validate_transcript(block, &optimized, &transcript);
    if report.has_errors() {
        Err(OptRejection { report })
    } else {
        Ok((optimized, stats))
    }
}

/// Validate `transcript` as an explanation of how `original` became
/// `optimized`. The returned report is error-free exactly when every
/// rewrite is justified and the replay reproduces `optimized`.
pub fn validate_transcript(
    original: &BasicBlock,
    optimized: &BasicBlock,
    transcript: &OptTranscript,
) -> Report {
    let mut report = Report::new(format!("optimizer transcript for `{}`", original.name));
    if original.verify().is_err() {
        report.push(Diagnostic::new(
            DiagCode::WitnessMalformed,
            "pre-optimization block fails verification; nothing to validate against",
        ));
        return report;
    }
    let mut current = original.clone();
    for pw in &transcript.passes {
        check_pass(&current, pw, &mut report);
        if report.has_errors() {
            return report;
        }
        match replay_pass(&current, pw) {
            Ok(next) => {
                if let Err(e) = next.verify() {
                    report.push(Diagnostic::new(
                        DiagCode::ReplayMismatch,
                        format!("block replayed after `{}` fails verification: {e}", pw.pass),
                    ));
                    return report;
                }
                current = next;
            }
            Err(msg) => {
                report.push(Diagnostic::new(
                    DiagCode::WitnessMalformed,
                    format!("`{}` witnesses do not replay: {msg}", pw.pass),
                ));
                return report;
            }
        }
    }
    if current != *optimized {
        report.push(Diagnostic::new(
            DiagCode::ReplayMismatch,
            format!(
                "replaying the transcript yields {} tuple(s), the optimizer returned {}; \
                 some rewrite is unwitnessed or misreported",
                current.len(),
                optimized.len()
            ),
        ));
    }
    report
}

/// The tuple a witness rewrites (the one that changes or disappears).
fn rewritten_tuple(w: &RewriteWitness) -> TupleId {
    match *w {
        RewriteWitness::Fold { tuple, .. }
        | RewriteWitness::Delete { tuple }
        | RewriteWitness::Identity { tuple, .. }
        | RewriteWitness::Annul { tuple, .. } => tuple,
        RewriteWitness::Forward { load, .. } => load,
        RewriteWitness::Merge { dup, .. } => dup,
    }
}

/// Every tuple id a witness mentions.
fn mentioned_tuples(w: &RewriteWitness) -> Vec<TupleId> {
    match *w {
        RewriteWitness::Fold { tuple, .. }
        | RewriteWitness::Delete { tuple }
        | RewriteWitness::Annul { tuple, .. } => vec![tuple],
        RewriteWitness::Forward { load, store, src } => vec![load, store, src],
        RewriteWitness::Merge { dup, into } => vec![dup, into],
        RewriteWitness::Identity { tuple, target, .. } => vec![tuple, target],
    }
}

/// Does this rewrite kind belong to the pass that claims it?
fn kind_fits_pass(pass: PassKind, w: &RewriteWitness) -> bool {
    match w {
        RewriteWitness::Fold { .. } | RewriteWitness::Forward { .. } => {
            pass == PassKind::ConstantFold
        }
        RewriteWitness::Merge { .. } => pass == PassKind::Cse,
        RewriteWitness::Delete { .. } => pass == PassKind::Dce,
        RewriteWitness::Identity { .. } | RewriteWitness::Annul { .. } => {
            pass == PassKind::Peephole
        }
    }
}

/// Check one pass's witnesses against the pre-pass block `block`.
fn check_pass(block: &BasicBlock, pw: &PassWitness, report: &mut Report) {
    let n = block.len();

    // Structural usability (A0505) first; semantic checks assume it.
    let mut rewritten = vec![false; n];
    for w in &pw.rewrites {
        if let Some(bad) = mentioned_tuples(w).into_iter().find(|t| t.index() >= n) {
            report.push(
                Diagnostic::new(
                    DiagCode::WitnessMalformed,
                    format!(
                        "`{}` witness `{w}` mentions out-of-range tuple {bad}",
                        pw.pass
                    ),
                )
                .at(rewritten_tuple(w)),
            );
            continue;
        }
        if !kind_fits_pass(pw.pass, w) {
            report.push(
                Diagnostic::new(
                    DiagCode::WitnessMalformed,
                    format!("rewrite `{w}` cannot be produced by the `{}` pass", pw.pass),
                )
                .at(rewritten_tuple(w)),
            );
        }
        let t = rewritten_tuple(w);
        if std::mem::replace(&mut rewritten[t.index()], true) {
            report.push(
                Diagnostic::new(
                    DiagCode::WitnessMalformed,
                    format!(
                        "tuple {t} is rewritten more than once in one `{}` pass",
                        pw.pass
                    ),
                )
                .at(t),
            );
        }
    }
    if report.has_errors() {
        return;
    }

    match pw.pass {
        PassKind::ConstantFold => check_constant_fold(block, pw, report),
        PassKind::Cse => check_cse(block, pw, report),
        PassKind::Peephole => check_peephole(block, pw, report),
        PassKind::Dce => check_dce(block, pw, report),
    }
}

/// `A0506`: folds must agree with independently derived constants, and
/// forwards must name the unique reaching store of the loaded variable.
fn check_constant_fold(block: &BasicBlock, pw: &PassWitness, report: &mut Report) {
    let konst = dataflow::constants(block);
    let reaching = solve(&ReachingDefs, block);
    for w in &pw.rewrites {
        match *w {
            RewriteWitness::Fold { tuple, value } if konst[tuple.index()] != Some(value) => {
                report.push(
                    Diagnostic::new(
                        DiagCode::FoldWitnessInvalid,
                        format!(
                            "fold of tuple {tuple} to {value} disagrees with dataflow \
                             constants ({:?})",
                            konst[tuple.index()]
                        ),
                    )
                    .at(tuple),
                );
            }
            RewriteWitness::Fold { .. } => {}
            RewriteWitness::Forward { load, store, src } => {
                let lt = &block.tuples()[load.index()];
                let st = &block.tuples()[store.index()];
                let var = lt.a.as_var();
                let ok = lt.op == Op::Load
                    && st.op == Op::Store
                    && var.is_some()
                    && st.a.as_var() == var
                    && st.b == Operand::Tuple(src)
                    && var.map(|v| reaching.before(load.index()).get(v.0 as usize).copied())
                        == Some(Some(VarDef::Store(store)));
                if !ok {
                    report.push(
                        Diagnostic::new(
                            DiagCode::FoldWitnessInvalid,
                            format!(
                                "forwarding of load {load} from store {store} (src {src}) fails: \
                                 the store is not the unique reaching definition of that variable"
                            ),
                        )
                        .at(load),
                    );
                }
            }
            _ => {}
        }
    }
}

/// `A0507`: merges must redirect a later tuple onto an earlier congruent
/// one (same value number under the validator's own numbering).
fn check_cse(block: &BasicBlock, pw: &PassWitness, report: &mut Report) {
    let vn = dataflow::value_numbers(block);
    for w in &pw.rewrites {
        if let RewriteWitness::Merge { dup, into } = *w {
            let ok = into.index() < dup.index()
                && block.tuples()[dup.index()].op.produces_value()
                && block.tuples()[into.index()].op.produces_value()
                && vn[dup.index()] == vn[into.index()];
            if !ok {
                report.push(
                    Diagnostic::new(
                        DiagCode::CseWitnessInvalid,
                        format!(
                            "merge of tuple {dup} into {into} fails: value numbers {} vs {}",
                            vn[dup.index()],
                            vn[into.index()]
                        ),
                    )
                    .at(dup),
                );
            }
        }
    }
}

/// `A0508`: deletions must hit tuples the validator's coupled liveness
/// already considers dead.
fn check_dce(block: &BasicBlock, pw: &PassWitness, report: &mut Report) {
    let live = dataflow::live_tuples(block);
    for w in &pw.rewrites {
        if let RewriteWitness::Delete { tuple } = *w {
            if live[tuple.index()] {
                report.push(
                    Diagnostic::new(
                        DiagCode::DceWitnessInvalid,
                        format!("deletion of tuple {tuple} fails: liveness says it is still live"),
                    )
                    .at(tuple),
                );
            }
        }
    }
}

/// `A0509`: each claimed identity's pattern precondition must hold on the
/// pre-pass block (constant-ness established through dataflow constants).
fn check_peephole(block: &BasicBlock, pw: &PassWitness, report: &mut Report) {
    let konst = dataflow::constants(block);
    let opconst = |o: Operand| -> Option<i64> {
        match o {
            Operand::Imm(v) => Some(v),
            Operand::Tuple(r) => konst[r.index()],
            _ => None,
        }
    };
    for w in &pw.rewrites {
        match *w {
            RewriteWitness::Identity {
                tuple,
                target,
                rule,
            } => {
                let t = &block.tuples()[tuple.index()];
                let is = |o: Operand| o == Operand::Tuple(target);
                let ok = match rule {
                    PeepholeRule::AddZero => {
                        t.op == Op::Add
                            && ((is(t.a) && opconst(t.b) == Some(0))
                                || (is(t.b) && opconst(t.a) == Some(0)))
                    }
                    PeepholeRule::SubZero => t.op == Op::Sub && is(t.a) && opconst(t.b) == Some(0),
                    PeepholeRule::MulOne => {
                        t.op == Op::Mul
                            && ((is(t.a) && opconst(t.b) == Some(1))
                                || (is(t.b) && opconst(t.a) == Some(1)))
                    }
                    PeepholeRule::DivOne => t.op == Op::Div && is(t.a) && opconst(t.b) == Some(1),
                    PeepholeRule::NegNeg => {
                        t.op == Op::Neg
                            && t.a.as_tuple().is_some_and(|inner| {
                                let it = &block.tuples()[inner.index()];
                                it.op == Op::Neg && is(it.a)
                            })
                    }
                    PeepholeRule::MovCopy => t.op == Op::Mov && is(t.a),
                    // Annihilation never redirects to a target tuple.
                    PeepholeRule::MulZero => false,
                };
                if !ok {
                    report.push(
                        Diagnostic::new(
                            DiagCode::PeepholeWitnessInvalid,
                            format!(
                                "identity `{}` on tuple {tuple} (target {target}) fails its \
                                 precondition",
                                rule.name()
                            ),
                        )
                        .at(tuple),
                    );
                }
            }
            RewriteWitness::Annul { tuple, value } => {
                let t = &block.tuples()[tuple.index()];
                let ok = t.op == Op::Mul
                    && value == 0
                    && (opconst(t.a) == Some(0) || opconst(t.b) == Some(0));
                if !ok {
                    report.push(
                        Diagnostic::new(
                            DiagCode::PeepholeWitnessInvalid,
                            format!(
                                "annihilation of tuple {tuple} to {value} fails its precondition"
                            ),
                        )
                        .at(tuple),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Apply one pass's witnesses to `block` with the validator's own
/// applier (redirect chains, removals, in-place replacements, renumber).
/// Structurally impossible witness sets (dangling references, redirect
/// cycles) return an error instead of panicking.
fn replay_pass(block: &BasicBlock, pw: &PassWitness) -> Result<BasicBlock, String> {
    let n = block.len();
    let mut redirect: Vec<Option<TupleId>> = vec![None; n];
    let mut removed = vec![false; n];
    let mut replaced: Vec<Option<Tuple>> = vec![None; n];
    for w in &pw.rewrites {
        match *w {
            RewriteWitness::Fold { tuple, value } | RewriteWitness::Annul { tuple, value } => {
                replaced[tuple.index()] = Some(Tuple {
                    id: tuple,
                    op: Op::Const,
                    a: Operand::Imm(value),
                    b: Operand::None,
                });
            }
            RewriteWitness::Forward { load, src, .. } => {
                replaced[load.index()] = Some(Tuple {
                    id: load,
                    op: Op::Mov,
                    a: Operand::Tuple(src),
                    b: Operand::None,
                });
            }
            RewriteWitness::Merge { dup, into } => {
                redirect[dup.index()] = Some(into);
                removed[dup.index()] = true;
            }
            RewriteWitness::Identity { tuple, target, .. } => {
                redirect[tuple.index()] = Some(target);
                removed[tuple.index()] = true;
            }
            RewriteWitness::Delete { tuple } => removed[tuple.index()] = true,
        }
    }

    let resolve = |start: TupleId| -> Result<TupleId, String> {
        let mut t = start;
        let mut hops = 0usize;
        while let Some(next) = redirect[t.index()] {
            t = next;
            hops += 1;
            if hops > n {
                return Err(format!("redirect cycle starting at tuple {start}"));
            }
        }
        if removed[t.index()] {
            Err(format!(
                "tuple {start} redirects to removed tuple {t} with no further target"
            ))
        } else {
            Ok(t)
        }
    };

    let mut new_id: Vec<Option<TupleId>> = vec![None; n];
    let mut live_count = 0u32;
    for (i, slot) in new_id.iter_mut().enumerate() {
        if !removed[i] {
            *slot = Some(TupleId(live_count));
            live_count += 1;
        }
    }

    let mut out_tuples = Vec::with_capacity(live_count as usize);
    for (i, orig) in block.tuples().iter().enumerate() {
        if removed[i] {
            continue;
        }
        let t = replaced[i].unwrap_or(*orig);
        let map = |o: Operand| -> Result<Operand, String> {
            match o {
                Operand::Tuple(r) => {
                    let kept = resolve(r)?;
                    let id = new_id[kept.index()]
                        .ok_or_else(|| format!("operand of tuple {} dangles", orig.id))?;
                    Ok(Operand::Tuple(id))
                }
                other => Ok(other),
            }
        };
        out_tuples.push(Tuple {
            id: new_id[i].expect("kept tuples are renumbered"),
            op: t.op,
            a: map(t.a)?,
            b: map(t.b)?,
        });
    }
    let mut out = block.clone();
    out.replace_tuples(out_tuples);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_frontend::{lower, parse_program};

    fn block(src: &str) -> BasicBlock {
        lower("t", &parse_program(src).unwrap())
    }

    fn verified(src: &str) -> (BasicBlock, BasicBlock, OptTranscript) {
        let b = block(src);
        let (o, _, tr) = optimize_with_transcript(&b, &OptConfig::default());
        (b, o, tr)
    }

    #[test]
    fn honest_runs_validate() {
        for src in [
            "x = 2 + 3;\ny = x * 4;\n",
            "x = a + b;\ny = a + b;\nz = x * y;\n",
            "a = b * 1 + 0;\nc = a / 1;\nd = c - 0;\ne = d + d;\nf = e * 0;\n",
            "x = 1;\nx = 2;\nx = 3;\n",
        ] {
            let (b, o, tr) = verified(src);
            let report = validate_transcript(&b, &o, &tr);
            assert!(!report.has_errors(), "{src}\n{report}");
            assert!(optimize_verified(&b, &OptConfig::default()).is_ok());
        }
    }

    #[test]
    fn corrupted_fold_constant_rejected() {
        let (b, o, mut tr) = verified("x = 2 + 3;\n");
        for pw in &mut tr.passes {
            for w in &mut pw.rewrites {
                if let RewriteWitness::Fold { value, .. } = w {
                    *value += 1;
                }
            }
        }
        let report = validate_transcript(&b, &o, &tr);
        assert!(report.has_code(DiagCode::FoldWitnessInvalid), "{report}");
    }

    #[test]
    fn dropped_delete_witness_rejected() {
        let (b, o, mut tr) = verified("x = a;\ny = a;\nx = b;\n");
        let mut dropped = false;
        for pw in &mut tr.passes {
            if pw.pass == PassKind::Dce && !pw.rewrites.is_empty() {
                pw.rewrites.pop();
                dropped = true;
                break;
            }
        }
        assert!(dropped, "expected the optimizer to run DCE:\n{tr}");
        let report = validate_transcript(&b, &o, &tr);
        assert!(report.has_code(DiagCode::ReplayMismatch), "{report}");
    }

    #[test]
    fn forged_cse_merge_rejected() {
        let (b, o, mut tr) = verified("x = a + b;\ny = a + b;\nz = x - y;\n");
        let mut forged = false;
        for pw in &mut tr.passes {
            for w in &mut pw.rewrites {
                if let RewriteWitness::Merge { into, .. } = w {
                    // Tuple 0 is the Load of `a`: definitely not congruent
                    // to the Add being merged.
                    *into = TupleId(0);
                    forged = true;
                }
            }
        }
        assert!(forged, "expected a CSE merge:\n{tr}");
        let report = validate_transcript(&b, &o, &tr);
        assert!(report.has_code(DiagCode::CseWitnessInvalid), "{report}");
    }

    #[test]
    fn deleting_live_tuple_rejected() {
        let b = block("r = a + b;\n");
        let tr = OptTranscript {
            passes: vec![PassWitness {
                pass: PassKind::Dce,
                rewrites: vec![RewriteWitness::Delete { tuple: TupleId(2) }],
            }],
        };
        let report = validate_transcript(&b, &b, &tr);
        assert!(report.has_code(DiagCode::DceWitnessInvalid), "{report}");
    }

    #[test]
    fn wrong_pass_kind_rejected() {
        let b = block("r = a + b;\n");
        let tr = OptTranscript {
            passes: vec![PassWitness {
                pass: PassKind::Cse,
                rewrites: vec![RewriteWitness::Delete { tuple: TupleId(2) }],
            }],
        };
        let report = validate_transcript(&b, &b, &tr);
        assert!(report.has_code(DiagCode::WitnessMalformed), "{report}");
    }

    #[test]
    fn bogus_peephole_identity_rejected() {
        let b = block("r = a + b;\n");
        let tr = OptTranscript {
            passes: vec![PassWitness {
                pass: PassKind::Peephole,
                rewrites: vec![RewriteWitness::Identity {
                    tuple: TupleId(2),
                    target: TupleId(0),
                    rule: PeepholeRule::AddZero,
                }],
            }],
        };
        let report = validate_transcript(&b, &b, &tr);
        assert!(
            report.has_code(DiagCode::PeepholeWitnessInvalid),
            "{report}"
        );
    }

    #[test]
    fn out_of_range_witness_rejected() {
        let b = block("r = a;\n");
        let tr = OptTranscript {
            passes: vec![PassWitness {
                pass: PassKind::Dce,
                rewrites: vec![RewriteWitness::Delete { tuple: TupleId(99) }],
            }],
        };
        let report = validate_transcript(&b, &b, &tr);
        assert!(report.has_code(DiagCode::WitnessMalformed), "{report}");
    }

    #[test]
    fn rejection_lists_stable_codes() {
        let (b, _, mut tr) = verified("x = 2 + 3;\n");
        for pw in &mut tr.passes {
            for w in &mut pw.rewrites {
                if let RewriteWitness::Fold { value, .. } = w {
                    *value = 0;
                }
            }
        }
        let report = validate_transcript(&b, &b, &tr);
        let rej = OptRejection { report };
        assert!(rej.codes().contains(&DiagCode::FoldWitnessInvalid));
        assert!(rej.to_string().contains("A0506"));
    }
}
