//! Structured diagnostics: stable codes, severities, reports, rendering.
//!
//! Every check in this crate reports through [`Report`]. A diagnostic
//! carries a stable [`DiagCode`] (the contract tests and downstream tools
//! match on), a [`Severity`], a human-readable message, and optionally the
//! tuple it is anchored to plus a fix hint. Reports render as plain text or
//! as JSON (via `pipesched-json`; the build environment has no registry
//! access, so serde is unavailable).

use std::fmt;
use std::str::FromStr;

use pipesched_ir::TupleId;
use pipesched_json::{json_object, Json};

/// How serious a diagnostic is.
///
/// Only [`Severity::Error`] makes a report fail ([`Report::has_errors`]);
/// warnings flag suspicious-but-legal constructs and infos are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory note; never affects the verdict.
    Info,
    /// Suspicious but not incorrect.
    Warning,
    /// Definitely wrong: the artifact is rejected.
    Error,
}

impl Severity {
    /// Lower-case name used in text and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Severity {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, ()> {
        match s {
            "info" => Ok(Severity::Info),
            "warning" => Ok(Severity::Warning),
            "error" => Ok(Severity::Error),
            _ => Err(()),
        }
    }
}

macro_rules! diag_codes {
    ($( $(#[$meta:meta])* $name:ident = ($text:literal, $sev:ident, $summary:literal), )*) => {
        /// Stable diagnostic codes.
        ///
        /// `A01xx` are IR well-formedness checks, `A02xx` machine-description
        /// lints, `A03xx` schedule-certification failures, `A04xx`
        /// optimality-certificate rejections (emitted by the
        /// `pipesched-proof` checker), `A05xx` dataflow lints and
        /// translation-validation rejections of the front-end optimizer,
        /// `A06xx` SAT-backend audit failures (emitted by the
        /// `pipesched-solve` outcome audit and backend cross-check),
        /// `A07xx` concurrency findings (model-checker violations from
        /// `pipesched-check` and the static lock-order scan behind
        /// `pipesched lint --concurrency`).
        /// The textual form (e.g. `"A0302"`) is
        /// a stable contract: tests and downstream tooling match on it, so
        /// codes are never renumbered or reused.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum DiagCode {
            $( $(#[$meta])* $name, )*
        }

        impl DiagCode {
            /// Every code, in numeric order.
            pub const ALL: &'static [DiagCode] = &[ $(DiagCode::$name,)* ];

            /// The stable textual code (`"A0101"`, ...).
            pub fn as_str(self) -> &'static str {
                match self {
                    $( DiagCode::$name => $text, )*
                }
            }

            /// The default severity diagnostics with this code carry.
            pub fn severity(self) -> Severity {
                match self {
                    $( DiagCode::$name => Severity::$sev, )*
                }
            }

            /// One-line description of what the code means.
            pub fn summary(self) -> &'static str {
                match self {
                    $( DiagCode::$name => $summary, )*
                }
            }
        }

        impl FromStr for DiagCode {
            type Err = ();

            fn from_str(s: &str) -> Result<Self, ()> {
                match s {
                    $( $text => Ok(DiagCode::$name), )*
                    _ => Err(()),
                }
            }
        }
    };
}

diag_codes! {
    /// A tuple operand references itself or a later tuple.
    ForwardReference = ("A0101", Error, "tuple operand references itself or a later tuple"),
    /// A tuple operand references a tuple that produces no value.
    ValuelessReference = ("A0102", Error, "tuple operand references a value-less tuple"),
    /// Operand count or operand kind does not fit the operation.
    BadOperands = ("A0103", Error, "operand count or kind does not match the operation"),
    /// Two tuples compute the same value (missed common subexpression).
    DuplicateTuple = ("A0104", Warning, "tuple recomputes an earlier tuple's value"),
    /// A computed value is never consumed.
    UnusedValue = ("A0105", Warning, "computed value is never used"),
    /// A dependence edge does not point strictly forward.
    NonForwardEdge = ("A0106", Error, "dependence edge does not point strictly forward"),
    /// `earliest`/`latest` slack bounds are mutually inconsistent.
    InconsistentBounds = ("A0107", Error, "earliest/latest slack bounds are inconsistent"),
    /// A `Nop` appears inside a schedulable block.
    NopInBlock = ("A0108", Error, "Nop is not a schedulable block instruction"),
    /// A store is overwritten before anything reads the variable.
    DeadStore = ("A0109", Warning, "store is overwritten before it is read"),

    /// A pipeline declares zero latency.
    ZeroLatency = ("A0201", Error, "pipeline latency must be at least 1"),
    /// A pipeline declares zero enqueue time.
    ZeroEnqueue = ("A0202", Error, "pipeline enqueue time must be at least 1"),
    /// A pipeline latency is implausibly large.
    AbsurdLatency = ("A0203", Warning, "pipeline latency is implausibly large"),
    /// Enqueue time exceeds latency.
    EnqueueExceedsLatency = ("A0204", Warning, "enqueue time exceeds latency"),
    /// No operation maps to this pipeline.
    UnreachablePipeline = ("A0205", Warning, "no operation maps to this pipeline"),
    /// A value-computing operation has no pipeline (`σ = ∅`).
    UnmappedOp = ("A0206", Warning, "value-computing operation uses no pipeline"),
    /// A mapping entry names a pipeline that does not exist.
    UnknownPipeline = ("A0207", Error, "mapping names a pipeline that does not exist"),
    /// `Nop` is mapped to a pipeline.
    NopMapped = ("A0208", Error, "Nop must not be mapped to a pipeline"),
    /// The machine cannot constrain any schedule.
    DegenerateMachine = ("A0209", Warning, "machine maps no operation to any pipeline"),
    /// One mapping entry lists the same pipeline twice.
    DuplicateMapping = ("A0210", Warning, "mapping entry lists the same pipeline twice"),

    /// A schedule is not a permutation of the block.
    NotAPermutation = ("A0301", Error, "schedule is not a permutation of the block"),
    /// A schedule places a consumer before its producer.
    DependenceViolation = ("A0302", Error, "schedule places a consumer before a producer"),
    /// A claimed per-position η does not match the re-derived value.
    EtaMismatch = ("A0303", Error, "claimed η does not match re-derived issue times"),
    /// The claimed total NOP count μ is wrong.
    NopCountMismatch = ("A0304", Error, "claimed NOP count does not match re-derived μ"),
    /// A tuple is assigned a pipeline that cannot execute it.
    IllegalAssignment = ("A0305", Error, "tuple assigned a pipeline that cannot execute it"),
    /// Two schedulers produced contradictory results.
    SchedulerDisagreement = ("A0306", Error, "schedulers produced contradictory results"),

    /// An optimality certificate is syntactically or structurally invalid.
    CertificateMalformed = ("A0401", Error, "optimality certificate is malformed"),
    /// The certificate's case analysis has a gap: some unexplored
    /// extension is covered by no recorded prune, or the transcript is
    /// truncated.
    ProofCoverageGap = ("A0402", Error, "certificate case analysis does not cover every extension"),
    /// A recorded bound-prune's μ or chain/resource derivation disagrees
    /// with the checker's independent re-derivation.
    BoundArithmeticMismatch = ("A0403", Error, "recorded bound derivation disagrees with re-derivation"),
    /// A bound prune whose recorded bound would not actually dominate the
    /// incumbent at that point of the search.
    UnjustifiedBoundPrune = ("A0404", Error, "bound prune does not dominate the incumbent"),
    /// An equivalence prune whose witness pair fails the interchangeability
    /// conditions (freeness or identical successor sets) on the DAG.
    StaleEquivalenceWitness = ("A0405", Error, "equivalence-prune witness fails interchangeability"),
    /// The incumbent chain is inconsistent (a non-improving `Improve`, a μ
    /// that disagrees with replayed timing, or a trailer μ mismatch).
    IncumbentRegression = ("A0406", Error, "certificate incumbent chain is inconsistent"),
    /// The certificate places an instruction before its dependences allow.
    IllegalPlacement = ("A0407", Error, "certificate places an instruction illegally"),
    /// A `ProvedByBound` event's global lower bound does not match the
    /// checker's re-derivation, or the incumbent does not reach it.
    LowerBoundMismatch = ("A0408", Error, "claimed global lower bound fails re-derivation"),

    /// A store no live tuple ever reads (found by the coupled liveness
    /// dataflow; fires only where the simple overwrite scan `A0109`
    /// cannot see the deadness).
    DeadStoreLiveness = ("A0501", Warning, "store is dead: no live tuple reads its value"),
    /// An operand uses a value the dataflow says is not yet computed at
    /// the use point (defense in depth over `A0101`/`A0102`).
    UndefinedUse = ("A0502", Error, "operand uses a value not computed at its use point"),
    /// A tuple that is referenced but transitively dead: every chain of
    /// consumers ends in dead code, so no live store observes it.
    OrphanTuple = ("A0503", Warning, "tuple is transitively dead: no live store observes it"),
    /// An `Anti`/`Output` dependence edge already implied by a transitive
    /// path of other dependences.
    RedundantDependence = ("A0504", Info, "dependence edge is transitively implied"),
    /// An optimizer rewrite witness is structurally unusable: bad tuple
    /// ids, a rewrite kind foreign to the pass that claims it, several
    /// rewrites of one tuple, or a replay that dangles a reference.
    WitnessMalformed = ("A0505", Error, "optimizer rewrite witness is malformed"),
    /// A constant-fold witness whose claimed value disagrees with the
    /// validator's independently derived dataflow constants.
    FoldWitnessInvalid = ("A0506", Error, "fold witness disagrees with dataflow constants"),
    /// A CSE witness merging tuples the validator's value numbering does
    /// not consider congruent, or merging forwards.
    CseWitnessInvalid = ("A0507", Error, "CSE witness merges non-congruent tuples"),
    /// A DCE witness deleting a tuple the validator's liveness analysis
    /// still considers live.
    DceWitnessInvalid = ("A0508", Error, "DCE witness deletes a live tuple"),
    /// A peephole witness whose claimed algebraic identity fails its
    /// pattern precondition on the pre-pass block.
    PeepholeWitnessInvalid = ("A0509", Error, "peephole witness fails its precondition"),
    /// Replaying the witness transcript does not reproduce the block the
    /// optimizer returned (unwitnessed or misreported rewrites).
    ReplayMismatch = ("A0510", Error, "witness replay does not reproduce the optimized block"),

    /// A SAT backend outcome whose query trail is internally inconsistent:
    /// a recorded horizon that does not equal `n + budget`, or budgets
    /// that do not strictly descend.
    SolveEncodingInconsistent = ("A0601", Error, "SAT time-index encoding is internally inconsistent"),
    /// A recorded SAT model that fails re-checking: not exactly one issue
    /// cycle per tuple, an out-of-window cycle, an illegal decoded order,
    /// or a violated clause of the independently rebuilt encoding.
    SolveModelInvalid = ("A0602", Error, "decoded SAT model violates the rebuilt encoding"),
    /// A recorded SAT model whose decoded schedule replays to more NOPs
    /// than the feasibility query it claims to answer allowed.
    SolveBudgetMissed = ("A0603", Error, "decoded SAT schedule misses its query's NOP budget"),
    /// An optimality claim with no proof: the NOP count is above the
    /// global lower bound, yet no UNSAT query at one NOP fewer is on
    /// record.
    SolveOptimalityUnproved = ("A0604", Error, "SAT optimality claim lacks a refuting UNSAT query"),
    /// Two exact backends disagree on the optimal NOP count — one of them
    /// is wrong, and the portfolio treats this as a hard failure.
    BackendDisagreement = ("A0605", Error, "SAT and branch-and-bound disagree on the optimal NOP count"),

    /// Two threads access the same location without a happens-before
    /// edge and at least one access writes (vector-clock detection by
    /// the `pipesched-check` model scheduler).
    DataRace = ("A0701", Error, "conflicting accesses without a happens-before edge"),
    /// The accumulated lock-acquisition graph has a cycle — two locks
    /// are taken in opposite orders somewhere.
    LockOrderCycle = ("A0702", Error, "locks are acquired in inconsistent orders"),
    /// An explored schedule reached a state where every live thread was
    /// blocked (mutual wait or lost wakeup).
    DeadlockDetected = ("A0703", Error, "an interleaving deadlocks: all live threads blocked"),
    /// An `Acquire` load observed a value whose store published nothing
    /// (`Relaxed`), so the acquire synchronizes with nothing.
    AcquireMisuse = ("A0704", Warning, "acquire load pairs with a non-release store"),
    /// A harness invariant (assertion) failed on some explored schedule,
    /// or exploration exceeded its step budget.
    ConcurrencyInvariantViolated = ("A0705", Error, "a protocol invariant fails on some interleaving"),
    /// A thread finished while still holding a lock guard.
    LockLeaked = ("A0706", Error, "thread exited while holding a lock"),
    /// One observed lock-order edge (static scan); advisory context for
    /// `A0702` cycle reports.
    LockOrderEdge = ("A0707", Info, "observed lock acquisition order (held -> acquired)"),
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a code, a severity, a message, and optional anchors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: DiagCode,
    /// Severity (defaults to [`DiagCode::severity`]).
    pub severity: Severity,
    /// Human-readable description of this specific instance.
    pub message: String,
    /// The tuple the diagnostic is anchored to, if any.
    pub tuple: Option<TupleId>,
    /// A source anchor (`file:line`), when the tuple's provenance is known.
    pub location: Option<String>,
    /// A suggestion for fixing the problem, if one is known.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// A diagnostic with the code's default severity and no anchors.
    pub fn new(code: DiagCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            tuple: None,
            location: None,
            hint: None,
        }
    }

    /// Anchor the diagnostic to a tuple.
    pub fn at(mut self, tuple: TupleId) -> Self {
        self.tuple = Some(tuple);
        self
    }

    /// Anchor the diagnostic to a source location (`file:line`).
    pub fn at_location(mut self, location: impl Into<String>) -> Self {
        self.location = Some(location.into());
        self
    }

    /// Attach a fix hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.severity, self.code, self.message)?;
        if let Some(t) = self.tuple {
            write!(f, " (tuple {t})")?;
        }
        if let Some(loc) = &self.location {
            write!(f, " --> {loc}")?;
        }
        if let Some(h) = &self.hint {
            write!(f, "\n    hint: {h}")?;
        }
        Ok(())
    }
}

/// A collection of diagnostics about one artifact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// What was analyzed (block name, machine name, scheduler...).
    pub context: String,
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report about `context`.
    pub fn new(context: impl Into<String>) -> Self {
        Report {
            context: context.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Add a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Append every diagnostic of `other`, keeping this report's context.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Attach source anchors: every tuple-anchored diagnostic without a
    /// location gets one from `locate` (which may decline).
    pub fn annotate_locations(&mut self, locate: impl Fn(TupleId) -> Option<String>) {
        for d in &mut self.diagnostics {
            if d.location.is_none() {
                if let Some(t) = d.tuple {
                    d.location = locate(t);
                }
            }
        }
    }

    /// All diagnostics, in the order they were found.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// True when no diagnostics at all were produced.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one diagnostic is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Number of diagnostics with the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// True when a diagnostic with the given code is present.
    pub fn has_code(&self, code: DiagCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Render the report as human-readable text, one diagnostic per line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let verdict = if self.has_errors() { "FAIL" } else { "ok" };
        out.push_str(&format!(
            "{}: {} ({} error(s), {} warning(s), {} note(s))\n",
            self.context,
            verdict,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        for d in &self.diagnostics {
            out.push_str(&format!("  {d}\n"));
        }
        out
    }

    /// Convert the report to a JSON document.
    pub fn to_json(&self) -> Json {
        let diags: Vec<Json> = self
            .diagnostics
            .iter()
            .map(|d| {
                json_object![
                    ("code", d.code.as_str()),
                    ("severity", d.severity.as_str()),
                    ("message", d.message.as_str()),
                    (
                        "tuple",
                        d.tuple.map_or(Json::Null, |t| Json::from(i64::from(t.0)))
                    ),
                    (
                        "location",
                        d.location.as_deref().map_or(Json::Null, Json::from)
                    ),
                    ("hint", d.hint.as_deref().map_or(Json::Null, Json::from)),
                ]
            })
            .collect();
        json_object![
            ("context", self.context.as_str()),
            ("errors", self.count(Severity::Error)),
            ("warnings", self.count(Severity::Warning)),
            ("diagnostics", Json::Array(diags)),
        ]
    }

    /// Rebuild a report from [`Report::to_json`] output.
    ///
    /// Returns `None` when the document does not match the schema (unknown
    /// code, bad severity, missing field).
    pub fn from_json(doc: &Json) -> Option<Report> {
        let mut report = Report::new(doc.get("context")?.as_str()?);
        for d in doc.get("diagnostics")?.as_array()? {
            let code: DiagCode = d.get("code")?.as_str()?.parse().ok()?;
            let severity: Severity = d.get("severity")?.as_str()?.parse().ok()?;
            let message = d.get("message")?.as_str()?.to_string();
            let tuple = match d.get("tuple")? {
                Json::Null => None,
                j => Some(TupleId(u32::try_from(j.as_i64()?).ok()?)),
            };
            // Absent (pre-A05xx documents) and null both mean "none".
            let location = match d.get("location") {
                None | Some(Json::Null) => None,
                Some(j) => Some(j.as_str()?.to_string()),
            };
            let hint = match d.get("hint")? {
                Json::Null => None,
                j => Some(j.as_str()?.to_string()),
            };
            report.push(Diagnostic {
                code,
                severity,
                message,
                tuple,
                location,
                hint,
            });
        }
        Some(report)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for &code in DiagCode::ALL {
            let text = code.as_str();
            assert!(seen.insert(text), "duplicate code {text}");
            assert_eq!(text.len(), 5);
            assert!(text.starts_with('A'));
            assert!(text[1..].chars().all(|c| c.is_ascii_digit()));
            assert_eq!(text.parse::<DiagCode>(), Ok(code));
            assert!(!code.summary().is_empty());
        }
    }

    #[test]
    fn report_counts_and_verdict() {
        let mut r = Report::new("demo");
        assert!(r.is_clean() && !r.has_errors());
        r.push(Diagnostic::new(DiagCode::UnusedValue, "x unused").at(TupleId(2)));
        assert!(!r.is_clean() && !r.has_errors());
        r.push(
            Diagnostic::new(DiagCode::EtaMismatch, "η[3] is 2, should be 1")
                .with_hint("re-run the scheduler"),
        );
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.count(Severity::Error), 1);
        assert!(r.has_code(DiagCode::EtaMismatch));
        assert!(!r.has_code(DiagCode::NopInBlock));
        let text = r.render_text();
        assert!(text.contains("FAIL"));
        assert!(text.contains("A0303"));
        assert!(text.contains("(tuple 3)"));
        assert!(text.contains("hint: re-run"));
    }

    #[test]
    fn location_anchors_render_and_annotate() {
        let mut r = Report::new("loc");
        r.push(Diagnostic::new(DiagCode::DeadStore, "dead").at(TupleId(2)));
        r.push(Diagnostic::new(DiagCode::UnusedValue, "unused"));
        r.annotate_locations(|t| (t == TupleId(2)).then(|| "prog.src:4".to_string()));
        let text = r.render_text();
        assert!(text.contains("--> prog.src:4"), "{text}");
        assert_eq!(r.diagnostics()[1].location, None);
    }

    #[test]
    fn from_json_accepts_documents_without_location() {
        let doc = pipesched_json::parse(
            r#"{"context": "x", "diagnostics": [{"code": "A0109", "severity": "warning",
                "message": "m", "tuple": null, "hint": null}]}"#,
        )
        .unwrap();
        let report = Report::from_json(&doc).unwrap();
        assert_eq!(report.diagnostics()[0].location, None);
    }

    #[test]
    fn json_round_trips() {
        let mut r = Report::new("roundtrip");
        r.push(
            Diagnostic::new(DiagCode::DeadStore, "store to a overwritten")
                .at(TupleId(7))
                .at_location("prog.src:3"),
        );
        r.push(
            Diagnostic::new(DiagCode::NopCountMismatch, "claimed 3, derived 5")
                .with_hint("etas do not sum to μ"),
        );
        let doc = r.to_json();
        let parsed = pipesched_json::parse(&doc.to_pretty()).unwrap();
        assert_eq!(Report::from_json(&parsed), Some(r));
    }

    #[test]
    fn from_json_rejects_unknown_code() {
        let doc = pipesched_json::parse(
            r#"{"context": "x", "diagnostics": [{"code": "Z9999", "severity": "error",
                "message": "m", "tuple": null, "hint": null}]}"#,
        )
        .unwrap();
        assert_eq!(Report::from_json(&doc), None);
    }
}
