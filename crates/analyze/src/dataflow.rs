//! A generic dataflow-analysis framework over the tuple IR, plus the
//! `A05xx` dataflow lints built on it.
//!
//! The framework is a classic worklist solver specialized to the IR's
//! single-basic-block programs: program points `0..=n` sit between
//! consecutive tuples (point `p` lies after tuple `p-1` and before tuple
//! `p`), a [`Analysis::transfer`] function pushes facts across one tuple,
//! and the solver iterates a worklist until the facts reach a fixpoint.
//! Straight-line code has no joins, so every analysis converges in one
//! sweep — but the solver does not rely on that, and analyses state their
//! lattice explicitly through `Fact: PartialEq` (change detection *is*
//! the lattice order check for these finite-height facts).
//!
//! Seed analyses:
//!
//! * [`ReachingDefs`] — which definition of each variable (a `Store` or
//!   the block entry) reaches each point;
//! * [`Liveness`] — *coupled* variable/value liveness: which variables
//!   and which tuple values are still needed at each point, with dead
//!   loads reviving nothing (see [`live_tuples`]);
//! * [`AvailableValues`] — which tuple values have been computed at each
//!   point (tuple values are immutable, so the classic kill set is empty
//!   and availability reduces to definedness; the *expression*-level
//!   availability CSE validation needs is [`value_numbers`]).
//!
//! On top of the framework, [`value_numbers`] assigns congruence-based
//! value numbers (available-expression analysis in its value-numbering
//! form) and [`constants`] derives per-tuple compile-time constants.
//! [`check_dataflow`] turns all of this into lint diagnostics
//! (`A0501`–`A0504`); the translation validator
//! ([`crate::opt_validate`]) replays optimizer witnesses against the
//! same facts.

use std::collections::{HashMap, VecDeque};

use pipesched_ir::{
    BasicBlock, BlockAnalysis, DepDag, DepKind, Op, Operand, Tuple, TupleId, VarId,
};

use crate::diag::{DiagCode, Diagnostic, Report};

/// Which way facts flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from block entry towards the exit.
    Forward,
    /// Facts flow from block exit towards the entry.
    Backward,
}

/// One dataflow analysis: a fact lattice (via `Clone + PartialEq`), a
/// boundary fact, and a transfer function across one tuple.
///
/// `transfer` receives the tuple's *position* `index` separately from the
/// tuple so analyses stay well-defined on malformed blocks whose ids
/// disagree with their positions (the `A0502` lint runs before
/// structural soundness is established).
pub trait Analysis {
    /// The fact attached to every program point.
    type Fact: Clone + PartialEq;

    /// Which way this analysis propagates.
    const DIRECTION: Direction;

    /// The fact at the boundary point (entry for forward analyses, exit
    /// for backward ones).
    fn boundary(&self, block: &BasicBlock) -> Self::Fact;

    /// Push `fact` across `tuple` (at position `index`), mutating it from
    /// the fact on the incoming side to the fact on the outgoing side.
    fn transfer(&self, block: &BasicBlock, index: usize, tuple: &Tuple, fact: &mut Self::Fact);
}

/// The fixpoint: one fact per program point `0..=n`.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    facts: Vec<F>,
}

impl<F> Solution<F> {
    /// The fact at the point just before tuple `i`.
    pub fn before(&self, i: usize) -> &F {
        &self.facts[i]
    }

    /// The fact at the point just after tuple `i`.
    pub fn after(&self, i: usize) -> &F {
        &self.facts[i + 1]
    }

    /// The fact at block entry.
    pub fn entry(&self) -> &F {
        &self.facts[0]
    }

    /// The fact at block exit.
    pub fn exit(&self) -> &F {
        &self.facts[self.facts.len() - 1]
    }
}

/// Run `analysis` over `block` with a worklist until the facts stabilize.
pub fn solve<A: Analysis>(analysis: &A, block: &BasicBlock) -> Solution<A::Fact> {
    let n = block.len();
    let boundary = analysis.boundary(block);
    let mut facts: Vec<A::Fact> = vec![boundary; n + 1];

    // Seed every transfer once, in propagation order; re-queue a transfer
    // whenever its input fact changes. For straight-line blocks this
    // converges in the first sweep.
    let mut work: VecDeque<usize> = match A::DIRECTION {
        Direction::Forward => (0..n).collect(),
        Direction::Backward => (0..n).rev().collect(),
    };
    let mut queued = vec![true; n];
    while let Some(i) = work.pop_front() {
        queued[i] = false;
        let (src, dst) = match A::DIRECTION {
            Direction::Forward => (i, i + 1),
            Direction::Backward => (i + 1, i),
        };
        let mut fact = facts[src].clone();
        analysis.transfer(block, i, &block.tuples()[i], &mut fact);
        if fact != facts[dst] {
            facts[dst] = fact;
            let dependent = match A::DIRECTION {
                Direction::Forward => (i + 1 < n).then_some(i + 1),
                Direction::Backward => i.checked_sub(1),
            };
            if let Some(d) = dependent {
                if !queued[d] {
                    queued[d] = true;
                    work.push_back(d);
                }
            }
        }
    }
    Solution { facts }
}

// ---------------------------------------------------------------------
// Reaching definitions
// ---------------------------------------------------------------------

/// The definition of a variable that reaches a program point. In
/// straight-line code the reaching-definition set is always a singleton:
/// either the block entry or the most recent `Store`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarDef {
    /// The variable's value on block entry reaches this point.
    Entry,
    /// This `Store` is the unique reaching definition.
    Store(TupleId),
}

/// Forward reaching-definitions analysis; the fact is one [`VarDef`] per
/// variable (indexed by [`VarId`]).
pub struct ReachingDefs;

impl Analysis for ReachingDefs {
    type Fact = Vec<VarDef>;
    const DIRECTION: Direction = Direction::Forward;

    fn boundary(&self, block: &BasicBlock) -> Self::Fact {
        vec![VarDef::Entry; block.symbols().len()]
    }

    fn transfer(&self, _block: &BasicBlock, _index: usize, tuple: &Tuple, fact: &mut Self::Fact) {
        if tuple.op == Op::Store {
            if let Some(v) = tuple.a.as_var() {
                if let Some(slot) = fact.get_mut(v.0 as usize) {
                    *slot = VarDef::Store(tuple.id);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Coupled liveness
// ---------------------------------------------------------------------

/// The liveness fact: which variables and which tuple values are needed
/// at (i.e. after) a program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveFact {
    /// `vars[v]` — variable `v`'s current memory value is read later.
    pub vars: Vec<bool>,
    /// `values[i]` — tuple `i`'s result is consumed by a live tuple later.
    pub values: Vec<bool>,
}

/// Backward coupled variable/value liveness.
///
/// The coupling is the point: a `Load` makes its variable live **only
/// when the load's own value is live**, so a store read exclusively by
/// dead loads is itself dead. Every variable is live at block exit (the
/// block's final memory state is its observable result), so the last
/// store to each variable is always live.
pub struct Liveness;

impl Analysis for Liveness {
    type Fact = LiveFact;
    const DIRECTION: Direction = Direction::Backward;

    fn boundary(&self, block: &BasicBlock) -> Self::Fact {
        LiveFact {
            vars: vec![true; block.symbols().len()],
            values: vec![false; block.len()],
        }
    }

    fn transfer(&self, _block: &BasicBlock, index: usize, tuple: &Tuple, fact: &mut Self::Fact) {
        match tuple.op {
            Op::Store => {
                if let Some(v) = tuple.a.as_var() {
                    let v = v.0 as usize;
                    if fact.vars[v] {
                        if let Some(src) = tuple.b.as_tuple() {
                            if src.index() < fact.values.len() {
                                fact.values[src.index()] = true;
                            }
                        }
                    }
                    fact.vars[v] = false;
                }
            }
            Op::Load => {
                if fact.values[index] {
                    if let Some(v) = tuple.a.as_var() {
                        fact.vars[v.0 as usize] = true;
                    }
                }
            }
            _ => {
                if fact.values[index] {
                    for r in tuple.tuple_refs() {
                        if r.index() < fact.values.len() {
                            fact.values[r.index()] = true;
                        }
                    }
                }
            }
        }
        // Before this point the tuple's own value cannot be live: it has
        // not been computed yet.
        fact.values[index] = false;
    }
}

/// Per-tuple liveness derived from [`Liveness`]: `true` when the tuple's
/// effect is needed (a `Store` whose variable is read or reaches block
/// exit; any other tuple whose value a live tuple consumes).
pub fn live_tuples(block: &BasicBlock) -> Vec<bool> {
    let solution = solve(&Liveness, block);
    block
        .tuples()
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let after = solution.after(i);
            match t.op {
                Op::Store => {
                    t.a.as_var()
                        .is_some_and(|v| after.vars.get(v.0 as usize).copied().unwrap_or(true))
                }
                _ => after.values[i],
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Available values
// ---------------------------------------------------------------------

/// Forward availability of tuple values, positional (`fact[i]` — the
/// value of the tuple at position `i` has been computed). Tuple values
/// are immutable, so nothing is ever killed; what this buys over "index
/// is smaller" is robustness on malformed blocks, which is exactly where
/// the `A0502` lint needs it.
pub struct AvailableValues;

impl Analysis for AvailableValues {
    type Fact = Vec<bool>;
    const DIRECTION: Direction = Direction::Forward;

    fn boundary(&self, block: &BasicBlock) -> Self::Fact {
        vec![false; block.len()]
    }

    fn transfer(&self, _block: &BasicBlock, index: usize, tuple: &Tuple, fact: &mut Self::Fact) {
        if tuple.op.produces_value() {
            fact[index] = true;
        }
    }
}

// ---------------------------------------------------------------------
// Value numbering and constants (derived forward analyses)
// ---------------------------------------------------------------------

/// An operand as the value-numbering congruence sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum VnOperand {
    None,
    Imm(i64),
    Var(VarId),
    Vn(u32),
}

/// Congruence-based value numbers: `value_numbers(block)[i] == ..[j]`
/// implies tuples `i` and `j` compute the same value. Two tuples are
/// congruent when they apply the same operation to congruent operands
/// (canonically ordered for commutative ops); `Load`s additionally key on
/// the variable's store epoch, `Mov`s are transparent, operands that are
/// compile-time constants key on the constant itself, and `Store`s get a
/// fresh number each (effects never merge). This is at least as strong
/// as the CSE pass's syntactic value numbering, which is what lets the
/// validator check `Merge` witnesses against it.
pub fn value_numbers(block: &BasicBlock) -> Vec<u32> {
    let n = block.len();
    let konst = constants(block);
    let mut epoch: Vec<u32> = vec![0; block.symbols().len()];
    let mut table: HashMap<(Op, u32, VnOperand, VnOperand), u32> = HashMap::new();
    let mut vn: Vec<u32> = vec![0; n];
    let mut next = 0u32;

    for (i, t) in block.tuples().iter().enumerate() {
        let classify = |o: Operand| -> VnOperand {
            match o {
                Operand::None => VnOperand::None,
                Operand::Imm(v) => VnOperand::Imm(v),
                Operand::Var(v) => VnOperand::Var(v),
                Operand::Tuple(r) => match konst.get(r.index()).copied().flatten() {
                    Some(c) => VnOperand::Imm(c),
                    None => VnOperand::Vn(vn.get(r.index()).copied().unwrap_or(u32::MAX)),
                },
            }
        };
        let fresh = |next: &mut u32| {
            let v = *next;
            *next += 1;
            v
        };
        vn[i] = match t.op {
            Op::Store => {
                if let Some(v) = t.a.as_var() {
                    epoch[v.0 as usize] += 1;
                }
                fresh(&mut next)
            }
            Op::Mov => match t.a {
                // Copies are congruent to their source.
                Operand::Tuple(r) => vn[r.index()],
                _ => fresh(&mut next),
            },
            op => {
                // Constants (from any op that folds to one) key on value.
                let key = if let Some(c) = konst[i] {
                    (Op::Const, 0, VnOperand::Imm(c), VnOperand::None)
                } else {
                    let ep = match (op, t.a.as_var()) {
                        (Op::Load, Some(v)) => epoch[v.0 as usize],
                        _ => 0,
                    };
                    let (mut a, mut b) = (classify(t.a), classify(t.b));
                    if op.is_commutative() && format_order(a) > format_order(b) {
                        std::mem::swap(&mut a, &mut b);
                    }
                    (op, ep, a, b)
                };
                *table.entry(key).or_insert_with(|| {
                    let v = next;
                    next += 1;
                    v
                })
            }
        };
    }
    vn
}

/// A stable ordering key for canonicalizing commutative operands.
fn format_order(o: VnOperand) -> (u8, i64, u32) {
    match o {
        VnOperand::None => (0, 0, 0),
        VnOperand::Imm(v) => (1, v, 0),
        VnOperand::Var(v) => (2, 0, v.0),
        VnOperand::Vn(v) => (3, 0, v),
    }
}

/// Per-tuple compile-time constants, derived independently of the
/// constant-folding pass: `Const` tuples are their immediate, pure ops
/// fold known operands with checked arithmetic, and a `Load` whose
/// unique in-block reaching store wrote a known value is that value.
pub fn constants(block: &BasicBlock) -> Vec<Option<i64>> {
    let n = block.len();
    let reaching = solve(&ReachingDefs, block);
    let mut konst: Vec<Option<i64>> = vec![None; n];
    for (i, t) in block.tuples().iter().enumerate() {
        let operand_const = |o: Operand, konst: &[Option<i64>]| -> Option<i64> {
            match o {
                Operand::Imm(v) => Some(v),
                Operand::Tuple(r) => konst.get(r.index()).copied().flatten(),
                _ => None,
            }
        };
        konst[i] = match t.op {
            Op::Const => t.a.as_imm(),
            Op::Load => {
                let v = t.a.as_var();
                match v.and_then(|v| reaching.before(i).get(v.0 as usize).copied()) {
                    Some(VarDef::Store(s)) if s.index() < i => {
                        operand_const(block.tuples()[s.index()].b, &konst)
                    }
                    _ => None,
                }
            }
            Op::Add | Op::Sub | Op::Mul | Op::Div => {
                match (operand_const(t.a, &konst), operand_const(t.b, &konst)) {
                    (Some(a), Some(b)) => t.op.fold(a, b),
                    _ => None,
                }
            }
            Op::Neg | Op::Mov => operand_const(t.a, &konst).and_then(|a| t.op.fold_unary(a)),
            Op::Store | Op::Nop => None,
        };
    }
    konst
}

// ---------------------------------------------------------------------
// A05xx lints
// ---------------------------------------------------------------------

/// `A0502`: every tuple operand must reference a value computed strictly
/// earlier. Independent of the structural `A0101`/`A0102` checks (which
/// compare indices syntactically), this replays the question through the
/// [`AvailableValues`] dataflow — defense in depth, and safe to run on
/// structurally unsound blocks.
pub fn check_defined_values(block: &BasicBlock, report: &mut Report) {
    let n = block.len();
    let solution = solve(&AvailableValues, block);
    for (i, t) in block.tuples().iter().enumerate() {
        for r in t.tuple_refs() {
            let available = r.index() < n && solution.before(i)[r.index()];
            if !available {
                report.push(
                    Diagnostic::new(
                        DiagCode::UndefinedUse,
                        format!(
                            "operand @{r} of tuple {} uses a value not yet computed",
                            t.id
                        ),
                    )
                    .at(TupleId(i as u32))
                    .with_hint("dataflow: no earlier tuple makes this value available"),
                );
            }
        }
    }
}

/// The dataflow lints that require a structurally sound block:
/// `A0501` (liveness-dead store), `A0503` (transitively dead tuple) and
/// `A0504` (transitively implied dependence edge).
pub fn check_dataflow(block: &BasicBlock, report: &mut Report) {
    let live = live_tuples(block);

    // Stores the simple overwrite scan (A0109) already flags; A0501 only
    // reports what *needed* the liveness coupling to find.
    let mut simple_dead = vec![false; block.len()];
    {
        let mut last_store: HashMap<VarId, TupleId> = HashMap::new();
        for t in block.tuples() {
            match t.op {
                Op::Load => {
                    if let Some(v) = t.a.as_var() {
                        last_store.remove(&v);
                    }
                }
                Op::Store => {
                    if let Some(v) = t.a.as_var() {
                        if let Some(prev) = last_store.insert(v, t.id) {
                            simple_dead[prev.index()] = true;
                        }
                    }
                }
                _ => {}
            }
        }
    }

    let mut used = vec![false; block.len()];
    for t in block.tuples() {
        for r in t.tuple_refs() {
            used[r.index()] = true;
        }
    }

    for (i, t) in block.tuples().iter().enumerate() {
        if live[i] {
            continue;
        }
        if t.op == Op::Store {
            if !simple_dead[i] {
                let name = t.a.as_var().map_or_else(
                    || "?".to_string(),
                    |v| {
                        block
                            .symbols()
                            .name(v)
                            .map_or_else(|| format!("#v{}", v.0), str::to_string)
                    },
                );
                report.push(
                    Diagnostic::new(
                        DiagCode::DeadStoreLiveness,
                        format!(
                            "store {} to `{name}` is dead: only dead loads read it before it is overwritten",
                            t.id
                        ),
                    )
                    .at(t.id)
                    .with_hint("liveness: no live tuple observes this store's value"),
                );
            }
        } else if used[i] {
            // Unused values are A0105's; *used but transitively dead*
            // tuples are the dataflow-only finding.
            report.push(
                Diagnostic::new(
                    DiagCode::OrphanTuple,
                    format!(
                        "tuple {} ({}) is transitively dead: every consumer chain ends in dead code",
                        t.id, t.op
                    ),
                )
                .at(t.id)
                .with_hint("liveness: unreachable from any live store"),
            );
        }
    }

    // A0504: an Anti/Output edge u→w is redundant when some other path
    // u→m→…→w already orders the pair. Flow edges are exempt: they carry
    // latency constraints beyond ordering.
    let dag = DepDag::build(block);
    let analysis = BlockAnalysis::compute(&dag);
    for e in dag.edges() {
        if e.kind == DepKind::Flow || e.from >= e.to {
            continue;
        }
        let implied = dag
            .succs(e.from)
            .iter()
            .any(|m| m.to != e.to && m.to != e.from && analysis.depends_on(e.to, m.to));
        if implied {
            report.push(
                Diagnostic::new(
                    DiagCode::RedundantDependence,
                    format!(
                        "{:?} edge {} → {} is transitively implied by other dependences",
                        e.kind, e.from, e.to
                    ),
                )
                .at(e.to),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::BlockBuilder;

    fn block_with_dead_load_store() -> BasicBlock {
        // 1: Const 1; 2: Store x @1; 3: Load x (dead); 4: Const 2;
        // 5: Store x @4 — store 2 is dead but the overwrite scan misses
        // it because of the intervening (dead) load.
        let mut b = BlockBuilder::new("t");
        let c1 = b.constant(1);
        b.store("x", c1);
        let _l = b.load("x");
        let c2 = b.constant(2);
        b.store("x", c2);
        b.finish().unwrap()
    }

    #[test]
    fn reaching_defs_track_last_store() {
        let block = block_with_dead_load_store();
        let sol = solve(&ReachingDefs, &block);
        let x = block.symbols().lookup("x").unwrap();
        assert_eq!(sol.entry()[x.0 as usize], VarDef::Entry);
        // Before the load (index 2) the first store (id 1) reaches.
        assert_eq!(sol.before(2)[x.0 as usize], VarDef::Store(TupleId(1)));
        assert_eq!(sol.exit()[x.0 as usize], VarDef::Store(TupleId(4)));
    }

    #[test]
    fn coupled_liveness_kills_store_held_by_dead_load() {
        let block = block_with_dead_load_store();
        let live = live_tuples(&block);
        assert_eq!(live, vec![false, false, false, true, true]);
    }

    #[test]
    fn live_load_keeps_store_alive() {
        let mut b = BlockBuilder::new("t");
        let c1 = b.constant(1);
        b.store("x", c1);
        let l = b.load("x");
        b.store("y", l);
        let c2 = b.constant(2);
        b.store("x", c2);
        let block = b.finish().unwrap();
        assert!(live_tuples(&block).iter().all(|&l| l));
    }

    #[test]
    fn constants_flow_through_stores_and_loads() {
        let mut b = BlockBuilder::new("t");
        let c = b.constant(21);
        b.store("x", c);
        let l = b.load("x");
        let s = b.add(l, l);
        b.store("y", s);
        let block = b.finish().unwrap();
        let k = constants(&block);
        assert_eq!(k[2], Some(21)); // the load
        assert_eq!(k[3], Some(42)); // the add
    }

    #[test]
    fn constants_respect_checked_arithmetic() {
        let mut b = BlockBuilder::new("t");
        let big = b.constant(i64::MAX);
        let one = b.constant(1);
        let s = b.add(big, one);
        b.store("x", s);
        let block = b.finish().unwrap();
        assert_eq!(constants(&block)[2], None);
    }

    #[test]
    fn value_numbers_respect_epochs_and_commutativity() {
        let mut b = BlockBuilder::new("t");
        let x = b.load("x");
        let y = b.load("y");
        let a1 = b.add(x, y);
        let a2 = b.add(y, x);
        b.store("x", a1);
        let x2 = b.load("x");
        b.store("r", a2);
        b.store("s", x2);
        let block = b.finish().unwrap();
        let vn = value_numbers(&block);
        assert_eq!(vn[2], vn[3], "commutative adds are congruent");
        assert_ne!(vn[0], vn[5], "loads across a store are not congruent");
    }

    #[test]
    fn undefined_use_flagged_by_dataflow() {
        use pipesched_ir::{Operand, Tuple, VarId};
        let mut b = BasicBlock::new("raw");
        b.intern("x");
        b.replace_tuples(vec![
            Tuple {
                id: TupleId(0),
                op: Op::Store,
                a: Operand::Var(VarId(0)),
                b: Operand::Imm(1),
            },
            Tuple {
                id: TupleId(1),
                op: Op::Neg,
                a: Operand::Tuple(TupleId(0)), // store produces no value
                b: Operand::None,
            },
            Tuple {
                id: TupleId(2),
                op: Op::Neg,
                a: Operand::Tuple(TupleId(2)), // self reference
                b: Operand::None,
            },
        ]);
        let mut report = Report::new("t");
        check_defined_values(&b, &mut report);
        assert_eq!(report.count(crate::Severity::Error), 2, "{report}");
        assert!(report.has_code(DiagCode::UndefinedUse));
    }

    #[test]
    fn dataflow_lints_fire_on_dead_and_redundant() {
        let block = block_with_dead_load_store();
        let mut report = Report::new("t");
        check_dataflow(&block, &mut report);
        assert!(report.has_code(DiagCode::DeadStoreLiveness), "{report}");
        assert!(report.has_code(DiagCode::OrphanTuple), "{report}");
        assert!(!report.has_errors());
    }

    #[test]
    fn redundant_output_edge_flagged() {
        // Store x; Load x; Store x — the Output edge store→store is
        // implied by store→load→store.
        let mut b = BlockBuilder::new("t");
        let c = b.constant(5);
        b.store("x", c);
        let l = b.load("x");
        b.store("x", l);
        let block = b.finish().unwrap();
        let mut report = Report::new("t");
        check_dataflow(&block, &mut report);
        assert!(report.has_code(DiagCode::RedundantDependence), "{report}");
    }

    #[test]
    fn clean_block_has_no_dataflow_findings() {
        let mut b = BlockBuilder::new("t");
        let x = b.load("x");
        let y = b.load("y");
        let s = b.add(x, y);
        b.store("r", s);
        let block = b.finish().unwrap();
        let mut report = Report::new("t");
        check_defined_values(&block, &mut report);
        check_dataflow(&block, &mut report);
        assert!(report.is_clean(), "{report}");
    }
}
