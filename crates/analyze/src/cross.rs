//! Cross-checking the workspace's schedulers against each other.
//!
//! Every scheduler in `pipesched-core` answers the same question — how few
//! NOPs does this block need on this machine? — so their answers are
//! mutually constrained:
//!
//! * every produced schedule must certify clean ([`crate::certify`]);
//! * the branch-and-bound result is never worse than its own list-schedule
//!   seed, and the windowed schedule sits between the proven optimum and
//!   the plain list schedule it refines;
//! * two searches that both *prove* optimality must agree on μ exactly.
//!
//! [`cross_check`] runs all four (sequential B&B, list, windowed,
//! parallel B&B), certifies each, and reports any contradiction as
//! `A0306`. It is deliberately expensive — a regression harness and a
//! debug-build spot check, not a production path.

use pipesched_core::{
    list_schedule, parallel::parallel_search, search, windowed_schedule, ParallelConfig,
    SchedContext, SearchConfig,
};
use pipesched_ir::{BasicBlock, BlockAnalysis, DepDag};
use pipesched_machine::Machine;

use crate::certify::{certify, certify_scheduled, Claim};
use crate::diag::{DiagCode, Diagnostic, Report};
use pipesched_core::ScheduledBlock;

/// Run every scheduler on `block`, certify each result, and cross-check
/// their μ values. `lambda` is the curtail point for both searches.
pub fn cross_check(block: &BasicBlock, machine: &Machine, lambda: u64) -> Report {
    let mut report = Report::new(format!(
        "cross-check of `{}` on `{}`",
        block.name, machine.name
    ));
    let dag = DepDag::build(block);
    let analysis = BlockAnalysis::compute(&dag);
    let ctx = SchedContext::new(block, &dag, machine);

    // Sequential branch-and-bound.
    let cfg = SearchConfig::with_lambda(lambda);
    let bnb = search(&ctx, &cfg);
    let bnb_cert = certify_scheduled(block, machine, &to_scheduled(&bnb));
    report.merge(tagged(bnb_cert.report, "bnb"));

    // Machine-independent list schedule: a bare order whose μ we derive.
    let list_order = list_schedule(&dag, &analysis);
    let list_cert = certify(
        block,
        machine,
        Claim {
            order: &list_order,
            ..Claim::default()
        },
    );
    report.merge(tagged(list_cert.report, "list"));

    // Windowed scheduling (§5.3), window in the paper's suggested range.
    let windowed = windowed_schedule(&ctx, 8, lambda);
    let win_cert = certify(
        block,
        machine,
        Claim {
            order: &windowed.order,
            etas: Some(&windowed.etas),
            nops: Some(windowed.nops),
            ..Claim::default()
        },
    );
    report.merge(tagged(win_cert.report, "windowed"));

    // Parallel branch-and-bound with a couple of workers.
    let par = parallel_search(
        &ctx,
        &SearchConfig::with_lambda(lambda),
        &ParallelConfig::with_threads(2),
    );
    let par_cert = certify_scheduled(block, machine, &to_scheduled(&par));
    report.merge(tagged(par_cert.report, "parallel"));

    if report.has_errors() {
        // μ comparisons below are only meaningful between certified runs.
        return report;
    }

    let bnb_mu = bnb_cert.derived_nops.unwrap();
    let list_mu = list_cert.derived_nops.unwrap();
    let win_mu = win_cert.derived_nops.unwrap();
    let par_mu = par_cert.derived_nops.unwrap();

    let mut disagree = |message: String| {
        report.push(
            Diagnostic::new(DiagCode::SchedulerDisagreement, message)
                .with_hint("two independent schedulers contradict each other on this block"),
        );
    };
    if bnb_mu > list_mu {
        disagree(format!(
            "branch-and-bound needs {bnb_mu} NOPs but its own list seed needs {list_mu}"
        ));
    }
    if win_mu > list_mu {
        disagree(format!(
            "windowed schedule needs {win_mu} NOPs but the list schedule needs {list_mu}"
        ));
    }
    if bnb.optimal && win_mu < bnb_mu {
        disagree(format!(
            "windowed schedule needs {win_mu} NOPs, beating the proven optimum {bnb_mu}"
        ));
    }
    if bnb.optimal && par.optimal && bnb_mu != par_mu {
        disagree(format!(
            "sequential search proved μ = {bnb_mu} but parallel search proved μ = {par_mu}"
        ));
    }
    if !bnb.optimal && par.optimal && par_mu > bnb_mu {
        disagree(format!(
            "parallel search proved μ = {par_mu} optimal, yet a truncated search found {bnb_mu}"
        ));
    }
    report
}

/// Wrap a `SearchOutcome` as the `ScheduledBlock` the certifier takes.
fn to_scheduled(outcome: &pipesched_core::SearchOutcome) -> ScheduledBlock {
    ScheduledBlock {
        order: outcome.order.clone(),
        assignment: outcome.assignment.clone(),
        etas: outcome.etas.clone(),
        nops: outcome.nops,
        initial_order: outcome.initial_order.clone(),
        initial_nops: outcome.initial_nops,
        optimal: outcome.optimal,
        stats: outcome.stats,
    }
}

/// Prefix every diagnostic message with the scheduler it concerns.
fn tagged(report: Report, scheduler: &str) -> Report {
    let mut out = Report::new(report.context.clone());
    for d in report.diagnostics() {
        let mut d = d.clone();
        d.message = format!("[{scheduler}] {}", d.message);
        out.push(d);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::BlockBuilder;
    use pipesched_machine::presets;

    #[test]
    fn all_schedulers_agree_on_the_demo_block() {
        let mut b = BlockBuilder::new("cross");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        let n = b.mul(y, x);
        let s = b.add(m, n);
        b.store("r", s);
        let block = b.finish().unwrap();
        for machine in presets::all_presets() {
            let report = cross_check(&block, &machine, 50_000);
            assert!(!report.has_errors(), "{}:\n{report}", machine.name);
        }
    }

    #[test]
    fn empty_ish_block_cross_checks() {
        let mut b = BlockBuilder::new("tiny");
        b.load("a");
        let block = b.finish().unwrap();
        let report = cross_check(&block, &presets::deep_pipeline(), 1_000);
        assert!(!report.has_errors(), "{report}");
    }
}
