//! Independent schedule certification (codes `A03xx`).
//!
//! The workspace already has two implementations of the paper's timing
//! semantics: the scheduler's incremental engine (`pipesched-core`'s
//! `timing` module, §4.2.2) and the cycle-accurate simulator
//! (`pipesched-sim`'s busy-wait forward pass). This module is the **third**,
//! written against the paper's definitions and sharing no code with either:
//! issue times are derived *event-driven* — each instruction issues at
//!
//! ```text
//! cycle(t) = max(cycle(prev) + 1,                  // one issue per tick
//!                max over deps (d → t): cycle(d) + delay(d → t),
//!                free(σ(t)))                       // enqueue conflicts
//! ```
//!
//! with `free(p)` advanced to `cycle + enqueue(p)` after each issue — where
//! the simulator instead *searches* forward cycle by cycle and the engine
//! maintains incremental state with O(1) undo. Dependences are likewise
//! re-extracted here from the raw tuples (value uses, plus the
//! load/store orders on each variable) rather than taken from
//! [`pipesched_ir::DepDag`]. Agreement between three independently derived
//! answers is the certification.
//!
//! Unlike the other two, the certifier honors a claimed per-tuple pipeline
//! *assignment* (the search's pipeline-selection extension, §4.1
//! footnote 3): result delays and conflicts follow the assigned unit, not
//! the default one.

use pipesched_core::ScheduledBlock;
use pipesched_ir::{BasicBlock, Op, TupleId};
use pipesched_machine::{Machine, PipelineId};

use crate::diag::{DiagCode, Diagnostic, Report};

/// A schedule as claimed by a scheduler, to be certified against `block`.
///
/// `etas` and `nops` are optional so that bare orders (e.g. a list
/// schedule, which claims no padding) can be certified for legality and
/// have their μ derived.
#[derive(Debug, Clone, Copy, Default)]
pub struct Claim<'a> {
    /// The claimed instruction order.
    pub order: &'a [TupleId],
    /// Claimed pipeline per tuple (indexed by tuple id); `None` ⇒ defaults.
    pub assignment: Option<&'a [Option<PipelineId>]>,
    /// Claimed η per position of `order`.
    pub etas: Option<&'a [u32]>,
    /// Claimed total NOP count μ.
    pub nops: Option<u32>,
}

/// The certifier's verdict: the report plus the independently derived
/// timing, when legality allowed deriving one.
#[derive(Debug, Clone)]
pub struct Certification {
    /// Diagnostics (certification fails iff this has errors).
    pub report: Report,
    /// Issue cycle per *position* of the claimed order.
    pub issue: Option<Vec<u64>>,
    /// Total NOPs the claimed order actually needs.
    pub derived_nops: Option<u64>,
}

impl Certification {
    /// True when the claim survived certification.
    pub fn is_certified(&self) -> bool {
        !self.report.has_errors()
    }
}

/// Certify a [`ScheduledBlock`] produced by any scheduler in the workspace.
pub fn certify_scheduled(
    block: &BasicBlock,
    machine: &Machine,
    scheduled: &ScheduledBlock,
) -> Certification {
    certify(
        block,
        machine,
        Claim {
            order: &scheduled.order,
            assignment: Some(&scheduled.assignment),
            etas: Some(&scheduled.etas),
            nops: Some(scheduled.nops),
        },
    )
}

/// Certify an arbitrary claim against `block` on `machine`.
pub fn certify(block: &BasicBlock, machine: &Machine, claim: Claim<'_>) -> Certification {
    let mut report = Report::new(if block.name.is_empty() {
        "schedule".to_string()
    } else {
        format!("schedule of `{}` on `{}`", block.name, machine.name)
    });

    let Some(position) = check_permutation(block, claim.order, &mut report) else {
        return Certification {
            report,
            issue: None,
            derived_nops: None,
        };
    };
    let sigma = effective_assignment(block, machine, claim.assignment, &mut report);
    let deps = extract_deps(block, machine, &sigma);
    check_order(block, &position, &deps, &mut report);
    if report.has_errors() {
        return Certification {
            report,
            issue: None,
            derived_nops: None,
        };
    }

    let issue = derive_issue_times(machine, claim.order, &sigma, &deps);
    let derived_nops = issue.last().map_or(0, |&last| last + 1) - claim.order.len() as u64;
    check_claimed_padding(&claim, &issue, derived_nops, &mut report);

    Certification {
        report,
        issue: Some(issue),
        derived_nops: Some(derived_nops),
    }
}

/// `A0301`: the order must be a permutation of the block's tuple ids.
/// On success returns `position[tuple] = index in order`.
fn check_permutation(
    block: &BasicBlock,
    order: &[TupleId],
    report: &mut Report,
) -> Option<Vec<usize>> {
    let n = block.len();
    if order.len() != n {
        report.push(Diagnostic::new(
            DiagCode::NotAPermutation,
            format!("schedule has {} instructions, block has {n}", order.len()),
        ));
        return None;
    }
    let mut position = vec![usize::MAX; n];
    let mut ok = true;
    for (k, &t) in order.iter().enumerate() {
        if t.index() >= n {
            report.push(
                Diagnostic::new(
                    DiagCode::NotAPermutation,
                    format!("position {k} schedules tuple {t}, which is not in the block"),
                )
                .at(t),
            );
            ok = false;
        } else if position[t.index()] != usize::MAX {
            report.push(
                Diagnostic::new(
                    DiagCode::NotAPermutation,
                    format!("tuple {t} is scheduled twice"),
                )
                .at(t),
            );
            ok = false;
        } else {
            position[t.index()] = k;
        }
    }
    ok.then_some(position)
}

/// `A0305`: resolve the claimed assignment against the machine, falling
/// back to the default unit where no claim is made.
fn effective_assignment(
    block: &BasicBlock,
    machine: &Machine,
    claimed: Option<&[Option<PipelineId>]>,
    report: &mut Report,
) -> Vec<Option<PipelineId>> {
    let mut sigma: Vec<Option<PipelineId>> = block
        .tuples()
        .iter()
        .map(|t| machine.default_pipeline_for(t.op))
        .collect();
    let Some(claimed) = claimed else {
        return sigma;
    };
    if claimed.len() != block.len() {
        report.push(Diagnostic::new(
            DiagCode::IllegalAssignment,
            format!(
                "assignment covers {} tuples, block has {}",
                claimed.len(),
                block.len()
            ),
        ));
        return sigma;
    }
    for (i, &unit) in claimed.iter().enumerate() {
        let t = block.tuple(TupleId(i as u32));
        match unit {
            None => {
                // No claim for this tuple: the default unit stands. (The
                // searches emit `None` exactly for σ = ∅ ops, where the
                // default is also `None`.)
            }
            Some(p) => {
                if machine.pipelines_for(t.op).contains(&p) {
                    sigma[i] = Some(p);
                } else {
                    report.push(
                        Diagnostic::new(
                            DiagCode::IllegalAssignment,
                            format!("tuple {} ({}) is assigned pipeline {p}", t.id, t.op),
                        )
                        .at(t.id)
                        .with_hint(format!("σ({}) does not include that unit", t.op)),
                    );
                }
            }
        }
    }
    sigma
}

/// One merged dependence: `to` may not issue before `cycle(from) + delay`.
///
/// Public so the `pipesched-proof` certificate checker can replay prefix
/// timing against the same independently extracted dependences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dep {
    /// The producing (earlier) tuple.
    pub from: TupleId,
    /// Minimum ticks between issuing `from` and the dependent tuple.
    pub delay: u64,
    /// True when any merged constituent is a *flow* dependence (value use
    /// or load-after-store); anti and output dependences leave it false.
    pub flow: bool,
}

/// Re-extract dependences from the raw tuples, independent of `DepDag`.
///
/// Per the paper's model: a *flow* dependence (value use, or load after
/// store to the same variable) delays the consumer by the producer's
/// result latency; *anti* (store after load) and *output* (store after
/// store) dependences only force issue order, a delay of one tick.
/// Multiple dependences between the same pair merge by maximum delay
/// (and the union of their flow flags). Returns the immediate
/// predecessors of each tuple, indexed by tuple id.
pub fn extract_deps(
    block: &BasicBlock,
    machine: &Machine,
    sigma: &[Option<PipelineId>],
) -> Vec<Vec<Dep>> {
    let result_delay = |t: TupleId| -> u64 {
        sigma[t.index()].map_or(1, |p| u64::from(machine.pipeline(p).latency))
    };
    let nvars = block.symbols().len();
    let mut last_store: Vec<Option<TupleId>> = vec![None; nvars];
    let mut loads_since: Vec<Vec<TupleId>> = vec![Vec::new(); nvars];
    let mut preds: Vec<Vec<Dep>> = vec![Vec::new(); block.len()];

    for t in block.tuples() {
        let mut add = |to: TupleId, from: TupleId, delay: u64, flow: bool| {
            let list = &mut preds[to.index()];
            match list.iter_mut().find(|d| d.from == from) {
                Some(d) => {
                    d.delay = d.delay.max(delay);
                    d.flow |= flow;
                }
                None => list.push(Dep { from, delay, flow }),
            }
        };
        for r in t.tuple_refs() {
            add(t.id, r, result_delay(r), true);
        }
        match t.op {
            Op::Load => {
                if let Some(v) = t.a.as_var() {
                    if let Some(s) = last_store[v.0 as usize] {
                        add(t.id, s, result_delay(s), true);
                    }
                    loads_since[v.0 as usize].push(t.id);
                }
            }
            Op::Store => {
                if let Some(v) = t.a.as_var() {
                    if let Some(s) = last_store[v.0 as usize] {
                        add(t.id, s, 1, false);
                    }
                    for &l in &loads_since[v.0 as usize] {
                        add(t.id, l, 1, false);
                    }
                    last_store[v.0 as usize] = Some(t.id);
                    loads_since[v.0 as usize].clear();
                }
            }
            _ => {}
        }
    }
    preds
}

/// `A0302`: every dependence must point backwards in the claimed order.
fn check_order(block: &BasicBlock, position: &[usize], deps: &[Vec<Dep>], report: &mut Report) {
    for t in block.ids() {
        for d in &deps[t.index()] {
            if position[d.from.index()] >= position[t.index()] {
                report.push(
                    Diagnostic::new(
                        DiagCode::DependenceViolation,
                        format!("tuple {t} is scheduled before its producer {}", d.from),
                    )
                    .at(t)
                    .with_hint(format!(
                        "{t} depends on {} and must issue at least {} tick(s) later",
                        d.from, d.delay
                    )),
                );
            }
        }
    }
}

/// Event-driven issue-time derivation (see the module docs for the
/// recurrence). Assumes the order already passed the legality checks.
/// Public so the certificate checker can reuse this third timing
/// implementation without touching the scheduler's engine.
pub fn derive_issue_times(
    machine: &Machine,
    order: &[TupleId],
    sigma: &[Option<PipelineId>],
    deps: &[Vec<Dep>],
) -> Vec<u64> {
    let mut issue_of: Vec<u64> = vec![0; sigma.len()];
    let mut free: Vec<u64> = vec![0; machine.pipeline_count()];
    let mut issue = Vec::with_capacity(order.len());
    for (k, &t) in order.iter().enumerate() {
        let mut cycle = if k == 0 { 0 } else { issue[k - 1] + 1 };
        for d in &deps[t.index()] {
            cycle = cycle.max(issue_of[d.from.index()] + d.delay);
        }
        if let Some(p) = sigma[t.index()] {
            cycle = cycle.max(free[p.index()]);
            free[p.index()] = cycle + u64::from(machine.pipeline(p).enqueue);
        }
        issue_of[t.index()] = cycle;
        issue.push(cycle);
    }
    issue
}

/// `A0303`/`A0304`: claimed η vector and μ versus the derived issue times.
fn check_claimed_padding(claim: &Claim<'_>, issue: &[u64], derived_nops: u64, report: &mut Report) {
    if let Some(etas) = claim.etas {
        if etas.len() != issue.len() {
            report.push(Diagnostic::new(
                DiagCode::EtaMismatch,
                format!(
                    "η vector has {} entries for {} instructions",
                    etas.len(),
                    issue.len()
                ),
            ));
        } else {
            for (k, &eta) in etas.iter().enumerate() {
                let actual = if k == 0 {
                    issue[0]
                } else {
                    issue[k] - issue[k - 1] - 1
                };
                if u64::from(eta) != actual {
                    report.push(
                        Diagnostic::new(
                            DiagCode::EtaMismatch,
                            format!("η at position {k} is claimed {eta}, derived {actual}"),
                        )
                        .at(claim.order[k]),
                    );
                }
            }
        }
        if let Some(nops) = claim.nops {
            let sum: u64 = etas.iter().map(|&e| u64::from(e)).sum();
            if sum != u64::from(nops) {
                report.push(Diagnostic::new(
                    DiagCode::NopCountMismatch,
                    format!("η entries sum to {sum} but μ is claimed as {nops}"),
                ));
            }
        }
    }
    if let Some(nops) = claim.nops {
        if u64::from(nops) != derived_nops {
            report.push(
                Diagnostic::new(
                    DiagCode::NopCountMismatch,
                    format!("μ is claimed as {nops}, derived {derived_nops}"),
                )
                .with_hint("μ(Π) counts every padding NOP the order needs (definition 4)"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_core::Scheduler;
    use pipesched_ir::BlockBuilder;
    use pipesched_machine::presets;

    fn demo_block() -> BasicBlock {
        let mut b = BlockBuilder::new("demo");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        let s = b.add(m, x);
        b.store("r", s);
        b.finish().unwrap()
    }

    #[test]
    fn scheduler_output_certifies_clean() {
        let block = demo_block();
        for machine in presets::all_presets() {
            let scheduled = Scheduler::new(machine.clone()).schedule(&block);
            let cert = certify_scheduled(&block, &machine, &scheduled);
            assert!(cert.is_certified(), "{}:\n{}", machine.name, cert.report);
            assert_eq!(cert.derived_nops, Some(u64::from(scheduled.nops)));
        }
    }

    #[test]
    fn agrees_with_the_simulator() {
        // Third implementation versus second: same issue times.
        use pipesched_ir::DepDag;
        use pipesched_sim::{issue_times, TimingModel};
        let block = demo_block();
        for machine in presets::all_presets() {
            let scheduled = Scheduler::new(machine.clone()).schedule(&block);
            let dag = DepDag::build(&block);
            let tm = TimingModel::new(&block, &dag, &machine);
            let sim = issue_times(&tm, &scheduled.order);
            let cert = certify_scheduled(&block, &machine, &scheduled);
            assert_eq!(cert.issue.as_deref(), Some(&sim[..]), "{}", machine.name);
        }
    }

    #[test]
    fn program_order_is_legal_with_derived_mu() {
        let block = demo_block();
        let machine = presets::paper_simulation();
        let order: Vec<TupleId> = block.ids().collect();
        let cert = certify(
            &block,
            &machine,
            Claim {
                order: &order,
                ..Claim::default()
            },
        );
        assert!(cert.is_certified(), "{}", cert.report);
        assert!(
            cert.derived_nops.unwrap() > 0,
            "paper machine needs padding"
        );
    }

    #[test]
    fn rejects_non_permutations() {
        let block = demo_block();
        let machine = presets::paper_simulation();
        let short = [TupleId(0), TupleId(1)];
        let cert = certify(
            &block,
            &machine,
            Claim {
                order: &short,
                ..Claim::default()
            },
        );
        assert!(cert.report.has_code(DiagCode::NotAPermutation));

        let dup = [TupleId(0), TupleId(0), TupleId(2), TupleId(3), TupleId(4)];
        let cert = certify(
            &block,
            &machine,
            Claim {
                order: &dup,
                ..Claim::default()
            },
        );
        assert!(cert.report.has_code(DiagCode::NotAPermutation));
        assert!(cert.issue.is_none());
    }

    #[test]
    fn rejects_dependence_violation() {
        let block = demo_block();
        let machine = presets::paper_simulation();
        // Store before the Add it stores.
        let order = [TupleId(0), TupleId(1), TupleId(2), TupleId(4), TupleId(3)];
        let cert = certify(
            &block,
            &machine,
            Claim {
                order: &order,
                ..Claim::default()
            },
        );
        assert!(
            cert.report.has_code(DiagCode::DependenceViolation),
            "{}",
            cert.report
        );
    }

    #[test]
    fn rejects_wrong_eta_and_mu() {
        let block = demo_block();
        let machine = presets::paper_simulation();
        let scheduled = Scheduler::new(machine.clone()).schedule(&block);
        let mut etas = scheduled.etas.clone();
        etas[2] += 1;
        let cert = certify(
            &block,
            &machine,
            Claim {
                order: &scheduled.order,
                assignment: Some(&scheduled.assignment),
                etas: Some(&etas),
                nops: Some(scheduled.nops),
            },
        );
        assert!(
            cert.report.has_code(DiagCode::EtaMismatch),
            "{}",
            cert.report
        );
        assert!(cert.report.has_code(DiagCode::NopCountMismatch));

        let cert = certify(
            &block,
            &machine,
            Claim {
                order: &scheduled.order,
                assignment: Some(&scheduled.assignment),
                etas: Some(&scheduled.etas),
                nops: Some(scheduled.nops + 1),
            },
        );
        assert!(
            cert.report.has_code(DiagCode::NopCountMismatch),
            "{}",
            cert.report
        );
    }

    #[test]
    fn rejects_illegal_assignment() {
        let block = demo_block();
        let machine = presets::paper_simulation();
        let order: Vec<TupleId> = block.ids().collect();
        // Assign the first Load to the multiplier.
        let mut assignment: Vec<Option<PipelineId>> = vec![None; block.len()];
        let mul_unit = machine.pipelines_for(pipesched_ir::Op::Mul)[0];
        assignment[0] = Some(mul_unit);
        let cert = certify(
            &block,
            &machine,
            Claim {
                order: &order,
                assignment: Some(&assignment),
                ..Claim::default()
            },
        );
        assert!(
            cert.report.has_code(DiagCode::IllegalAssignment),
            "{}",
            cert.report
        );
    }

    #[test]
    fn memory_dependences_are_respected() {
        // store a; load a → flow through memory must delay the load.
        let mut b = BlockBuilder::new("mem");
        let c = b.constant(1);
        b.store("a", c);
        let l = b.load("a");
        b.store("b", l);
        let block = b.finish().unwrap();
        let machine = presets::paper_simulation();
        // Swap the load before the store of `a`: illegal.
        let order = [TupleId(0), TupleId(2), TupleId(1), TupleId(3)];
        let cert = certify(
            &block,
            &machine,
            Claim {
                order: &order,
                ..Claim::default()
            },
        );
        assert!(
            cert.report.has_code(DiagCode::DependenceViolation),
            "{}",
            cert.report
        );
    }

    #[test]
    fn empty_block_certifies() {
        let block = BasicBlock::new("empty");
        let machine = presets::paper_simulation();
        let cert = certify(&block, &machine, Claim::default());
        assert!(cert.is_certified());
        assert_eq!(cert.derived_nops, Some(0));
    }
}
