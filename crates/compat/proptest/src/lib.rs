//! Offline stand-in for `proptest`.
//!
//! The build container has no registry access, so the workspace vendors the
//! API subset its property tests use: the [`Strategy`] trait with `prop_map`
//! / `prop_recursive` / `boxed`, [`strategy::Just`], integer-range and tuple
//! strategies, [`collection::vec`], [`arbitrary::any`], `ProptestConfig`, and
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!`
//! macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its generated inputs verbatim.
//! * **Deterministic seeding.** Case `k` of test `t` always sees the same
//!   inputs (seed = FNV-1a(test path) ⊕ k), so failures reproduce exactly
//!   without a persistence file.
//! * Generation is plain `rand`-driven sampling; `prop_recursive` flips a
//!   fair coin between leaf and branch at each depth level instead of
//!   tracking a size budget.

/// Test-runner types: config, RNG, and the error the assertion macros return.
pub mod test_runner {
    use rand::{Rng, SeedableRng};

    /// Per-`proptest!` block configuration (subset: case count only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A test-case failure produced by `prop_assert!` and friends.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property did not hold.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic per-case generator.
    #[derive(Debug, Clone)]
    pub struct TestRng(rand::rngs::StdRng);

    impl TestRng {
        /// RNG for case `case` of the test named `test_path`.
        pub fn for_case(test_path: &str, case: u32) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
            for byte in test_path.bytes() {
                seed ^= u64::from(byte);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(rand::rngs::StdRng::seed_from_u64(
                seed ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }

    impl Rng for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// The [`Strategy`] trait and the combinator types it produces.
pub mod strategy {
    use std::rc::Rc;

    use rand::Rng;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every generated value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Build a recursive strategy: `recurse` turns "a strategy for the
        /// type" into "a strategy for one more level of structure". The
        /// `_desired_size` / `_expected_branch_size` hints are accepted for
        /// API compatibility and ignored; depth alone bounds recursion.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                current = Union::new(vec![leaf.clone(), recurse(current).boxed()]).boxed();
            }
            current
        }

        /// Type-erase into a cloneable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A cloneable, type-erased strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice among alternatives (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `options`. Panics if empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(*self.start()..=*self.end())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A, B);
        (A, B, C);
        (A, B, C, D);
    }
}

/// `any::<T>()` and the [`Arbitrary`] trait behind it.
pub mod arbitrary {
    use std::marker::PhantomData;

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (subset: `vec`).
pub mod collection {
    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The names property tests conventionally glob-import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {}\n{}",
                    stringify!($cond),
                    format!($($fmt)+)
                ),
            ));
        }
    };
}

/// Skip the current case when an assumption does not hold.
///
/// The real proptest rejects-and-regenerates; this stand-in simply counts
/// the case as passing, which preserves soundness (never fails a test the
/// real crate would pass) at some loss of statistical power.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Fail the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: `{left:?}`\n right: `{right:?}`"),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: `{left:?}`\n right: `{right:?}`\n{}",
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Uniform choice among strategy arms (all arms must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $($rest:tt)+) => {
        $crate::__proptest_one!(($cfg) [] $($rest)+);
    };
}

/// One-item muncher: collects the attributes preceding a property function,
/// dropping any user-written `#[test]`. The real proptest crate expects an
/// explicit `#[test]` on each property and *replaces* it; re-emitting it
/// alongside the expansion's own `#[test]` gave every property two test
/// attributes, so libtest registered (and ran) each one twice.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_one {
    (($cfg:expr) [$($kept:tt)*] #[test] $($rest:tt)*) => {
        $crate::__proptest_one!(($cfg) [$($kept)*] $($rest)*);
    };
    (($cfg:expr) [$($kept:tt)*] #[$meta:meta] $($rest:tt)*) => {
        $crate::__proptest_one!(($cfg) [$($kept)* #[$meta]] $($rest)*);
    };
    (($cfg:expr) [$($kept:tt)*]
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $($kept)*
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let verbose = ::std::env::var_os("PROPTEST_SHIM_VERBOSE").is_some();
            for case in 0..config.cases {
                if verbose {
                    eprintln!("[proptest] {} case {}/{}", stringify!($name), case + 1, config.cases);
                }
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest case {}/{} of {} failed: {}\ninputs:\n{}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        err,
                        inputs
                    );
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Declare property tests. Each function body runs once per generated case;
/// use `prop_assert!` / `prop_assert_eq!` inside.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn generation_is_deterministic_per_case() {
        let strat = crate::collection::vec(any::<u8>(), 2..40);
        let mut a = TestRng::for_case("t", 7);
        let mut b = TestRng::for_case("t", 7);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        let mut c = TestRng::for_case("t", 8);
        assert_ne!(strat.generate(&mut a), strat.generate(&mut c));
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let strat = crate::collection::vec(0i64..10, 2..5);
        let mut rng = TestRng::for_case("len", 0);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
    }

    #[test]
    fn oneof_union_hits_every_arm() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::for_case("arms", 0);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn recursive_strategy_terminates_and_recurses() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn tree_depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(l, r) => 1 + tree_depth(l).max(tree_depth(r)),
            }
        }
        let strat = (0i64..5)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            });
        let mut rng = TestRng::for_case("tree", 1);
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(tree_depth(&strat.generate(&mut rng)));
        }
        assert!(max_depth >= 1, "never recursed");
        assert!(max_depth <= 3, "depth bound violated: {max_depth}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn macro_generates_and_checks(xs in crate::collection::vec(any::<u8>(), 1..8),
                                      k in 0usize..100) {
            prop_assert!(!xs.is_empty());
            prop_assert!(k < 100, "k out of range: {k}");
            prop_assert_eq!(xs.len(), xs.iter().count());
        }
    }
}
