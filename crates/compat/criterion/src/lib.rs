//! Offline stand-in for `criterion`, keeping the workspace's `cargo bench`
//! targets building and running without registry access.
//!
//! It mirrors the API subset the benches use — `benchmark_group`,
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `criterion_group!`, `criterion_main!` — and reports the
//! mean wall-clock time per iteration. There is no statistical machinery,
//! outlier rejection, or HTML report; this is a smoke harness, not a
//! measurement lab.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function-name/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean time per iteration of the most recent `iter` call.
    last_mean: Duration,
}

impl Bencher {
    /// Time `f`, running one untimed warm-up pass then `samples` timed passes.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.last_mean = start.elapsed() / self.samples as u32;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean: Duration::ZERO,
        };
        f(&mut b);
        self.criterion
            .report(&format!("{}/{}", self.name, id.id), b.last_mean);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (retained for API compatibility; groups also end on drop).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    quiet: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `--quiet`-ish mode for programmatic runs (e.g. compile smoke tests).
        let quiet = std::env::var_os("CRITERION_SHIM_QUIET").is_some();
        Criterion { quiet }
    }
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    fn report(&self, label: &str, mean: Duration) {
        if !self.quiet {
            println!("{label:<56} {mean:>12.2?}/iter");
        }
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures_sample_size_times() {
        std::env::set_var("CRITERION_SHIM_QUIET", "1");
        let mut calls = 0usize;
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        // one warm-up pass + five timed passes
        assert_eq!(calls, 6);
    }

    #[test]
    fn bench_with_input_passes_input() {
        std::env::set_var("CRITERION_SHIM_QUIET", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(1);
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 9), &9u64, |b, &x| b.iter(|| seen = x));
        assert_eq!(seen, 9);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter(32).id, "32");
    }
}
