//! Offline stand-in for `crossbeam`, exposing the scoped-thread subset the
//! workspace uses (`crossbeam::scope` / `crossbeam::thread::scope`) on top of
//! `std::thread::scope`.
//!
//! Behavioural difference vs the real crate: a panicking worker aborts the
//! scope by propagating the panic instead of surfacing it as `Err` — callers
//! here immediately `.expect()` the result anyway, so the observable outcome
//! (a panic naming the worker) is the same.

/// Scoped threads (mirrors `crossbeam::thread`).
pub mod thread {
    /// A scope handle passed to the closure and to each spawned worker.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker; the closure receives the scope handle (commonly
        /// ignored as `|_|`) so nested spawning is possible.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            ScopedJoinHandle(self.inner.spawn(move || f(&handle)))
        }
    }

    /// Run `f` with a scope; all spawned workers are joined before returning.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_share_borrowed_state() {
        let counter = AtomicUsize::new(0);
        crate::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .expect("worker panicked");
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let counter = AtomicUsize::new(0);
        crate::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .expect("worker panicked");
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn join_returns_value() {
        let out =
            crate::scope(|scope| scope.spawn(|_| 6 * 7).join().expect("join")).expect("scope");
        assert_eq!(out, 42);
    }
}
