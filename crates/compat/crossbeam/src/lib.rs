//! Offline stand-in for `crossbeam`, exposing the scoped-thread subset the
//! workspace uses (`crossbeam::scope` / `crossbeam::thread::scope`) on top of
//! `std::thread::scope`.
//!
//! Behavioural difference vs the real crate: a panicking worker aborts the
//! scope by propagating the panic instead of surfacing it as `Err` — callers
//! here immediately `.expect()` the result anyway, so the observable outcome
//! (a panic naming the worker) is the same.

/// Scoped threads (mirrors `crossbeam::thread`).
pub mod thread {
    /// A scope handle passed to the closure and to each spawned worker.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker; the closure receives the scope handle (commonly
        /// ignored as `|_|`) so nested spawning is possible.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            ScopedJoinHandle(self.inner.spawn(move || f(&handle)))
        }
    }

    /// Run `f` with a scope; all spawned workers are joined before returning.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

/// Work-stealing deques (mirrors `crossbeam::deque` / `crossbeam-deque`).
///
/// API- and semantics-compatible subset of the Chase-Lev deque the real
/// crate implements: the owning [`Worker`] pushes and pops LIFO at the
/// bottom, any number of [`Stealer`] clones take FIFO from the top, and a
/// steal can report [`Steal::Retry`] under contention. Behavioural
/// difference vs the real crate: the storage is a mutex-guarded ring
/// rather than a lock-free array — correct under the same protocol, with
/// coarser contention behaviour. The workspace's workloads move whole
/// search subtrees per element, so element-level lock cost is noise.
///
/// The storage mutex is the `pipesched-check` facade: under
/// `RUSTFLAGS="--cfg model"` every push/pop/steal becomes a scheduling
/// point of the deterministic model checker, and the linearizability
/// harness in `crates/check/tests/model_deque.rs` explores this very
/// code's interleavings.
pub mod deque {
    use pipesched_check::sync::Mutex;
    use std::collections::VecDeque;
    use std::sync::Arc;

    /// Outcome of a steal attempt (mirrors `crossbeam_deque::Steal`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The deque was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// Lost a race with the owner or another thief; try again.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if the attempt succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// True when the deque was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// The owner's end of a work-stealing deque: LIFO push/pop at the
    /// bottom, so the owner walks its own subtree depth-first while
    /// thieves take the shallowest (largest) subtrees from the top.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    /// A thief's handle: FIFO steal from the top. Cloneable and `Send`.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Default for Worker<T> {
        fn default() -> Self {
            Self::new_lifo()
        }
    }

    impl<T> Worker<T> {
        /// A new empty LIFO deque (the Chase-Lev configuration).
        pub fn new_lifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// A stealer handle for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }

        /// Push a task at the bottom (owner end).
        pub fn push(&self, task: T) {
            self.inner.lock().push_back(task);
        }

        /// Pop the most recently pushed task (owner end, LIFO).
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().pop_back()
        }

        /// True when no tasks are queued.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.inner.lock().len()
        }
    }

    impl<T> Stealer<T> {
        /// Steal the oldest task (top end, FIFO).
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// True when no tasks are queued.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().is_empty()
        }
    }
}

// The deque tests lock outside a model exploration, so they are compiled
// out under `--cfg model` (the instrumented facade requires
// `model::explore`); the model-mode coverage lives in
// `crates/check/tests/model_deque.rs`.
#[cfg(all(test, not(model)))]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_share_borrowed_state() {
        let counter = AtomicUsize::new(0);
        crate::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .expect("worker panicked");
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let counter = AtomicUsize::new(0);
        crate::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .expect("worker panicked");
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn join_returns_value() {
        let out =
            crate::scope(|scope| scope.spawn(|_| 6 * 7).join().expect("join")).expect("scope");
        assert_eq!(out, 42);
    }

    #[test]
    fn deque_owner_is_lifo_thief_is_fifo() {
        let w = crate::deque::Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal().success(), Some(1), "thief takes the oldest");
        assert_eq!(w.pop(), Some(3), "owner takes the newest");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn deque_steals_race_cleanly_across_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let w = crate::deque::Worker::new_lifo();
        for i in 0..1000 {
            w.push(i);
        }
        let taken = AtomicUsize::new(0);
        crate::scope(|scope| {
            for _ in 0..4 {
                let s = w.stealer();
                let taken = &taken;
                scope.spawn(move |_| loop {
                    match s.steal() {
                        crate::deque::Steal::Success(_) => {
                            taken.fetch_add(1, Ordering::Relaxed);
                        }
                        crate::deque::Steal::Empty => break,
                        crate::deque::Steal::Retry => {}
                    }
                });
            }
        })
        .expect("worker panicked");
        assert_eq!(taken.load(Ordering::Relaxed), 1000);
        assert!(w.is_empty());
    }
}
