//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! tiny API subset it actually uses: [`Rng`], [`SeedableRng`] and
//! [`rngs::StdRng`]. The generator is SplitMix64 — statistically fine for
//! synthetic-workload generation and property tests, deterministic per seed,
//! and *not* a cryptographic generator (neither is the real `StdRng`'s use
//! here).

/// Types that can be sampled uniformly from an `Rng` (the `Standard`
/// distribution of the real crate, collapsed into one trait).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as i32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges an `Rng` can sample from uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator interface (API subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of an inferrable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Seedable generators (API subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
