//! Offline stand-in for `parking_lot`, backed by the `pipesched-check`
//! synchronization facade.
//!
//! The only behavioural differences that matter to this workspace: `lock()`
//! returns the guard directly (poisoning is swallowed, matching
//! `parking_lot`'s poison-free semantics), and `into_inner()` is infallible.
//!
//! On a normal build the facade is a thin wrapper over `std::sync`; under
//! `RUSTFLAGS="--cfg model"` every lock routes through the deterministic
//! model checker's instrumented scheduler, so code using this shim can be
//! model-checked without modification (see `crates/check`). `RwLock` stays
//! std-backed — nothing the model harnesses cover uses it.

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = pipesched_check::sync::MutexGuard<'a, T>;

/// A poison-free mutex with `parking_lot`'s calling convention, routed
/// through the `pipesched-check` facade.
pub type Mutex<T> = pipesched_check::sync::Mutex<T>;

/// A condition variable with `parking_lot`'s poison-free convention,
/// routed through the `pipesched-check` facade.
pub type Condvar = pipesched_check::sync::Condvar;

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A poison-free reader-writer lock with `parking_lot`'s calling convention.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(all(test, not(model)))]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
