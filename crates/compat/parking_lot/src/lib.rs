//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The only behavioural differences that matter to this workspace: `lock()`
//! returns the guard directly (poisoning is swallowed, matching
//! `parking_lot`'s poison-free semantics), and `into_inner()` is infallible.

use std::sync::TryLockError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A poison-free mutex with `parking_lot`'s calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A poison-free reader-writer lock with `parking_lot`'s calling convention.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
