#![warn(missing_docs)]

//! Independent checker for the branch-and-bound search's optimality
//! certificates (diagnostic codes `A04xx`).
//!
//! [`check_certificate`] replays a [`Certificate`] recorded by
//! `pipesched-core`'s proof logger and verifies that it constitutes a
//! complete case analysis of the block's schedule space:
//!
//! * every placement ([`ProofEvent::Enter`] / [`ProofEvent::BoundPrune`])
//!   is legal under dependences the checker re-extracts itself;
//! * every bound prune's μ and chain/resource derivation is re-derived
//!   from scratch and must match term by term ([`DiagCode::BoundArithmeticMismatch`]),
//!   and the recorded bound must actually dominate the incumbent at that
//!   point ([`DiagCode::UnjustifiedBoundPrune`]);
//! * every equivalence prune's witness must have been placed at the same
//!   node and the pair must satisfy the *restricted* interchangeability
//!   condition — pipeline-free, dependence-free **and identical successor
//!   sets** — re-established from the DAG
//!   ([`DiagCode::StaleEquivalenceWitness`]). Certificates recorded under
//!   the paper's unrestricted rule are checked against the restricted
//!   condition and rejected where they over-prune;
//! * every node's dispositions cover *exactly* its unscheduled
//!   instructions ([`DiagCode::ProofCoverageGap`]);
//! * the incumbent chain is replayed — each improvement's μ re-derived —
//!   and must terminate at the trailer's claimed order and μ
//!   ([`DiagCode::IncumbentRegression`]).
//!
//! The checker shares **no code** with the search engine: timing is
//! replayed through the event-driven recurrence of the `pipesched-analyze`
//! crate (the workspace's third, independently written timing
//! implementation), over dependences re-extracted by
//! [`pipesched_analyze::extract_deps`] rather than taken from
//! [`pipesched_ir::DepDag`]. A certificate that survives yields
//! [`ProofVerdict::OptimalCertified`] — a strictly stronger claim than the
//! certifier's `LegalWithCost`-style verdict, because the *no cheaper
//! schedule exists* half no longer rests on trusting the search.

use pipesched_analyze::certify::{extract_deps, Dep};
use pipesched_analyze::diag::{DiagCode, Diagnostic, Report};
use pipesched_core::bnb::EquivalenceMode;
use pipesched_core::bounds::BoundKind;
use pipesched_core::proof::{Certificate, ProofEvent};
use pipesched_ir::{BasicBlock, TupleId};
use pipesched_machine::{Machine, PipelineId};

/// The checker's verdict on a certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofVerdict {
    /// The certificate is a complete, arithmetically sound case analysis:
    /// no legal schedule of the block needs fewer than `nops` NOPs, and
    /// the trailer's order achieves exactly `nops`.
    OptimalCertified {
        /// The certified optimal μ.
        nops: u32,
    },
    /// The certificate was rejected; the report's `A04xx` diagnostics say
    /// why. Nothing about the schedule's optimality can be concluded.
    Rejected,
}

/// Result of checking one certificate.
#[derive(Debug, Clone)]
pub struct ProofCheck {
    /// Accept/reject verdict.
    pub verdict: ProofVerdict,
    /// Diagnostics (rejection reasons; empty on acceptance).
    pub report: Report,
}

impl ProofCheck {
    /// True when the certificate was accepted.
    pub fn is_certified(&self) -> bool {
        matches!(self.verdict, ProofVerdict::OptimalCertified { .. })
    }
}

/// Replay `cert` against `block` on `machine` and verify every obligation.
pub fn check_certificate(block: &BasicBlock, machine: &Machine, cert: &Certificate) -> ProofCheck {
    let mut report = Report::new(format!(
        "optimality certificate for `{}` on `{}`",
        if block.name.is_empty() {
            "block"
        } else {
            &block.name
        },
        machine.name
    ));
    let verdict = match Checker::new(block, machine).run(cert, &mut report) {
        Ok(nops) => ProofVerdict::OptimalCertified { nops },
        Err(()) => ProofVerdict::Rejected,
    };
    ProofCheck { verdict, report }
}

/// One open search-tree node during replay.
struct Frame {
    /// Candidates this node has dispositioned (any event kind).
    disposed: Vec<u32>,
    /// Candidates actually placed at this node (`Enter` or `BoundPrune`) —
    /// the only valid equivalence witnesses.
    placed_here: Vec<u32>,
}

impl Frame {
    fn new() -> Self {
        Frame {
            disposed: Vec::new(),
            placed_here: Vec::new(),
        }
    }
}

/// Replay state: static block/machine data plus an undoable prefix timing
/// built on the analyze crate's recurrence.
struct Checker<'a> {
    n: usize,
    block: &'a BasicBlock,
    /// Default unit per tuple (fixed-σ replay; selection is unsupported).
    sigma: Vec<Option<PipelineId>>,
    /// Immediate predecessors, independently re-extracted.
    deps: Vec<Vec<Dep>>,
    /// Transposed successor edges `(to, flow)`, sorted.
    succs: Vec<Vec<(u32, bool)>>,
    /// Sorted successor tuple ids (interchangeability condition).
    succ_ids: Vec<Vec<u32>>,
    /// Static chain tails, mirroring the bound's definition.
    tail: Vec<i64>,
    /// Per-pipe enqueue times.
    enqueue: Vec<i64>,
    // --- dynamic prefix state ---
    issue: Vec<Option<i64>>,
    prefix: Vec<u32>,
    t_prev: i64,
    free: Vec<i64>,
    /// Per push: previous `t_prev` and, when σ ≠ ∅, the pipe's previous
    /// `free` value.
    undo: Vec<(i64, Option<(usize, i64)>)>,
}

impl<'a> Checker<'a> {
    fn new(block: &'a BasicBlock, machine: &'a Machine) -> Self {
        let n = block.len();
        let sigma: Vec<Option<PipelineId>> = block
            .tuples()
            .iter()
            .map(|t| machine.default_pipeline_for(t.op))
            .collect();
        let deps = extract_deps(block, machine, &sigma);
        let mut succs: Vec<Vec<(u32, bool)>> = vec![Vec::new(); n];
        for (i, list) in deps.iter().enumerate() {
            for d in list {
                succs[d.from.index()].push((i as u32, d.flow));
            }
        }
        for s in &mut succs {
            s.sort_unstable();
        }
        let succ_ids: Vec<Vec<u32>> = succs
            .iter()
            .map(|s| {
                let mut ids: Vec<u32> = s.iter().map(|&(to, _)| to).collect();
                ids.dedup();
                ids
            })
            .collect();
        // tail[i]: minimum issue-to-issue cycles from i to the last
        // instruction of any dependence chain below it. Flow edges cost the
        // producer's cheapest allowed latency, other edges one tick — the
        // same definition the search's bound uses, re-derived here from the
        // checker's own dependences.
        let mut tail = vec![0i64; n];
        for i in (0..n).rev() {
            let own_latency: i64 = machine
                .pipelines_for(block.tuple(TupleId(i as u32)).op)
                .iter()
                .map(|&p| i64::from(machine.pipeline(p).latency))
                .min()
                .unwrap_or(1);
            for &(to, flow) in &succs[i] {
                let delay = if flow { own_latency } else { 1 };
                tail[i] = tail[i].max(delay + tail[to as usize]);
            }
        }
        let enqueue: Vec<i64> = (0..machine.pipeline_count())
            .map(|p| i64::from(machine.pipeline(PipelineId(p as u32)).enqueue))
            .collect();
        Checker {
            n,
            block,
            sigma,
            deps,
            succs,
            succ_ids,
            tail,
            enqueue,
            issue: vec![None; n],
            prefix: Vec::new(),
            t_prev: -1,
            free: vec![0; machine.pipeline_count()],
            undo: Vec::new(),
        }
    }

    // --- prefix timing (analyze recurrence, with O(1) undo) ---

    fn earliest(&self, t: usize) -> i64 {
        let mut cycle = self.t_prev + 1;
        for d in &self.deps[t] {
            let pt = self.issue[d.from.index()].expect("predecessor must be placed");
            cycle = cycle.max(pt + d.delay as i64);
        }
        if let Some(p) = self.sigma[t] {
            cycle = cycle.max(self.free[p.index()]);
        }
        cycle
    }

    fn legal(&self, t: usize) -> bool {
        self.deps[t]
            .iter()
            .all(|d| self.issue[d.from.index()].is_some())
    }

    fn push(&mut self, t: usize) {
        let cycle = self.earliest(t);
        self.issue[t] = Some(cycle);
        self.prefix.push(t as u32);
        let pipe_undo = self.sigma[t].map(|p| {
            let prev = self.free[p.index()];
            self.free[p.index()] = cycle + self.enqueue[p.index()];
            (p.index(), prev)
        });
        self.undo.push((self.t_prev, pipe_undo));
        self.t_prev = cycle;
    }

    fn pop(&mut self) {
        let t = self.prefix.pop().expect("pop on empty prefix") as usize;
        self.issue[t] = None;
        let (prev_t_prev, pipe_undo) = self.undo.pop().expect("undo stack in sync");
        self.t_prev = prev_t_prev;
        if let Some((p, prev)) = pipe_undo {
            self.free[p] = prev;
        }
    }

    /// μ of the current prefix: NOPs between its issues.
    fn mu(&self) -> u32 {
        (self.t_prev + 1 - self.prefix.len() as i64) as u32
    }

    /// Re-derive the critical-path bound's `(chain, resource, bound)` for
    /// the current prefix — the same three values the search recorded.
    fn terms(&self) -> (i64, i64, u32) {
        let n = self.n as i64;
        let placed = self.prefix.len() as i64;
        let remaining = n - placed;
        if remaining == 0 {
            return (self.t_prev, self.t_prev, self.mu());
        }
        let base = self.t_prev + remaining;
        let mut chain = base;
        for t in 0..self.n {
            if self.issue[t].is_some() || !self.legal(t) {
                continue;
            }
            chain = chain.max(self.earliest(t) + self.tail[t]);
        }
        let mut resource = base;
        let mut counts = vec![0i64; self.enqueue.len()];
        for t in 0..self.n {
            if self.issue[t].is_none() {
                if let Some(p) = self.sigma[t] {
                    counts[p.index()] += 1;
                }
            }
        }
        for (p, &k) in counts.iter().enumerate() {
            if k > 0 {
                resource = resource.max(self.t_prev + 1 + self.enqueue[p] * (k - 1));
            }
        }
        let bound = (chain.max(resource) - (n - 1)).max(0) as u32;
        (chain, resource, bound)
    }

    /// A tuple is *free* when it uses no pipeline and has no dependences.
    fn is_free(&self, t: usize) -> bool {
        self.sigma[t].is_none() && self.deps[t].is_empty()
    }

    /// Sorted `(from, flow)` predecessor key (structural classes).
    fn pred_key(&self, t: usize) -> Vec<(u32, bool)> {
        let mut key: Vec<(u32, bool)> = self.deps[t].iter().map(|d| (d.from.0, d.flow)).collect();
        key.sort_unstable();
        key
    }

    /// The interchangeability condition for an equivalence prune of
    /// `candidate` against `witness`, under the header's filter mode.
    /// Certificates recorded with [`EquivalenceMode::UnrestrictedPaper`]
    /// are deliberately held to the *restricted* (sound) condition.
    fn interchangeable(&self, mode: EquivalenceMode, candidate: usize, witness: usize) -> bool {
        match mode {
            EquivalenceMode::Off => false,
            EquivalenceMode::Paper | EquivalenceMode::UnrestrictedPaper => {
                self.is_free(candidate)
                    && self.is_free(witness)
                    && self.succ_ids[candidate] == self.succ_ids[witness]
            }
            EquivalenceMode::Structural => {
                self.block.tuple(TupleId(candidate as u32)).op
                    == self.block.tuple(TupleId(witness as u32)).op
                    && self.pred_key(candidate) == self.pred_key(witness)
                    && self.succs[candidate] == self.succs[witness]
            }
        }
    }

    // --- the replay proper ---

    fn run(&mut self, cert: &Certificate, report: &mut Report) -> Result<u32, ()> {
        let reject = |report: &mut Report, code: DiagCode, msg: String| {
            report.push(Diagnostic::new(code, msg));
            Err(())
        };

        if cert.header.n as usize != self.n {
            return reject(
                report,
                DiagCode::CertificateMalformed,
                format!(
                    "certificate is for a block of {} instructions, this block has {}",
                    cert.header.n, self.n
                ),
            );
        }

        // The global admissible lower bound, re-derived on the empty
        // prefix: what any `ProvedByBound` event must match.
        let (_, _, global_lb) = self.terms();

        // Validate and replay the initial incumbent.
        self.check_permutation(&cert.header.initial_order, "initial order", report)?;
        let initial_mu = self.replay_order(&cert.header.initial_order, "initial order", report)?;
        if initial_mu != cert.header.initial_nops {
            return reject(
                report,
                DiagCode::IncumbentRegression,
                format!(
                    "initial order needs {} NOPs, header claims {}",
                    initial_mu, cert.header.initial_nops
                ),
            );
        }
        let mut incumbent = cert.header.initial_nops;
        let mut best_order: Vec<u32> = cert.header.initial_order.clone();

        if self.n == 0 {
            if !cert.events.is_empty() {
                return reject(
                    report,
                    DiagCode::CertificateMalformed,
                    "an empty block's certificate must record no events".to_string(),
                );
            }
            if !cert.trailer.complete || cert.trailer.nops != 0 || !cert.trailer.order.is_empty() {
                return reject(
                    report,
                    DiagCode::IncumbentRegression,
                    "an empty block schedules trivially with zero NOPs".to_string(),
                );
            }
            return Ok(0);
        }

        let mut frames: Vec<Frame> = vec![Frame::new()];
        let mut proved = false;

        for (k, ev) in cert.events.iter().enumerate() {
            if proved {
                return reject(
                    report,
                    DiagCode::CertificateMalformed,
                    format!("event {k} follows the terminal ProvedByBound event"),
                );
            }
            if frames.is_empty() {
                return reject(
                    report,
                    DiagCode::CertificateMalformed,
                    format!("event {k} follows the root node's Leave"),
                );
            }
            match *ev {
                ProofEvent::Enter { candidate } => {
                    let c = self.candidate_index(candidate, k, report)?;
                    if !self.legal(c) {
                        return reject(
                            report,
                            DiagCode::IllegalPlacement,
                            format!("event {k} enters tuple {candidate} before its predecessors"),
                        );
                    }
                    let frame = frames.last_mut().expect("non-empty");
                    frame.disposed.push(candidate);
                    frame.placed_here.push(candidate);
                    self.push(c);
                    frames.push(Frame::new());
                }
                ProofEvent::LegalityPrune { candidate } => {
                    let c = self.candidate_index(candidate, k, report)?;
                    if self.legal(c) {
                        return reject(
                            report,
                            DiagCode::ProofCoverageGap,
                            format!(
                                "event {k} legality-prunes tuple {candidate}, but all its \
                                 predecessors are scheduled — its subtree is not covered"
                            ),
                        );
                    }
                    frames
                        .last_mut()
                        .expect("non-empty")
                        .disposed
                        .push(candidate);
                }
                ProofEvent::EquivalencePrune { candidate, witness } => {
                    let c = self.candidate_index(candidate, k, report)?;
                    let frame_placed = &frames.last().expect("non-empty").placed_here;
                    if !frame_placed.contains(&witness) {
                        return reject(
                            report,
                            DiagCode::StaleEquivalenceWitness,
                            format!(
                                "event {k} cites witness {witness}, which was never placed \
                                 at this node"
                            ),
                        );
                    }
                    if !self.interchangeable(cert.header.equivalence, c, witness as usize) {
                        return reject(
                            report,
                            DiagCode::StaleEquivalenceWitness,
                            format!(
                                "event {k}: tuples {candidate} and {witness} are not \
                                 interchangeable (need σ = ∅, ρ = ∅ and identical \
                                 successor sets)"
                            ),
                        );
                    }
                    frames
                        .last_mut()
                        .expect("non-empty")
                        .disposed
                        .push(candidate);
                }
                ProofEvent::BoundPrune {
                    candidate,
                    mu,
                    bound,
                    chain,
                    resource,
                } => {
                    let c = self.candidate_index(candidate, k, report)?;
                    if !self.legal(c) {
                        return reject(
                            report,
                            DiagCode::IllegalPlacement,
                            format!(
                                "event {k} bound-prunes tuple {candidate}, which is not \
                                 even legal here"
                            ),
                        );
                    }
                    self.push(c);
                    let derived_mu = self.mu();
                    let arithmetic = if derived_mu != mu {
                        Some(format!(
                            "event {k}: recorded μ {mu}, re-derived {derived_mu}"
                        ))
                    } else {
                        match cert.header.bound {
                            BoundKind::AlphaBeta => {
                                if chain.is_some() || resource.is_some() || bound != mu {
                                    Some(format!(
                                        "event {k}: the α-β bound is μ itself ({mu}), \
                                         recorded bound {bound}"
                                    ))
                                } else {
                                    None
                                }
                            }
                            BoundKind::CriticalPath => {
                                let (dc, dr, db) = self.terms();
                                if chain != Some(dc) || resource != Some(dr) || bound != db {
                                    Some(format!(
                                        "event {k}: recorded (chain, resource, bound) = \
                                         ({chain:?}, {resource:?}, {bound}), re-derived \
                                         ({dc}, {dr}, {db})"
                                    ))
                                } else {
                                    None
                                }
                            }
                        }
                    };
                    self.pop();
                    if let Some(msg) = arithmetic {
                        return reject(report, DiagCode::BoundArithmeticMismatch, msg);
                    }
                    if bound < incumbent {
                        return reject(
                            report,
                            DiagCode::UnjustifiedBoundPrune,
                            format!(
                                "event {k}: bound {bound} does not dominate the \
                                 incumbent μ {incumbent} — a cheaper completion may \
                                 have been pruned"
                            ),
                        );
                    }
                    let frame = frames.last_mut().expect("non-empty");
                    frame.disposed.push(candidate);
                    frame.placed_here.push(candidate);
                }
                ProofEvent::Leave => {
                    let frame = frames.pop().expect("non-empty");
                    self.check_coverage(&frame, k, report)?;
                    if frames.is_empty() {
                        // Root closed: the whole space is covered. Any
                        // further event is caught at the top of the loop.
                    } else {
                        self.pop();
                    }
                }
                ProofEvent::Complete { mu } => {
                    self.check_leaf(k, report)?;
                    let derived = self.mu();
                    if derived != mu {
                        return reject(
                            report,
                            DiagCode::IncumbentRegression,
                            format!("event {k}: complete schedule μ {mu}, re-derived {derived}"),
                        );
                    }
                    if mu < incumbent {
                        return reject(
                            report,
                            DiagCode::IncumbentRegression,
                            format!(
                                "event {k}: a complete schedule with μ {mu} beats the \
                                 incumbent {incumbent} but was not recorded as an \
                                 improvement"
                            ),
                        );
                    }
                    frames.pop();
                    self.pop();
                }
                ProofEvent::Improve { mu } => {
                    self.check_leaf(k, report)?;
                    let derived = self.mu();
                    if derived != mu {
                        return reject(
                            report,
                            DiagCode::IncumbentRegression,
                            format!("event {k}: improvement μ {mu}, re-derived {derived}"),
                        );
                    }
                    if mu >= incumbent {
                        return reject(
                            report,
                            DiagCode::IncumbentRegression,
                            format!(
                                "event {k}: claimed improvement to {mu} does not beat \
                                 the incumbent {incumbent}"
                            ),
                        );
                    }
                    incumbent = mu;
                    best_order = self.prefix.clone();
                    frames.pop();
                    self.pop();
                }
                ProofEvent::ProvedByBound { lb } => {
                    if lb != global_lb {
                        return reject(
                            report,
                            DiagCode::LowerBoundMismatch,
                            format!(
                                "event {k}: claimed global lower bound {lb}, re-derived \
                                 {global_lb}"
                            ),
                        );
                    }
                    if incumbent > lb {
                        return reject(
                            report,
                            DiagCode::LowerBoundMismatch,
                            format!(
                                "event {k}: incumbent μ {incumbent} has not reached the \
                                 bound {lb}"
                            ),
                        );
                    }
                    proved = true;
                }
            }
        }

        if !cert.trailer.complete {
            return reject(
                report,
                DiagCode::ProofCoverageGap,
                "the search was curtailed (trailer says incomplete): a truncated \
                 transcript cannot certify optimality"
                    .to_string(),
            );
        }
        if !proved && !frames.is_empty() {
            return reject(
                report,
                DiagCode::ProofCoverageGap,
                format!(
                    "transcript ends with {} search node(s) still open",
                    frames.len()
                ),
            );
        }

        // Trailer: the claim must be exactly what the replay established.
        if cert.trailer.order != best_order {
            return reject(
                report,
                DiagCode::IncumbentRegression,
                "trailer order is not the incumbent the transcript established".to_string(),
            );
        }
        if cert.trailer.nops != incumbent {
            return reject(
                report,
                DiagCode::IncumbentRegression,
                format!(
                    "trailer claims μ {}, the replayed incumbent is {incumbent}",
                    cert.trailer.nops
                ),
            );
        }
        // Re-derive the claimed order's μ one final time, end to end.
        while !self.prefix.is_empty() {
            self.pop();
        }
        let final_mu = self.replay_order(&cert.trailer.order, "trailer order", report)?;
        if final_mu != cert.trailer.nops {
            return reject(
                report,
                DiagCode::IncumbentRegression,
                format!(
                    "trailer order needs {final_mu} NOPs, trailer claims {}",
                    cert.trailer.nops
                ),
            );
        }
        Ok(cert.trailer.nops)
    }

    /// Validate an event's candidate id: in range and not yet scheduled.
    fn candidate_index(
        &self,
        candidate: u32,
        event: usize,
        report: &mut Report,
    ) -> Result<usize, ()> {
        let c = candidate as usize;
        if c >= self.n {
            report.push(Diagnostic::new(
                DiagCode::CertificateMalformed,
                format!("event {event} names tuple {candidate}, which is not in the block"),
            ));
            return Err(());
        }
        if self.issue[c].is_some() {
            report.push(Diagnostic::new(
                DiagCode::CertificateMalformed,
                format!("event {event} dispositions tuple {candidate}, which is already scheduled"),
            ));
            return Err(());
        }
        Ok(c)
    }

    /// A closing node's dispositions must cover exactly its unscheduled
    /// instructions — no gaps, no duplicates.
    fn check_coverage(&self, frame: &Frame, event: usize, report: &mut Report) -> Result<(), ()> {
        let unscheduled = self.n - self.prefix.len();
        let mut seen = vec![false; self.n];
        let mut distinct = 0usize;
        for &d in &frame.disposed {
            let i = d as usize;
            if i < self.n && self.issue[i].is_none() && !seen[i] {
                seen[i] = true;
                distinct += 1;
            }
        }
        if distinct != unscheduled || frame.disposed.len() != unscheduled {
            report.push(Diagnostic::new(
                DiagCode::ProofCoverageGap,
                format!(
                    "event {event} closes a node that dispositioned {distinct} of its \
                     {unscheduled} unscheduled instructions"
                ),
            ));
            return Err(());
        }
        Ok(())
    }

    /// `Complete`/`Improve` may only appear once every instruction is
    /// placed, and never at the root.
    fn check_leaf(&self, event: usize, report: &mut Report) -> Result<(), ()> {
        if self.prefix.len() != self.n {
            report.push(Diagnostic::new(
                DiagCode::CertificateMalformed,
                format!(
                    "event {event} reports a complete schedule with only {} of {} \
                     instructions placed",
                    self.prefix.len(),
                    self.n
                ),
            ));
            return Err(());
        }
        Ok(())
    }

    fn check_permutation(&self, order: &[u32], what: &str, report: &mut Report) -> Result<(), ()> {
        let mut seen = vec![false; self.n];
        let ok = order.len() == self.n
            && order.iter().all(|&t| {
                let i = t as usize;
                i < self.n && !std::mem::replace(&mut seen[i], true)
            });
        if !ok {
            report.push(Diagnostic::new(
                DiagCode::CertificateMalformed,
                format!(
                    "{what} is not a permutation of the block's {} tuples",
                    self.n
                ),
            ));
            return Err(());
        }
        Ok(())
    }

    /// Replay a full order from the empty prefix, returning its μ; the
    /// prefix is unwound again afterwards. Rejects illegal placements.
    fn replay_order(&mut self, order: &[u32], what: &str, report: &mut Report) -> Result<u32, ()> {
        debug_assert!(self.prefix.is_empty());
        let mut result = Ok(());
        for &t in order {
            if !self.legal(t as usize) {
                report.push(Diagnostic::new(
                    DiagCode::IllegalPlacement,
                    format!("{what} schedules tuple {t} before its predecessors"),
                ));
                result = Err(());
                break;
            }
            self.push(t as usize);
        }
        let mu = self.mu();
        while !self.prefix.is_empty() {
            self.pop();
        }
        result.map(|()| mu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_core::bnb::{prove, SearchConfig};
    use pipesched_core::SchedContext;
    use pipesched_ir::{BlockBuilder, DepDag};
    use pipesched_machine::presets;

    fn demo_block() -> BasicBlock {
        let mut b = BlockBuilder::new("demo");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        let s = b.add(m, x);
        b.store("r", s);
        b.finish().unwrap()
    }

    #[test]
    fn accepts_a_real_certificate() {
        let block = demo_block();
        let machine = presets::paper_simulation();
        let dag = DepDag::build(&block);
        let ctx = SchedContext::new(&block, &dag, &machine);
        let (out, cert) = prove(&ctx, &SearchConfig::default());
        assert!(out.optimal);
        let check = check_certificate(&block, &machine, &cert);
        assert!(check.is_certified(), "{}", check.report);
        assert_eq!(
            check.verdict,
            ProofVerdict::OptimalCertified { nops: out.nops }
        );
    }

    #[test]
    fn rejects_wrong_block() {
        let block = demo_block();
        let machine = presets::paper_simulation();
        let dag = DepDag::build(&block);
        let ctx = SchedContext::new(&block, &dag, &machine);
        let (_, cert) = prove(&ctx, &SearchConfig::default());

        let mut other = BlockBuilder::new("other");
        other.load("q");
        let other = other.finish().unwrap();
        let check = check_certificate(&other, &machine, &cert);
        assert!(!check.is_certified());
        assert!(check.report.has_code(DiagCode::CertificateMalformed));
    }

    #[test]
    fn empty_block_certificate() {
        let block = BlockBuilder::new("empty").finish().unwrap();
        let machine = presets::paper_simulation();
        let dag = DepDag::build(&block);
        let ctx = SchedContext::new(&block, &dag, &machine);
        let (_, cert) = prove(&ctx, &SearchConfig::default());
        let check = check_certificate(&block, &machine, &cert);
        assert!(check.is_certified(), "{}", check.report);
    }
}
