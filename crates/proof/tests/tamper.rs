//! Property tests for the certificate checker: real certificates are
//! accepted verbatim, and *any* single-record tamper — dropping a prune,
//! lowering a bound, swapping an equivalence pair — is rejected with the
//! specific `A04xx` code the corruption deserves.

use proptest::prelude::*;

use pipesched_analyze::diag::DiagCode;
use pipesched_core::bnb::{prove, search, EquivalenceMode, SearchConfig};
use pipesched_core::proof::{Certificate, ProofEvent};
use pipesched_core::{global_lower_bound, BoundKind, SchedContext};
use pipesched_ir::{BasicBlock, BlockBuilder, DepDag, Op, TupleId};
use pipesched_machine::{presets, Machine};
use pipesched_proof::{check_certificate, ProofVerdict};

/// A random basic block built from a byte script (same construction as the
/// core optimality suite): every generated block is valid by construction.
fn block_from_script(script: &[u8], max_len: usize) -> BasicBlock {
    let mut b = BlockBuilder::new("prop");
    let vars = ["a", "b", "c", "d"];
    for chunk in script.chunks(3) {
        if b.len() >= max_len {
            break;
        }
        let (op, x, y) = (
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        );
        let n = b.len();
        let pick = |sel: u8| TupleId((sel as usize % n) as u32);
        match op % 6 {
            0 => {
                b.load(vars[x as usize % vars.len()]);
            }
            1 => {
                b.constant(i64::from(x));
            }
            2 | 3 if n > 0 => {
                let ops = [Op::Add, Op::Sub, Op::Mul, Op::Div];
                let o = ops[y as usize % ops.len()];
                match (producing(&b, pick(x)), producing(&b, pick(y))) {
                    (Some(l), Some(r)) => {
                        b.binary(o, l, r);
                    }
                    _ => {
                        b.load(vars[x as usize % vars.len()]);
                    }
                }
            }
            4 if n > 0 => {
                if let Some(v) = producing(&b, pick(x)) {
                    b.store(vars[y as usize % vars.len()], v);
                } else {
                    b.load(vars[y as usize % vars.len()]);
                }
            }
            _ => {
                b.load(vars[y as usize % vars.len()]);
            }
        }
    }
    if b.is_empty() {
        b.load("a");
    }
    b.finish().expect("generated blocks are valid")
}

/// Find a value-producing tuple at or before `t` (scanning backwards).
fn producing(b: &BlockBuilder, t: TupleId) -> Option<TupleId> {
    let block = b.clone().finish_unchecked();
    (0..=t.index())
        .rev()
        .map(|i| TupleId(i as u32))
        .find(|&i| block.tuple(i).op.produces_value())
}

fn machines() -> Vec<Machine> {
    vec![
        presets::paper_simulation(),
        presets::deep_pipeline(),
        presets::functional_units(),
        presets::section2_example(),
    ]
}

/// An exhaustive-search config (no curtailment, no lower-bound early stop)
/// so every certificate closes its root node and tampering with any prune
/// record breaks coverage.
fn exhaustive(bound: BoundKind, equivalence: EquivalenceMode) -> SearchConfig {
    SearchConfig {
        lambda: u64::MAX,
        bound,
        equivalence,
        terminate_on_lower_bound: false,
        ..SearchConfig::default()
    }
}

fn prove_on(block: &BasicBlock, machine: &Machine, cfg: &SearchConfig) -> (u32, Certificate) {
    let dag = DepDag::build(block);
    let ctx = SchedContext::new(block, &dag, machine);
    let (out, cert) = prove(&ctx, cfg);
    assert!(out.optimal);
    (out.nops, cert)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every certificate the instrumented search emits — under either
    /// bound and every sound equivalence mode — is checker-accepted, with
    /// the certified μ equal to the search's.
    #[test]
    fn real_certificates_are_accepted(
        script in proptest::collection::vec(any::<u8>(), 0..30),
        machine_sel in 0usize..4,
    ) {
        let block = block_from_script(&script, 8);
        let machine = &machines()[machine_sel];
        for bound in [BoundKind::AlphaBeta, BoundKind::CriticalPath] {
            for equivalence in [EquivalenceMode::Off, EquivalenceMode::Paper,
                                EquivalenceMode::Structural] {
                let (nops, cert) = prove_on(&block, machine, &exhaustive(bound, equivalence));
                let check = check_certificate(&block, machine, &cert);
                prop_assert!(
                    check.is_certified(),
                    "{bound:?}/{equivalence:?} rejected on {}:\n{}\n{}",
                    machine.name, block, check.report
                );
                prop_assert_eq!(check.verdict, ProofVerdict::OptimalCertified { nops });
            }
        }
        // The lower-bound early-stop path (a terminal ProvedByBound event)
        // must also certify.
        let cfg = SearchConfig { lambda: u64::MAX, ..SearchConfig::default() };
        let (_, cert) = prove_on(&block, machine, &cfg);
        let check = check_certificate(&block, machine, &cert);
        prop_assert!(check.is_certified(), "{}", check.report);
    }

    /// The NDJSON round trip preserves both the digest and acceptance.
    #[test]
    fn ndjson_round_trip_is_lossless(
        script in proptest::collection::vec(any::<u8>(), 0..30),
        machine_sel in 0usize..4,
    ) {
        let block = block_from_script(&script, 8);
        let machine = &machines()[machine_sel];
        let cfg = exhaustive(BoundKind::CriticalPath, EquivalenceMode::Paper);
        let (_, cert) = prove_on(&block, machine, &cfg);
        let text = cert.to_ndjson();
        let back = Certificate::from_ndjson(&text).expect("round trip parses");
        prop_assert_eq!(back.digest(), cert.digest());
        prop_assert!(check_certificate(&block, machine, &back).is_certified());
    }

    /// Dropping any single prune record leaves that subtree uncovered:
    /// the checker must report `A0402 ProofCoverageGap`.
    #[test]
    fn dropped_prune_is_a_coverage_gap(
        script in proptest::collection::vec(any::<u8>(), 0..30),
        machine_sel in 0usize..4,
        victim in 0usize..64,
    ) {
        let block = block_from_script(&script, 8);
        let machine = &machines()[machine_sel];
        let cfg = exhaustive(BoundKind::CriticalPath, EquivalenceMode::Paper);
        let (_, mut cert) = prove_on(&block, machine, &cfg);

        let prunes: Vec<usize> = cert.events.iter().enumerate()
            .filter(|(_, e)| matches!(e,
                ProofEvent::LegalityPrune { .. }
                | ProofEvent::EquivalencePrune { .. }
                | ProofEvent::BoundPrune { .. }))
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!prunes.is_empty());
        cert.events.remove(prunes[victim % prunes.len()]);

        let check = check_certificate(&block, machine, &cert);
        prop_assert!(!check.is_certified());
        prop_assert!(
            check.report.has_code(DiagCode::ProofCoverageGap),
            "expected A0402, got:\n{}", check.report
        );
    }

    /// Lowering any bound-prune's recorded bound breaks the re-derived
    /// arithmetic: the checker must report `A0403 BoundArithmeticMismatch`.
    #[test]
    fn lowered_bound_is_an_arithmetic_mismatch(
        script in proptest::collection::vec(any::<u8>(), 0..30),
        machine_sel in 0usize..4,
        victim in 0usize..64,
        bound_sel in 0usize..2,
    ) {
        let block = block_from_script(&script, 8);
        let machine = &machines()[machine_sel];
        let bound = [BoundKind::AlphaBeta, BoundKind::CriticalPath][bound_sel];
        let cfg = exhaustive(bound, EquivalenceMode::Paper);
        let (_, mut cert) = prove_on(&block, machine, &cfg);

        let prunes: Vec<usize> = cert.events.iter().enumerate()
            .filter(|(_, e)| matches!(e, ProofEvent::BoundPrune { bound, .. } if *bound > 0))
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!prunes.is_empty());
        let i = prunes[victim % prunes.len()];
        if let ProofEvent::BoundPrune { bound, .. } = &mut cert.events[i] {
            *bound -= 1;
        }

        let check = check_certificate(&block, machine, &cert);
        prop_assert!(!check.is_certified());
        prop_assert!(
            check.report.has_code(DiagCode::BoundArithmeticMismatch),
            "expected A0403, got:\n{}", check.report
        );
    }

    /// Swapping an equivalence prune's (candidate, witness) pair cites a
    /// witness that was never placed at that node: the checker must report
    /// `A0405 StaleEquivalenceWitness`.
    #[test]
    fn swapped_witness_pair_is_stale(
        script in proptest::collection::vec(any::<u8>(), 0..30),
        machine_sel in 0usize..4,
        victim in 0usize..64,
        mode_sel in 0usize..2,
    ) {
        let block = block_from_script(&script, 8);
        let machine = &machines()[machine_sel];
        let equivalence = [EquivalenceMode::Paper, EquivalenceMode::Structural][mode_sel];
        let cfg = exhaustive(BoundKind::CriticalPath, equivalence);
        let (_, mut cert) = prove_on(&block, machine, &cfg);

        let prunes: Vec<usize> = cert.events.iter().enumerate()
            .filter(|(_, e)| matches!(e, ProofEvent::EquivalencePrune { .. }))
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!prunes.is_empty());
        let i = prunes[victim % prunes.len()];
        if let ProofEvent::EquivalencePrune { candidate, witness } = &mut cert.events[i] {
            std::mem::swap(candidate, witness);
        }

        let check = check_certificate(&block, machine, &cert);
        prop_assert!(!check.is_certified());
        prop_assert!(
            check.report.has_code(DiagCode::StaleEquivalenceWitness),
            "expected A0405, got:\n{}", check.report
        );
    }

    /// Inflating the trailer's claimed μ (understating quality would need a
    /// schedule that does not exist; overstating must also be caught) is an
    /// incumbent regression.
    #[test]
    fn tampered_trailer_nops_is_a_regression(
        script in proptest::collection::vec(any::<u8>(), 3..30),
        machine_sel in 0usize..4,
    ) {
        let block = block_from_script(&script, 8);
        let machine = &machines()[machine_sel];
        let cfg = exhaustive(BoundKind::CriticalPath, EquivalenceMode::Paper);
        let (_, mut cert) = prove_on(&block, machine, &cfg);
        cert.trailer.nops += 1;
        let check = check_certificate(&block, machine, &cert);
        prop_assert!(!check.is_certified());
        prop_assert!(
            check.report.has_code(DiagCode::IncumbentRegression),
            "expected A0406, got:\n{}", check.report
        );
    }

    /// Certificates recorded under the paper's *unrestricted* rule [5c]
    /// are held to the restricted interchangeability condition: the checker
    /// either accepts (when the block has no distinguishing successors) or
    /// rejects specifically with `A0405` — and the search itself may have
    /// lost the optimum, which is exactly why the verdict matters.
    #[test]
    fn unrestricted_rule_certificates_never_pass_unsoundly(
        script in proptest::collection::vec(any::<u8>(), 0..30),
        machine_sel in 0usize..4,
    ) {
        let block = block_from_script(&script, 8);
        let machine = &machines()[machine_sel];
        let cfg = exhaustive(BoundKind::CriticalPath, EquivalenceMode::UnrestrictedPaper);
        let dag = DepDag::build(&block);
        let ctx = SchedContext::new(&block, &dag, machine);
        let (out, cert) = prove(&ctx, &cfg);
        prop_assert!(out.optimal); // "optimal" by its own (unsound) lights
        let check = check_certificate(&block, machine, &cert);
        if check.is_certified() {
            // Acceptance is only possible when every unrestricted prune
            // happened to satisfy the restricted condition too — in which
            // case the certified μ must be the true optimum.
            let sound = search(&ctx, &exhaustive(BoundKind::CriticalPath, EquivalenceMode::Off));
            prop_assert_eq!(check.verdict, ProofVerdict::OptimalCertified { nops: sound.nops });
        } else {
            prop_assert!(
                check.report.has_code(DiagCode::StaleEquivalenceWitness),
                "expected A0405, got:\n{}", check.report
            );
        }
    }

    /// `Certificate::by_bound` — the shortcut certificate the service's
    /// heuristic tiers emit when a schedule meets the global lower bound —
    /// is accepted exactly when the claimed μ really equals that bound.
    #[test]
    fn by_bound_certificates_check(
        script in proptest::collection::vec(any::<u8>(), 0..30),
        machine_sel in 0usize..4,
    ) {
        let block = block_from_script(&script, 8);
        let machine = &machines()[machine_sel];
        let dag = DepDag::build(&block);
        let ctx = SchedContext::new(&block, &dag, machine);
        let out = search(&ctx, &SearchConfig { lambda: u64::MAX, ..SearchConfig::default() });
        prop_assert!(out.optimal);
        let lb = global_lower_bound(&ctx);
        prop_assume!(out.nops == lb);
        let order: Vec<u32> = out.order.iter().map(|t| t.0).collect();
        let cert = Certificate::by_bound(block.len() as u32, order, out.nops, lb);
        let check = check_certificate(&block, machine, &cert);
        prop_assert!(check.is_certified(), "{}", check.report);

        // ... and overstating the bound by one is an A0408.
        let order: Vec<u32> = out.order.iter().map(|t| t.0).collect();
        let forged = Certificate::by_bound(block.len() as u32, order, out.nops, lb + 1);
        let check = check_certificate(&block, machine, &forged);
        prop_assert!(!check.is_certified());
        prop_assert!(
            check.report.has_code(DiagCode::LowerBoundMismatch),
            "expected A0408, got:\n{}", check.report
        );
    }
}
