//! A small, dependency-free JSON layer.
//!
//! The build environment has no registry access, so `serde`/`serde_json` are
//! unavailable; this crate supplies the JSON subset pipesched needs — machine
//! config files and structured diagnostics. The document model is a plain
//! [`Json`] tree; crates convert to and from their own types explicitly
//! instead of deriving.
//!
//! Object member order is preserved (members are a `Vec`, not a map), so
//! printing is deterministic and round-trips are stable.

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fractional or exponent part, within `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; member order is preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// The value of `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if any (floats with integral value included).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i64),
            _ => None,
        }
    }

    /// The numeric payload as a float, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Render on one line.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render indented with two spaces per level.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // Keep a distinguishing dot so the value re-parses as Float.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, i, lvl| {
                    items[i].write(out, indent, lvl);
                });
            }
            Json::Object(members) => {
                write_seq(
                    out,
                    indent,
                    level,
                    '{',
                    '}',
                    members.len(),
                    |out, i, lvl| {
                        let (k, v) = &members[i];
                        write_escaped(out, k);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        v.write(out, indent, lvl);
                    },
                );
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        item(out, i, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document; trailing garbage is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.error(format!("unexpected character `{}`", b as char))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: decode \uD800-\uDBFF + \uDC00-\uDFFF.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_keyword("\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.error("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so it's valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.error("expected four hex digits")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.error("expected digit"));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

/// Convenience constructors for hand-built documents.
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Self {
        Json::Int(n)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Self {
        Json::Int(i64::from(n))
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Int(n as i64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Self {
        Json::Float(f)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Self {
        Json::Array(items.into_iter().map(Into::into).collect())
    }
}

/// Build a [`Json::Object`] from `("key", value)` pairs.
#[macro_export]
macro_rules! json_object {
    ($(($key:expr, $value:expr)),* $(,)?) => {
        $crate::Json::Object(vec![
            $(($key.to_string(), $crate::Json::from($value))),*
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -42 ").unwrap(), Json::Int(-42));
        assert_eq!(parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse("\"hi\\n\"").unwrap(), Json::Str("hi\n".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        let a = doc.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a[0].as_i64(), Some(1));
        assert_eq!(a[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let doc = parse(r#""é😀""#).unwrap();
        assert_eq!(doc, Json::Str("é😀".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "01x",
            "\"unterminated",
            "nul",
            "[1] trailing",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn print_parse_round_trip() {
        let doc = json_object![
            ("name", "m"),
            ("count", 3u32),
            ("ratio", 0.5),
            ("flag", true),
            ("items", vec![1i64, 2, 3]),
        ];
        for rendered in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(parse(&rendered).unwrap(), doc, "through {rendered}");
        }
    }

    #[test]
    fn float_print_keeps_float_type() {
        let doc = Json::Float(2.0);
        assert_eq!(parse(&doc.to_compact()).unwrap(), doc);
    }

    #[test]
    fn preserves_member_order() {
        let doc = parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(doc.to_compact(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn string_escaping() {
        let doc = Json::Str("a\"b\\c\u{1}".into());
        assert_eq!(doc.to_compact(), "\"a\\\"b\\\\c\\u0001\"");
        assert_eq!(parse(&doc.to_compact()).unwrap(), doc);
    }
}
