//! Independent simulation of *block sequences* with pipeline state carried
//! across boundaries — the ground truth for `pipesched-core`'s sequence
//! scheduler (footnote 1). Shares no code with the scheduler's
//! `BoundaryState`: the carried state here is a plain per-pipeline
//! last-issue timestamp on a single global clock.

use pipesched_ir::TupleId;

use crate::timing_model::TimingModel;

/// Result of simulating a sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceReport {
    /// Stall cycles charged within each block (including any boundary
    /// stall before its first instruction).
    pub stalls_per_block: Vec<u64>,
    /// Total cycles for the whole sequence.
    pub total_cycles: u64,
}

/// Execute `blocks` — each a `(timing model, schedule)` pair — back to
/// back on interlocked hardware with one global clock. Instructions never
/// reorder across a boundary; pipeline occupancy persists.
pub fn simulate_sequence(blocks: &[(&TimingModel, &[TupleId])]) -> SequenceReport {
    // Global clock and per-pipeline last-issue time. All blocks must agree
    // on the pipeline count (same machine).
    let pipeline_count = blocks.first().map_or(0, |(tm, _)| tm.pipeline_count);
    let mut pipe_last: Vec<Option<u64>> = vec![None; pipeline_count];
    let mut clock: Option<u64> = None; // last issue cycle, if any
    let mut stalls_per_block = Vec::with_capacity(blocks.len());

    for (tm, order) in blocks {
        assert_eq!(
            tm.pipeline_count, pipeline_count,
            "one machine per sequence"
        );
        // Per-block issue times (the dependences are block-local).
        let mut issued: Vec<Option<u64>> = vec![None; tm.len()];
        let mut stalls = 0u64;
        for &t in *order {
            let baseline = clock.map_or(0, |c| c + 1);
            let mut earliest = baseline;
            // Block-local dependences.
            for &(from, delay) in &tm.dep_delays[t.index()] {
                let ft = issued[from.index()].expect("topological order");
                earliest = earliest.max(ft + u64::from(delay));
            }
            // Global pipeline conflicts (may reach across the boundary).
            if let Some(p) = tm.sigma[t.index()] {
                if let Some(last) = pipe_last[p.index()] {
                    earliest = earliest.max(last + u64::from(tm.enqueue[t.index()]));
                }
            }
            stalls += earliest - baseline;
            issued[t.index()] = Some(earliest);
            if let Some(p) = tm.sigma[t.index()] {
                pipe_last[p.index()] = Some(earliest);
            }
            clock = Some(earliest);
        }
        stalls_per_block.push(stalls);
    }

    SequenceReport {
        stalls_per_block,
        total_cycles: clock.map_or(0, |c| c + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::{BasicBlock, BlockBuilder, DepDag};
    use pipesched_machine::presets;

    fn mul_block(name: &str) -> BasicBlock {
        let mut b = BlockBuilder::new(name);
        let x = b.load("x");
        let m = b.mul(x, x);
        b.store("z", m);
        b.finish().unwrap()
    }

    #[test]
    fn single_block_matches_interlock() {
        let machine = presets::paper_simulation();
        let block = mul_block("one");
        let dag = DepDag::build(&block);
        let tm = TimingModel::new(&block, &dag, &machine);
        let order: Vec<_> = block.ids().collect();
        let seq = simulate_sequence(&[(&tm, &order)]);
        let solo = crate::interlock::simulate_interlock(&tm, &order);
        assert_eq!(seq.total_cycles, solo.total_cycles);
        assert_eq!(seq.stalls_per_block[0], solo.total_stalls);
    }

    #[test]
    fn boundary_conflict_charged_to_second_block() {
        let machine = presets::recovery_unit(); // mul: latency 2, enqueue 6
        let a = mul_block("a");
        let b = mul_block("b");
        let dag_a = DepDag::build(&a);
        let dag_b = DepDag::build(&b);
        let tm_a = TimingModel::new(&a, &dag_a, &machine);
        let tm_b = TimingModel::new(&b, &dag_b, &machine);
        let order_a: Vec<_> = a.ids().collect();
        let order_b: Vec<_> = b.ids().collect();

        let cold = simulate_sequence(&[(&tm_b, &order_b)]);
        let seq = simulate_sequence(&[(&tm_a, &order_a), (&tm_b, &order_b)]);
        assert!(
            seq.stalls_per_block[1] > cold.stalls_per_block[0],
            "recovering multiplier must stall the second block: {} vs {}",
            seq.stalls_per_block[1],
            cold.stalls_per_block[0]
        );
    }

    #[test]
    fn empty_sequence() {
        let report = simulate_sequence(&[]);
        assert_eq!(report.total_cycles, 0);
        assert!(report.stalls_per_block.is_empty());
    }
}
