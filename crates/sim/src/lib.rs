#![warn(missing_docs)]

//! Cycle-accurate pipeline issue simulation.
//!
//! Section 2.2 of the paper describes three architectural mechanisms for
//! realizing the delays a schedule requires, and argues they are orthogonal
//! to the scheduling problem: **implicit interlock** (hardware stalls),
//! **explicit interlock** (compiler-emitted wait tags, as in Tera and CARP),
//! and **NOP insertion** (MIPS-style padding). This crate implements all
//! three over the same machine model and proves — by test, for every
//! schedule the workspace produces — that they agree on total execution
//! time, and that the scheduler's η/μ arithmetic matches what the hardware
//! would actually do.
//!
//! The simulator is deliberately **independent** of `pipesched-core`: it
//! recomputes issue timing forward, cycle by cycle, from only the block,
//! its DAG, and the machine description, so agreement with the scheduler's
//! incremental engine is a meaningful cross-check rather than a tautology.

pub mod carp;
pub mod explicit;
pub mod gantt;
pub mod interlock;
pub mod issue;
pub mod padded;
pub mod sequence;
pub mod tera;
pub mod timing_model;
pub mod trace;
pub mod verify;

pub use carp::{conservatism, tag_carp, CarpProgram, CarpReport};
pub use explicit::{tag_schedule, ExplicitProgram};
pub use gantt::{chart, Gantt};
pub use interlock::{simulate_interlock, InterlockReport};
pub use issue::issue_times;
pub use padded::{pad_schedule, PaddedInstr, PaddedProgram};
pub use sequence::{simulate_sequence, SequenceReport};
pub use tera::{lookahead_penalty, tag_lookahead, TeraProgram, TeraReport};
pub use timing_model::TimingModel;
pub use trace::{Event, Trace};
pub use verify::{validate_schedule, SimError};
