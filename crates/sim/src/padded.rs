//! NOP-padded programs (§2.2, "NOP insertion").
//!
//! The compiler takes full responsibility for pipeline management by
//! emitting NOPs; the hardware then issues exactly one instruction per
//! cycle with no interlock logic. [`PaddedProgram::execute`] models such
//! hardware: it *asserts* hazard-freedom rather than stalling, so an
//! underpadded program is reported as an error — this is how the test suite
//! proves the scheduler's η values are sufficient, and
//! [`PaddedProgram::is_minimally_padded`] proves they are not excessive.

use std::fmt;

use pipesched_ir::{BasicBlock, TupleId};

use crate::timing_model::TimingModel;
use crate::verify::SimError;

/// One slot of a padded program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaddedInstr {
    /// A real instruction.
    Tuple(TupleId),
    /// A null operation.
    Nop,
}

/// A fully padded, hardware-ready instruction stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaddedProgram {
    /// The instruction slots, one per cycle.
    pub slots: Vec<PaddedInstr>,
}

/// Interleave `order` with `etas[k]` NOPs before each instruction.
pub fn pad_schedule(order: &[TupleId], etas: &[u32]) -> PaddedProgram {
    assert_eq!(order.len(), etas.len());
    let mut slots = Vec::with_capacity(order.len() + etas.iter().sum::<u32>() as usize);
    for (&t, &eta) in order.iter().zip(etas) {
        for _ in 0..eta {
            slots.push(PaddedInstr::Nop);
        }
        slots.push(PaddedInstr::Tuple(t));
    }
    PaddedProgram { slots }
}

impl PaddedProgram {
    /// Number of NOP slots.
    pub fn nop_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, PaddedInstr::Nop))
            .count()
    }

    /// Total cycles (= slots) the program takes on NOP-insertion hardware.
    pub fn total_cycles(&self) -> usize {
        self.slots.len()
    }

    /// The instruction order with padding stripped.
    pub fn order(&self) -> Vec<TupleId> {
        self.slots
            .iter()
            .filter_map(|s| match s {
                PaddedInstr::Tuple(t) => Some(*t),
                PaddedInstr::Nop => None,
            })
            .collect()
    }

    /// Execute on interlock-free hardware: every instruction issues exactly
    /// at its slot cycle. Errors if any dependence or conflict is violated
    /// (the hardware would compute garbage).
    pub fn execute(&self, tm: &TimingModel) -> Result<u64, SimError> {
        let mut issued: Vec<Option<u64>> = vec![None; tm.len()];
        for (cycle, slot) in self.slots.iter().enumerate() {
            if let PaddedInstr::Tuple(t) = slot {
                if !tm.can_issue_at(*t, cycle as u64, &issued) {
                    return Err(SimError::Hazard {
                        tuple: *t,
                        cycle: cycle as u64,
                    });
                }
                issued[t.index()] = Some(cycle as u64);
            }
        }
        Ok(self.slots.len() as u64)
    }

    /// True when no NOP can be removed without introducing a hazard —
    /// i.e. the padding is exactly the hardware minimum for this order.
    pub fn is_minimally_padded(&self, tm: &TimingModel) -> bool {
        if self.execute(tm).is_err() {
            return false;
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if matches!(slot, PaddedInstr::Nop) {
                let mut fewer = self.clone();
                fewer.slots.remove(i);
                if fewer.execute(tm).is_ok() {
                    return false;
                }
            }
        }
        true
    }

    /// Render as an assembly-style listing using `block` for labels.
    pub fn listing(&self, block: &BasicBlock) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for (cycle, slot) in self.slots.iter().enumerate() {
            match slot {
                PaddedInstr::Nop => {
                    let _ = writeln!(out, "{cycle:4}:   Nop");
                }
                PaddedInstr::Tuple(t) => {
                    let tup = block.tuple(*t);
                    let _ = writeln!(out, "{cycle:4}:   {} {}", tup.op, operands(block, *t));
                }
            }
        }
        out
    }
}

fn operands(block: &BasicBlock, t: TupleId) -> String {
    let tup = block.tuple(t);
    let mut parts = Vec::new();
    for o in [tup.a, tup.b] {
        if o.is_none() {
            continue;
        }
        match o {
            pipesched_ir::Operand::Var(v) => {
                parts.push(format!("#{}", block.symbols().name(v).unwrap_or("?")))
            }
            other => parts.push(other.to_string()),
        }
    }
    parts.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::{BlockBuilder, DepDag};
    use pipesched_machine::presets;

    fn chain() -> (pipesched_ir::BasicBlock, TimingModel) {
        let mut b = BlockBuilder::new("chain");
        let x = b.load("x");
        let m = b.mul(x, x);
        b.store("z", m);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let tm = TimingModel::new(&block, &dag, &machine);
        (block, tm)
    }

    #[test]
    fn correct_padding_executes() {
        let (_, tm) = chain();
        let order = [0u32, 1, 2].map(TupleId);
        let prog = pad_schedule(&order, &[0, 1, 3]);
        assert_eq!(prog.nop_count(), 4);
        assert_eq!(prog.execute(&tm).unwrap(), 7);
        assert!(prog.is_minimally_padded(&tm));
    }

    #[test]
    fn underpadding_is_a_hazard() {
        let (_, tm) = chain();
        let order = [0u32, 1, 2].map(TupleId);
        let prog = pad_schedule(&order, &[0, 0, 3]);
        assert!(matches!(
            prog.execute(&tm),
            Err(SimError::Hazard {
                tuple: TupleId(1),
                cycle: 1
            })
        ));
        assert!(!prog.is_minimally_padded(&tm));
    }

    #[test]
    fn overpadding_executes_but_is_not_minimal() {
        let (_, tm) = chain();
        let order = [0u32, 1, 2].map(TupleId);
        let prog = pad_schedule(&order, &[2, 1, 3]);
        assert!(prog.execute(&tm).is_ok());
        assert!(!prog.is_minimally_padded(&tm));
    }

    #[test]
    fn order_strips_nops() {
        let order = [2u32, 0, 1].map(TupleId);
        let prog = pad_schedule(&order, &[1, 0, 2]);
        assert_eq!(prog.order(), order.to_vec());
    }

    #[test]
    fn listing_is_readable() {
        let (block, _) = chain();
        let order = [0u32, 1, 2].map(TupleId);
        let prog = pad_schedule(&order, &[0, 1, 3]);
        let text = prog.listing(&block);
        assert!(text.contains("Load #x"), "{text}");
        assert!(text.contains("Nop"), "{text}");
        assert_eq!(text.lines().count(), 7);
    }
}
