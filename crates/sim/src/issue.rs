//! Ground-truth issue-time computation for a complete schedule.
//!
//! A deliberately simple forward pass: for each instruction in schedule
//! order, advance a cycle counter until [`TimingModel::can_issue_at`]
//! accepts it. O(n²) and free of the incremental bookkeeping that makes
//! `pipesched-core`'s engine fast — which is exactly why agreement between
//! the two is a meaningful invariant.

use pipesched_ir::TupleId;

use crate::timing_model::TimingModel;

/// Earliest legal issue cycle of every instruction of `order`, issued
/// greedily in order (one instruction per cycle at most).
///
/// Returns `issue[k]` = cycle of `order[k]`.
pub fn issue_times(tm: &TimingModel, order: &[TupleId]) -> Vec<u64> {
    let mut issued: Vec<Option<u64>> = vec![None; tm.len()];
    let mut out = Vec::with_capacity(order.len());
    let mut cycle: u64 = 0;
    for &t in order {
        while !tm.can_issue_at(t, cycle, &issued) {
            cycle += 1;
        }
        issued[t.index()] = Some(cycle);
        out.push(cycle);
        cycle += 1;
    }
    out
}

/// Total NOPs (idle issue slots) the schedule needs: the gaps between
/// consecutive issue cycles.
pub fn total_nops(issue: &[u64]) -> u64 {
    match issue.last() {
        Some(&last) => last + 1 - issue.len() as u64,
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::{BlockBuilder, DepDag};
    use pipesched_machine::presets;

    #[test]
    fn serial_chain_times() {
        let mut b = BlockBuilder::new("chain");
        let x = b.load("x");
        let m = b.mul(x, x);
        b.store("z", m);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let tm = TimingModel::new(&block, &dag, &machine);
        let order: Vec<_> = block.ids().collect();
        let times = issue_times(&tm, &order);
        assert_eq!(times, vec![0, 2, 6]);
        assert_eq!(total_nops(&times), 4);
    }

    #[test]
    fn empty_schedule() {
        let block = BlockBuilder::new("e").finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let tm = TimingModel::new(&block, &dag, &machine);
        let times = issue_times(&tm, &[]);
        assert!(times.is_empty());
        assert_eq!(total_nops(&times), 0);
    }

    #[test]
    fn issue_times_are_strictly_increasing() {
        let mut b = BlockBuilder::new("inc");
        for i in 0..5 {
            let l = b.load(&format!("v{i}"));
            b.store(&format!("s{i}"), l);
        }
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::deep_pipeline();
        let tm = TimingModel::new(&block, &dag, &machine);
        let order: Vec<_> = block.ids().collect();
        let times = issue_times(&tm, &order);
        for w in times.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
