//! End-to-end schedule validation against the ground-truth simulator.

use std::fmt;

use pipesched_ir::{
    analysis::verify_schedule as verify_topological, BasicBlock, DepDag, IrError, TupleId,
};
use pipesched_machine::Machine;

use crate::issue::{issue_times, total_nops};
use crate::timing_model::TimingModel;

/// Errors from simulating or validating a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The schedule is not a legal topological order of the block.
    Illegal(IrError),
    /// An instruction issued while its dependences/conflicts were unmet.
    Hazard {
        /// The offending instruction.
        tuple: TupleId,
        /// The cycle at which it was (wrongly) issued.
        cycle: u64,
    },
    /// The claimed η values do not match the hardware minimum.
    EtaMismatch {
        /// Position in the schedule.
        position: usize,
        /// η claimed by the scheduler.
        claimed: u32,
        /// η the hardware requires.
        actual: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Illegal(e) => write!(f, "illegal schedule: {e}"),
            SimError::Hazard { tuple, cycle } => {
                write!(f, "hazard: tuple {tuple} issued at cycle {cycle} too early")
            }
            SimError::EtaMismatch {
                position,
                claimed,
                actual,
            } => write!(
                f,
                "η mismatch at position {position}: scheduler claims {claimed}, hardware needs {actual}"
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Illegal(e) => Some(e),
            SimError::Hazard { .. } | SimError::EtaMismatch { .. } => None,
        }
    }
}

impl From<IrError> for SimError {
    fn from(e: IrError) -> Self {
        SimError::Illegal(e)
    }
}

/// Validate that (`order`, `etas`) is a legal schedule of `block` on
/// `machine` and that every η equals the hardware minimum for that order.
///
/// This is the independent check run over every schedule the workspace
/// produces: it catches both *unsafe* schedules (too few NOPs ⇒ hazard) and
/// *wasteful* ones (too many NOPs ⇒ the claimed μ is not what the order
/// actually needs).
pub fn validate_schedule(
    block: &BasicBlock,
    dag: &DepDag,
    machine: &Machine,
    order: &[TupleId],
    etas: &[u32],
) -> Result<(), SimError> {
    verify_topological(block, dag, order)?;
    let tm = TimingModel::new(block, dag, machine);
    let issue = issue_times(&tm, order);
    debug_assert_eq!(issue.len(), etas.len());
    let mut prev: Option<u64> = None;
    for (k, (&t, &claimed)) in issue.iter().zip(etas).enumerate() {
        let actual = match prev {
            Some(p) => t - p - 1,
            None => t,
        };
        if u64::from(claimed) != actual {
            return Err(SimError::EtaMismatch {
                position: k,
                claimed,
                actual,
            });
        }
        prev = Some(t);
    }
    let _ = total_nops(&issue);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::BlockBuilder;
    use pipesched_machine::presets;

    fn chain() -> (BasicBlock, DepDag, Machine) {
        let mut b = BlockBuilder::new("chain");
        let x = b.load("x");
        let m = b.mul(x, x);
        b.store("z", m);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        (block, dag, presets::paper_simulation())
    }

    #[test]
    fn accepts_correct_etas() {
        let (block, dag, machine) = chain();
        let order = [0u32, 1, 2].map(TupleId);
        validate_schedule(&block, &dag, &machine, &order, &[0, 1, 3]).unwrap();
    }

    #[test]
    fn rejects_wrong_etas() {
        let (block, dag, machine) = chain();
        let order = [0u32, 1, 2].map(TupleId);
        let err = validate_schedule(&block, &dag, &machine, &order, &[0, 2, 3]).unwrap_err();
        assert!(matches!(err, SimError::EtaMismatch { position: 1, .. }));
    }

    #[test]
    fn rejects_illegal_order() {
        let (block, dag, machine) = chain();
        let order = [1u32, 0, 2].map(TupleId);
        let err = validate_schedule(&block, &dag, &machine, &order, &[0, 0, 0]).unwrap_err();
        assert!(matches!(err, SimError::Illegal(_)));
    }

    #[test]
    fn illegal_exposes_the_ir_error_as_source() {
        use std::error::Error as _;
        let (block, dag, machine) = chain();
        let order = [1u32, 0, 2].map(TupleId);
        let err = validate_schedule(&block, &dag, &machine, &order, &[0, 0, 0]).unwrap_err();
        let source = err.source().expect("Illegal wraps an IrError");
        assert!(source.downcast_ref::<IrError>().is_some());
        // Boxing through `?` preserves the chain.
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.source().is_some());
    }
}
