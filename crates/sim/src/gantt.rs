//! Pipeline-occupancy (Gantt) rendering: a per-pipeline timeline showing,
//! for every cycle, which instruction each pipeline is working on — the
//! picture §2 of the paper draws in prose. Used by the examples and
//! priceless when debugging a machine description.
//!
//! ```text
//! cycle            0    1    2    3    4    5    6
//! issue           @1   @2    .   @3    .    .   @4
//! loader          ■1   ■2   □2    .    .    .    .
//! multiplier       .    .    .   ■3   □3   □3   □3
//! ```
//!
//! `■k` marks the issue cycle of tuple `k` in that pipeline, `□k` the
//! cycles its result is still in flight (latency), `.` idle.

use std::fmt::Write as _;

use pipesched_ir::TupleId;

use crate::interlock::simulate_interlock;
use crate::timing_model::TimingModel;

/// One pipeline's per-cycle occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cell {
    /// Nothing in flight.
    Idle,
    /// Tuple issued into the pipeline this cycle.
    Issue(TupleId),
    /// Tuple's result still in flight (issued earlier).
    Busy(TupleId),
}

/// A complete occupancy chart.
#[derive(Debug, Clone)]
pub struct Gantt {
    /// Total cycles.
    pub cycles: usize,
    /// `issue_row[c]` = tuple issued at cycle `c`, if any.
    pub issue_row: Vec<Option<TupleId>>,
    /// `lanes[p][c]` = pipeline `p`'s state at cycle `c`.
    pub lanes: Vec<Vec<Cell>>,
    /// Pipeline lane labels.
    pub labels: Vec<String>,
}

/// Build the chart for `order` on interlock hardware over `tm`, with
/// pipeline `labels` (usually the machine's function names).
pub fn chart(tm: &TimingModel, order: &[TupleId], labels: &[String]) -> Gantt {
    assert_eq!(labels.len(), tm.pipeline_count);
    let report = simulate_interlock(tm, order);
    let cycles = report.total_cycles as usize;
    let mut issue_row = vec![None; cycles];
    let mut lanes = vec![vec![Cell::Idle; cycles]; tm.pipeline_count];

    for (&t, &at) in order.iter().zip(&report.issue) {
        issue_row[at as usize] = Some(t);
        if let Some(p) = tm.sigma[t.index()] {
            let lane = &mut lanes[p.index()];
            lane[at as usize] = Cell::Issue(t);
            let done = (at + u64::from(tm.result_delay[t.index()])).min(cycles as u64);
            for c in (at + 1)..done {
                if lane[c as usize] == Cell::Idle {
                    lane[c as usize] = Cell::Busy(t);
                }
            }
        }
    }

    Gantt {
        cycles,
        issue_row,
        lanes,
        labels: labels.to_vec(),
    }
}

impl Gantt {
    /// Render as fixed-width text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = 5;
        let _ = write!(out, "{:<12}", "cycle");
        for c in 0..self.cycles {
            let _ = write!(out, "{c:>width$}");
        }
        out.push('\n');
        let _ = write!(out, "{:<12}", "issue");
        for cell in &self.issue_row {
            match cell {
                Some(t) => {
                    let _ = write!(out, "{:>width$}", format!("@{t}"));
                }
                None => {
                    let _ = write!(out, "{:>width$}", ".");
                }
            }
        }
        out.push('\n');
        for (label, lane) in self.labels.iter().zip(&self.lanes) {
            let _ = write!(out, "{label:<12}");
            for cell in lane {
                let text = match cell {
                    Cell::Idle => ".".to_string(),
                    Cell::Issue(t) => format!("#{t}"),
                    Cell::Busy(t) => format!("~{t}"),
                };
                let _ = write!(out, "{text:>width$}");
            }
            out.push('\n');
        }
        out
    }

    /// Fraction of pipeline-cycles doing useful work (issue or in-flight).
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 || self.lanes.is_empty() {
            return 0.0;
        }
        let busy: usize = self
            .lanes
            .iter()
            .flatten()
            .filter(|c| !matches!(c, Cell::Idle))
            .count();
        busy as f64 / (self.cycles * self.lanes.len()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::{BlockBuilder, DepDag};
    use pipesched_machine::presets;

    fn setup() -> (pipesched_ir::BasicBlock, TimingModel, Vec<String>) {
        let mut b = BlockBuilder::new("g");
        let x = b.load("x");
        let m = b.mul(x, x);
        b.store("z", m);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let tm = TimingModel::new(&block, &dag, &machine);
        let labels: Vec<String> = machine
            .pipelines()
            .iter()
            .map(|p| p.function.clone())
            .collect();
        (block, tm, labels)
    }

    #[test]
    fn chart_places_issues_and_busy_cells() {
        let (block, tm, labels) = setup();
        let order: Vec<_> = block.ids().collect();
        let g = chart(&tm, &order, &labels);
        assert_eq!(g.cycles, 7);
        // Load issues at cycle 0 in the loader lane.
        assert_eq!(g.lanes[0][0], Cell::Issue(TupleId(0)));
        assert_eq!(g.lanes[0][1], Cell::Busy(TupleId(0)));
        // Mul issues at 2, busy through 5.
        assert_eq!(g.lanes[2][2], Cell::Issue(TupleId(1)));
        assert_eq!(g.lanes[2][5], Cell::Busy(TupleId(1)));
        // Store at 6 in the issue row, no lane (σ=∅).
        assert_eq!(g.issue_row[6], Some(TupleId(2)));
    }

    #[test]
    fn render_is_aligned() {
        let (block, tm, labels) = setup();
        let order: Vec<_> = block.ids().collect();
        let g = chart(&tm, &order, &labels);
        let text = g.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2 + tm.pipeline_count);
        let lens: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{text}");
        assert!(text.contains("#1"), "{text}");
        assert!(text.contains("~2"), "{text}");
    }

    #[test]
    fn utilization_in_unit_range() {
        let (block, tm, labels) = setup();
        let order: Vec<_> = block.ids().collect();
        let g = chart(&tm, &order, &labels);
        let u = g.utilization();
        assert!(u > 0.0 && u < 1.0, "{u}");
    }

    #[test]
    fn empty_chart() {
        let (_, tm, labels) = setup();
        let g = chart(&tm, &[], &labels);
        assert_eq!(g.cycles, 0);
        assert_eq!(g.utilization(), 0.0);
    }
}
