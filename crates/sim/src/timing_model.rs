//! The machine-timing view shared by all simulators in this crate.
//!
//! Built once per (block, machine) pair; holds per-tuple pipeline binding
//! and per-dependence delays, computed independently of `pipesched-core`.

use pipesched_ir::{BasicBlock, DepDag, DepKind, TupleId};
use pipesched_machine::{Machine, PipelineId};

/// Per-block timing facts derived from the machine description.
#[derive(Debug, Clone)]
pub struct TimingModel {
    /// Pipeline executing each tuple (`None` ⇒ no pipelined resource).
    pub sigma: Vec<Option<PipelineId>>,
    /// Latency of each tuple's pipeline (1 when σ=∅: result usable next cycle).
    pub result_delay: Vec<u32>,
    /// Enqueue time of each tuple's pipeline (0 when σ=∅: never conflicts).
    pub enqueue: Vec<u32>,
    /// For each tuple, `(producer, min issue distance)` pairs.
    pub dep_delays: Vec<Vec<(TupleId, u32)>>,
    /// Number of pipelines in the machine.
    pub pipeline_count: usize,
}

impl TimingModel {
    /// Derive the timing model for `block` on `machine`.
    pub fn new(block: &BasicBlock, dag: &DepDag, machine: &Machine) -> Self {
        let n = block.len();
        let mut sigma = Vec::with_capacity(n);
        let mut result_delay = Vec::with_capacity(n);
        let mut enqueue = Vec::with_capacity(n);
        for t in block.tuples() {
            let p = machine.default_pipeline_for(t.op);
            sigma.push(p);
            result_delay.push(p.map_or(1, |p| machine.pipeline(p).latency));
            enqueue.push(p.map_or(0, |p| machine.pipeline(p).enqueue));
        }
        let dep_delays = (0..n)
            .map(|i| {
                dag.preds(TupleId(i as u32))
                    .iter()
                    .map(|e| {
                        let d = match e.kind {
                            DepKind::Flow => result_delay[e.from.index()],
                            DepKind::Anti | DepKind::Output => 1,
                        };
                        (e.from, d)
                    })
                    .collect()
            })
            .collect();
        TimingModel {
            sigma,
            result_delay,
            enqueue,
            dep_delays,
            pipeline_count: machine.pipeline_count(),
        }
    }

    /// Number of tuples modeled.
    pub fn len(&self) -> usize {
        self.sigma.len()
    }

    /// True for an empty model.
    pub fn is_empty(&self) -> bool {
        self.sigma.is_empty()
    }

    /// Can `t` legally issue at `cycle`, given `issued[j] = Some(cycle)` for
    /// already-issued tuples?
    pub fn can_issue_at(&self, t: TupleId, cycle: u64, issued: &[Option<u64>]) -> bool {
        // Dependences.
        for &(from, delay) in &self.dep_delays[t.index()] {
            match issued[from.index()] {
                Some(tj) => {
                    if cycle < tj + u64::from(delay) {
                        return false;
                    }
                }
                None => return false,
            }
        }
        // Conflicts: any same-pipeline instruction issued too recently?
        if let Some(p) = self.sigma[t.index()] {
            let enq = u64::from(self.enqueue[t.index()]);
            for (j, &tj) in issued.iter().enumerate() {
                if let Some(tj) = tj {
                    if self.sigma[j] == Some(p) && cycle < tj + enq {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::BlockBuilder;
    use pipesched_machine::presets;

    #[test]
    fn delays_reflect_machine() {
        let mut b = BlockBuilder::new("tm");
        let x = b.load("x");
        let m = b.mul(x, x);
        b.store("z", m);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let tm = TimingModel::new(&block, &dag, &machine);
        assert_eq!(tm.result_delay, vec![2, 4, 1]);
        assert_eq!(tm.enqueue, vec![1, 2, 0]);
        // mul depends on load with the loader's latency.
        assert_eq!(tm.dep_delays[1], vec![(pipesched_ir::TupleId(0), 2)]);
    }

    #[test]
    fn can_issue_checks_deps_and_conflicts() {
        let mut b = BlockBuilder::new("ci");
        let x = b.load("x");
        let m = b.mul(x, x);
        let m2 = b.mul(m, m);
        b.store("z", m2);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let tm = TimingModel::new(&block, &dag, &machine);

        let t1 = TupleId(1);
        let t2 = TupleId(2);
        let mut issued = vec![None; 4];
        issued[0] = Some(0u64);
        assert!(!tm.can_issue_at(t1, 1, &issued), "load latency unmet");
        assert!(tm.can_issue_at(t1, 2, &issued));
        issued[1] = Some(2);
        // Second mul: dep latency 4 (ready at 6) dominates enqueue (4).
        assert!(!tm.can_issue_at(t2, 4, &issued));
        assert!(!tm.can_issue_at(t2, 5, &issued));
        assert!(tm.can_issue_at(t2, 6, &issued));
    }

    #[test]
    fn unissued_predecessor_blocks() {
        let mut b = BlockBuilder::new("blk");
        let x = b.load("x");
        b.store("z", x);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let tm = TimingModel::new(&block, &dag, &machine);
        let issued = vec![None; 2];
        assert!(!tm.can_issue_at(TupleId(1), 100, &issued));
    }
}
