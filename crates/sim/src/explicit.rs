//! Explicit-interlock hardware (§2.2): the *compiler* tags each instruction
//! with how long it must wait, and the hardware simply counts — it never
//! detects hazards itself. This models the Tera count-field and CARP
//! bit-mask styles with a per-instruction wait count.

use pipesched_ir::TupleId;

use crate::timing_model::TimingModel;
use crate::verify::SimError;

/// A schedule annotated with explicit wait tags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplicitProgram {
    /// Instructions in issue order.
    pub order: Vec<TupleId>,
    /// Cycles each instruction waits after the previous issue before it
    /// issues itself (0 ⇒ back-to-back).
    pub waits: Vec<u32>,
}

/// Compute the minimal wait tags for `order` (the compiler's job under
/// explicit interlocking).
pub fn tag_schedule(tm: &TimingModel, order: &[TupleId]) -> ExplicitProgram {
    let issue = crate::issue::issue_times(tm, order);
    let mut waits = Vec::with_capacity(order.len());
    let mut prev: Option<u64> = None;
    for &t in &issue {
        let wait = match prev {
            Some(p) => (t - p - 1) as u32,
            None => t as u32,
        };
        waits.push(wait);
        prev = Some(t);
    }
    ExplicitProgram {
        order: order.to_vec(),
        waits,
    }
}

impl ExplicitProgram {
    /// Total wait cycles across the program.
    pub fn total_waits(&self) -> u64 {
        self.waits.iter().map(|&w| u64::from(w)).sum()
    }

    /// Execute on count-only hardware: issue each instruction `wait` cycles
    /// after the previous issue, *verifying* (as the real hardware cannot)
    /// that no hazard occurs. Returns total cycles.
    pub fn execute(&self, tm: &TimingModel) -> Result<u64, SimError> {
        let mut issued: Vec<Option<u64>> = vec![None; tm.len()];
        let mut cycle: u64 = 0;
        let mut first = true;
        for (&t, &wait) in self.order.iter().zip(&self.waits) {
            cycle = if first {
                u64::from(wait)
            } else {
                cycle + 1 + u64::from(wait)
            };
            first = false;
            if !tm.can_issue_at(t, cycle, &issued) {
                return Err(SimError::Hazard { tuple: t, cycle });
            }
            issued[t.index()] = Some(cycle);
        }
        Ok(if self.order.is_empty() { 0 } else { cycle + 1 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::{BlockBuilder, DepDag};
    use pipesched_machine::presets;

    fn chain_tm() -> TimingModel {
        let mut b = BlockBuilder::new("chain");
        let x = b.load("x");
        let m = b.mul(x, x);
        b.store("z", m);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        TimingModel::new(&block, &dag, &machine)
    }

    #[test]
    fn tags_match_issue_gaps() {
        let tm = chain_tm();
        let order = [0u32, 1, 2].map(TupleId);
        let prog = tag_schedule(&tm, &order);
        assert_eq!(prog.waits, vec![0, 1, 3]);
        assert_eq!(prog.total_waits(), 4);
    }

    #[test]
    fn execution_matches_tags() {
        let tm = chain_tm();
        let order = [0u32, 1, 2].map(TupleId);
        let prog = tag_schedule(&tm, &order);
        assert_eq!(prog.execute(&tm).unwrap(), 7);
    }

    #[test]
    fn wrong_tags_hazard() {
        let tm = chain_tm();
        let order = [0u32, 1, 2].map(TupleId);
        let prog = ExplicitProgram {
            order: order.to_vec(),
            waits: vec![0, 0, 3],
        };
        assert!(matches!(prog.execute(&tm), Err(SimError::Hazard { .. })));
    }

    #[test]
    fn empty_program() {
        let tm = chain_tm();
        let prog = tag_schedule(&tm, &[]);
        assert_eq!(prog.execute(&tm).unwrap(), 0);
        assert_eq!(prog.total_waits(), 0);
    }
}
